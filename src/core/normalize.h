// Normalization primitives of §3.2.1:
//
//  1. "the attribute values of each node are normalized by dividing the
//     value by the sum of attribute values of all nodes";
//  2. "we convert all the attributes in unidirectional units (same sign)
//     ... by complementing (with respect to the maximum value) for
//     attributes having maximization criterion."
#pragma once

#include <span>
#include <vector>

#include "util/flat_matrix.h"

namespace nlarm::core {

/// Divides each value by the sum of all values. All-zero input → all zeros
/// (every node is equally, maximally attractive for that attribute).
/// Values must be non-negative.
std::vector<double> normalize_by_sum(std::span<const double> values);

/// Complements each value with respect to the maximum: v → max − v.
/// Turns a maximization attribute into a minimization one.
std::vector<double> complement_max(std::span<const double> values);

/// Full pipeline for one attribute column: normalize, then complement if the
/// criterion is "maximize".
std::vector<double> normalize_attribute(std::span<const double> values,
                                        bool maximize);

/// Rescales values so their mean is 1 (all-zero input unchanged).
///
/// Sum-normalized compute loads average 1/|V| while sum-normalized pairwise
/// network loads average 1/|pairs| ≈ 2/|V|² — ~|V|/2 times smaller. The
/// paper's addition cost A_v(u) = α·CL(u) + β·NL(v,u) only trades the two
/// off meaningfully (and only then produces the topologically-compact
/// selections of its Figure 7) when both are on a common scale, so the
/// allocator rescales each to unit mean first. This is a pure global
/// scaling; orderings within each cost are untouched.
std::vector<double> rescale_unit_mean(std::span<const double> values);

/// In-place variant; the allocator's scratch buffers reuse their storage.
void rescale_unit_mean_inplace(std::vector<double>& values);

/// Matrix variant: rescales off-diagonal entries to unit mean.
util::FlatMatrix rescale_unit_mean(const util::FlatMatrix& matrix);

/// In-place matrix variant.
void rescale_unit_mean_inplace(util::FlatMatrix& matrix);

}  // namespace nlarm::core
