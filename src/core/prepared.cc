#include "core/prepared.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

#include "core/compute_load.h"
#include "core/normalize.h"
#include "core/selection.h"
#include "obs/catalog.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace nlarm::core {

namespace detail {

void ExactSum::accumulate(double v, bool negate) {
  if (!(v > 0.0)) return;  // zero adds nothing; NaN/negatives never arrive
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const int exp = static_cast<int>(bits >> 52);  // sign bit is clear: v > 0
  if (exp == 0) return;  // subnormal: far below the window, contributes 0
  const std::uint64_t mant =
      (bits & ((std::uint64_t{1} << 52) - 1)) | (std::uint64_t{1} << 52);
  // value = mant × 2^(exp − 1075); in units of the 2⁻⁸⁰ LSB the mantissa
  // lands at bit (exp − 995). +inf (exp 0x7ff) rides the same clamp as any
  // over-the-top finite value.
  int shift = exp - 995;
  if (shift < 0) return;
  if (shift > 191) shift = 191;  // keep mant's two limbs inside limbs_[0..3]
  const unsigned __int128 wide = static_cast<unsigned __int128>(mant)
                                 << (shift & 63);
  const std::uint64_t part[2] = {static_cast<std::uint64_t>(wide),
                                 static_cast<std::uint64_t>(wide >> 64)};
  const int idx = shift >> 6;
  if (negate) {
    unsigned __int128 borrow = 0;
    for (int l = idx, p = 0; l < 4; ++l, ++p) {
      const unsigned __int128 take = (p < 2 ? part[p] : 0) + borrow;
      const std::uint64_t before = limbs_[static_cast<std::size_t>(l)];
      limbs_[static_cast<std::size_t>(l)] =
          before - static_cast<std::uint64_t>(take);
      borrow = static_cast<unsigned __int128>(before) < take ? 1 : 0;
      if (p >= 2 && borrow == 0) break;
    }
  } else {
    unsigned __int128 carry = 0;
    for (int l = idx, p = 0; l < 4; ++l, ++p) {
      const unsigned __int128 sum =
          static_cast<unsigned __int128>(limbs_[static_cast<std::size_t>(l)]) +
          (p < 2 ? part[p] : 0) + carry;
      limbs_[static_cast<std::size_t>(l)] = static_cast<std::uint64_t>(sum);
      carry = sum >> 64;
      if (p >= 2 && carry == 0) break;
    }
  }
}

void ExactSum::add(const ExactSum& other) {
  unsigned __int128 carry = 0;
  for (std::size_t l = 0; l < limbs_.size(); ++l) {
    const unsigned __int128 sum = static_cast<unsigned __int128>(limbs_[l]) +
                                  other.limbs_[l] + carry;
    limbs_[l] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
}

double ExactSum::to_double() const {
  return std::ldexp(static_cast<double>(limbs_[3]), 112) +
         std::ldexp(static_cast<double>(limbs_[2]), 48) +
         std::ldexp(static_cast<double>(limbs_[1]), -16) +
         std::ldexp(static_cast<double>(limbs_[0]), -80);
}

void NlState::read_pair(const monitor::ClusterSnapshot& snapshot,
                        cluster::NodeId u, cluster::NodeId v, std::size_t k) {
  const auto uu = static_cast<std::size_t>(u);
  const auto vv = static_cast<std::size_t>(v);
  lat_raw_[k] = snapshot.net.latency_us[uu][vv];
  const double bw = snapshot.net.bandwidth_mbps[uu][vv];
  const double peak = snapshot.net.peak_mbps[uu][vv];
  comp_raw_[k] = (bw < 0.0 || peak < 0.0) ? -1.0 : std::max(0.0, peak - bw);
}

void NlState::full_build(const monitor::ClusterSnapshot& snapshot,
                         std::span<const cluster::NodeId> nodes,
                         const NetworkLoadWeights& weights) {
  weights.validate();
  weights_ = weights;
  n_ = nodes.size();
  const std::size_t pair_count = n_ < 2 ? 0 : n_ * (n_ - 1) / 2;
  lat_raw_.resize(pair_count);
  comp_raw_.resize(pair_count);
  pair_i_.resize(pair_count);
  pair_j_.resize(pair_count);

  const auto matrix_size = static_cast<std::size_t>(snapshot.net.size());
  lat_acc_.reset();
  comp_acc_.reset();
  lat_missing_ = 0;
  comp_missing_ = 0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const auto ui = static_cast<std::size_t>(nodes[i]);
    NLARM_CHECK(ui < matrix_size) << "pair out of snapshot";
    for (std::size_t j = i + 1; j < n_; ++j, ++k) {
      const auto vj = static_cast<std::size_t>(nodes[j]);
      NLARM_CHECK(vj < matrix_size) << "pair out of snapshot";
      NLARM_CHECK(vj != ui) << "pair metrics of a self pair";
      pair_i_[k] = static_cast<std::uint32_t>(i);
      pair_j_[k] = static_cast<std::uint32_t>(j);
      read_pair(snapshot, nodes[i], nodes[j], k);
      account_add(k);
    }
  }
  recompute_scalars();
}

void NlState::account_add(std::size_t k) {
  const double lat = lat_raw_[k];
  if (lat >= 0.0) {
    lat_acc_.add(lat);
  } else {
    ++lat_missing_;
  }
  const double comp = comp_raw_[k];
  if (comp >= 0.0) {
    comp_acc_.add(comp);
  } else {
    ++comp_missing_;
  }
}

void NlState::account_remove(std::size_t k) {
  const double lat = lat_raw_[k];
  if (lat >= 0.0) {
    lat_acc_.sub(lat);
  } else {
    --lat_missing_;
  }
  const double comp = comp_raw_[k];
  if (comp >= 0.0) {
    comp_acc_.sub(comp);
  } else {
    --comp_missing_;
  }
}

void NlState::patch_pair(const monitor::ClusterSnapshot& snapshot,
                         std::span<const cluster::NodeId> nodes,
                         std::size_t i, std::size_t j) {
  NLARM_CHECK(i < j && j < n_) << "bad pair position (" << i << ", " << j
                               << ")";
  const std::size_t k = pair_index(i, j);
  account_remove(k);
  read_pair(snapshot, nodes[i], nodes[j], k);
  account_add(k);
}

void NlState::refresh_dirty() { recompute_scalars(); }

NlScalars compute_nl_scalars(double lat_sum, double comp_sum,
                             std::uint64_t lat_missing,
                             std::uint64_t comp_missing, std::size_t pairs,
                             const NetworkLoadWeights& weights) {
  NlScalars s;
  const std::uint64_t lat_measured =
      static_cast<std::uint64_t>(pairs) - lat_missing;
  const std::uint64_t comp_measured =
      static_cast<std::uint64_t>(pairs) - comp_missing;
  // Missing pairs take the mean of the measured ones; a fully unmeasured
  // network degrades to "all pairs equal" exactly like network_loads().
  s.lat_fill =
      lat_measured > 0 ? lat_sum / static_cast<double>(lat_measured) : 100.0;
  s.comp_fill =
      comp_measured > 0 ? comp_sum / static_cast<double>(comp_measured) : 0.0;
  s.lat_s = lat_sum + static_cast<double>(lat_missing) * s.lat_fill;
  s.comp_s = comp_sum + static_cast<double>(comp_missing) * s.comp_fill;
  // Each sum-normalized column totals exactly 1 over the pairs, so the
  // off-diagonal mean is (active weights)/pairs analytically; dividing by it
  // is the unit-mean rescale without an extra O(n²) pass.
  const double weight_sum = (s.lat_s > 0.0 ? weights.latency : 0.0) +
                            (s.comp_s > 0.0 ? weights.bandwidth : 0.0);
  s.rescale =
      weight_sum > 0.0 ? static_cast<double>(pairs) / weight_sum : 1.0;
  return s;
}

void NlState::recompute_scalars() {
  // The totals come out of the exact accumulators — order-independent, so
  // the same whether every pair was just re-accumulated (full build) or a
  // few contributions were swapped in place (incremental). That identity is
  // what makes the two paths bit-identical.
  const NlScalars s =
      compute_nl_scalars(lat_acc_.to_double(), comp_acc_.to_double(),
                         lat_missing_, comp_missing_, lat_raw_.size(),
                         weights_);
  lat_fill_ = s.lat_fill;
  comp_fill_ = s.comp_fill;
  lat_s_ = s.lat_s;
  comp_s_ = s.comp_s;
  rescale_ = s.rescale;
}

void NlState::materialize(util::FlatMatrix& out) const {
  out.assign(n_, 0.0);
  const NlScalars s{lat_fill_, comp_fill_, lat_s_, comp_s_, rescale_};
  const std::size_t pairs = lat_raw_.size();
  for (std::size_t k = 0; k < pairs; ++k) {
    const double value = nl_value_from_raw(lat_raw_[k], comp_raw_[k], s,
                                           weights_);
    const std::size_t i = pair_i_[k];
    const std::size_t j = pair_j_[k];
    out[i][j] = value;
    out[j][i] = value;
  }
}

void TiledNlState::full_build(const PairSource& source,
                              std::span<const cluster::NodeId> nodes,
                              util::BlockPartition partition,
                              const NetworkLoadWeights& weights) {
  weights.validate();
  weights_ = weights;
  n_ = nodes.size();
  NLARM_CHECK(partition.position_count() == n_)
      << "partition covers " << partition.position_count() << " positions, "
      << "working set has " << n_;
  partition_ = std::move(partition);
  const std::size_t tiles = partition_.tile_count();
  tile_lat_.assign(tiles, {});
  tile_comp_.assign(tiles, {});
  tile_lat_missing_.assign(tiles, 0);
  tile_comp_missing_.assign(tiles, 0);
  tile_pairs_.assign(tiles, 0);
  lat_acc_.reset();
  comp_acc_.reset();
  lat_missing_ = 0;
  comp_missing_ = 0;
  pair_total_ = n_ < 2 ? 0 : n_ * (n_ - 1) / 2;

  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t bi = partition_.block_of(i);
    for (std::size_t j = i + 1; j < n_; ++j) {
      const std::size_t bj = partition_.block_of(j);
      const std::size_t t =
          partition_.tile_index(std::min(bi, bj), std::max(bi, bj));
      const PairSource::Raw raw = source.read(nodes[i], nodes[j]);
      ++tile_pairs_[t];
      if (raw.lat >= 0.0) {
        tile_lat_[t].add(raw.lat);
      } else {
        ++tile_lat_missing_[t];
      }
      if (raw.comp >= 0.0) {
        tile_comp_[t].add(raw.comp);
      } else {
        ++tile_comp_missing_[t];
      }
    }
  }
  // Fold the tile accumulators into the global totals. Limb addition is
  // associative and commutative, so this equals accumulating every pair
  // straight into the global sums — which is what the flat NlState does —
  // bit for bit.
  for (std::size_t t = 0; t < tiles; ++t) {
    lat_acc_.add(tile_lat_[t]);
    comp_acc_.add(tile_comp_[t]);
    lat_missing_ += tile_lat_missing_[t];
    comp_missing_ += tile_comp_missing_[t];
  }
  refresh_dirty();
}

void TiledNlState::patch_pair(const PairSource& old_source,
                              const PairSource& new_source,
                              std::span<const cluster::NodeId> nodes,
                              std::size_t i, std::size_t j) {
  NLARM_CHECK(i < j && j < n_) << "bad pair position (" << i << ", " << j
                               << ")";
  const std::size_t bi = partition_.block_of(i);
  const std::size_t bj = partition_.block_of(j);
  const std::size_t t =
      partition_.tile_index(std::min(bi, bj), std::max(bi, bj));
  const PairSource::Raw old_raw = old_source.read(nodes[i], nodes[j]);
  if (old_raw.lat >= 0.0) {
    tile_lat_[t].sub(old_raw.lat);
    lat_acc_.sub(old_raw.lat);
  } else {
    --tile_lat_missing_[t];
    --lat_missing_;
  }
  if (old_raw.comp >= 0.0) {
    tile_comp_[t].sub(old_raw.comp);
    comp_acc_.sub(old_raw.comp);
  } else {
    --tile_comp_missing_[t];
    --comp_missing_;
  }
  const PairSource::Raw new_raw = new_source.read(nodes[i], nodes[j]);
  if (new_raw.lat >= 0.0) {
    tile_lat_[t].add(new_raw.lat);
    lat_acc_.add(new_raw.lat);
  } else {
    ++tile_lat_missing_[t];
    ++lat_missing_;
  }
  if (new_raw.comp >= 0.0) {
    tile_comp_[t].add(new_raw.comp);
    comp_acc_.add(new_raw.comp);
  } else {
    ++tile_comp_missing_[t];
    ++comp_missing_;
  }
}

void TiledNlState::refresh_dirty() {
  scalars_ = compute_nl_scalars(lat_acc_.to_double(), comp_acc_.to_double(),
                                lat_missing_, comp_missing_, pair_total_,
                                weights_);
}

void TiledNlState::materialize_dense(const PairSource& source,
                                     std::span<const cluster::NodeId> nodes,
                                     util::FlatMatrix& out) const {
  NLARM_CHECK(nodes.size() == n_) << "working-set size changed";
  out.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      const PairSource::Raw raw = source.read(nodes[i], nodes[j]);
      const double value =
          nl_value_from_raw(raw.lat, raw.comp, scalars_, weights_);
      out[i][j] = value;
      out[j][i] = value;
    }
  }
}

double TiledNlState::tile_lat_mean(std::size_t t) const {
  const std::uint64_t pairs = tile_pairs_[t];
  if (pairs == 0) {
    return 0.0;
  }
  const double sum = tile_lat_[t].to_double() +
                     static_cast<double>(tile_lat_missing_[t]) *
                         scalars_.lat_fill;
  return sum / static_cast<double>(pairs);
}

double TiledNlState::tile_comp_mean(std::size_t t) const {
  const std::uint64_t pairs = tile_pairs_[t];
  if (pairs == 0) {
    return 0.0;
  }
  const double sum = tile_comp_[t].to_double() +
                     static_cast<double>(tile_comp_missing_[t]) *
                         scalars_.comp_fill;
  return sum / static_cast<double>(pairs);
}

std::size_t TiledNlState::memory_bytes() const {
  const std::size_t tiles = tile_pairs_.size();
  return partition_.memory_bytes() +
         tiles * (2 * sizeof(ExactSum) + 3 * sizeof(std::uint64_t));
}

}  // namespace detail

PairSource::Raw SnapshotPairSource::read(cluster::NodeId u,
                                         cluster::NodeId v) const {
  const monitor::NetSnapshot& net = snapshot_->net;
  const auto uu = static_cast<std::size_t>(u);
  const auto vv = static_cast<std::size_t>(v);
  const std::size_t edge = net.latency_us.size();
  NLARM_CHECK(uu < edge && vv < edge) << "pair out of snapshot";
  Raw raw;
  raw.lat = net.latency_us[uu][vv];
  const double bw = net.bandwidth_mbps[uu][vv];
  const double peak = net.peak_mbps[uu][vv];
  raw.comp = (bw < 0.0 || peak < 0.0) ? -1.0 : std::max(0.0, peak - bw);
  return raw;
}

std::span<const double> TiledPairState::tile_values(std::size_t a,
                                                    std::size_t b) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (!cache_ready_) {
    cache_.reset(partition);
    cache_ready_ = true;
  }
  return cache_.tile(partition, a, b, [&](std::size_t r, std::size_t c) {
    const PairSource::Raw raw = source->read(nodes[r], nodes[c]);
    return detail::nl_value_from_raw(raw.lat, raw.comp, scalars, weights);
  });
}

std::size_t TiledPairState::tiles_materialized() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.tiles_materialized();
}

std::size_t TiledPairState::tile_cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.cache_hits();
}

std::size_t TiledPairState::memory_bytes() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return partition.memory_bytes() +
         tiles.capacity() * sizeof(TileAggregate) +
         nodes.capacity() * sizeof(cluster::NodeId) + cache_.value_bytes();
}

void prepared_network_loads(const monitor::ClusterSnapshot& snapshot,
                            std::span<const cluster::NodeId> nodes,
                            const NetworkLoadWeights& weights,
                            util::FlatMatrix& out) {
  // Reused per thread so repeated one-shot preparations (the classic
  // allocator path) allocate nothing in steady state.
  thread_local detail::NlState state;
  state.full_build(snapshot, nodes, weights);
  state.materialize(out);
}

PreparedBuilder::PreparedBuilder(RequestProfile profile)
    : profile_(std::move(profile)) {
  profile_.compute_weights.validate();
  profile_.network_weights.validate();
  NLARM_CHECK(profile_.ppn >= 0) << "negative ppn";
}

PreparedBuilder::PreparedBuilder(RequestProfile profile, TilingOptions tiling)
    : PreparedBuilder(std::move(profile)) {
  tiling_ = tiling;
}

void PreparedBuilder::recompute_node_state() {
  if (usable_.empty()) {
    cl_.clear();
    pc_.clear();
    load_per_core_ = 0.0;
    effective_capacity_ = 0;
    return;
  }
  cl_ = rescale_unit_mean(
      compute_loads(*snapshot_, usable_, profile_.compute_weights));
  pc_ = effective_process_counts(*snapshot_, usable_, profile_.ppn);

  // Same accumulation order as the classic broker aggregates, so epoch gate
  // verdicts are bit-identical to ResourceBroker::aggregates().
  double load_sum = 0.0;
  double core_sum = 0.0;
  for (cluster::NodeId id : usable_) {
    const monitor::NodeSnapshot& node =
        snapshot_->nodes[static_cast<std::size_t>(id)];
    load_sum += node.cpu_load_avg.one_min;
    core_sum += static_cast<double>(node.spec.core_count);
  }
  load_per_core_ = core_sum > 0.0 ? load_sum / core_sum : 0.0;
  effective_capacity_ = 0;
  for (int c : pc_) effective_capacity_ += c;
}

void PreparedBuilder::rebuild(
    std::shared_ptr<const monitor::ClusterSnapshot> snapshot) {
  NLARM_CHECK(snapshot != nullptr) << "rebuild over a null snapshot";
  obs::ScopedSpan span("prepared.rebuild",
                       &obs::metrics::prepared_rebuild_seconds());
  obs::metrics::prepared_full_rebuilds().inc();
  snapshot_ = std::move(snapshot);
  usable_ = snapshot_->usable_nodes();
  pos_of_.assign(snapshot_->nodes.size(), -1);
  for (std::size_t i = 0; i < usable_.size(); ++i) {
    pos_of_[static_cast<std::size_t>(usable_[i])] =
        static_cast<std::int32_t>(i);
  }
  if (tiling_) {
    // Tiled mode keeps NO per-pair storage: pair state lives in O(G²) tile
    // accumulators, and the dense matrix (when still wanted) is
    // materialized straight from the snapshot at build().
    util::BlockPartition partition;
    if (tiling_->block_size > 0) {
      partition =
          util::BlockPartition::fixed(usable_.size(), tiling_->block_size);
    } else {
      std::vector<std::int32_t> labels(usable_.size());
      for (std::size_t i = 0; i < usable_.size(); ++i) {
        labels[i] = snapshot_
                        ->nodes[static_cast<std::size_t>(usable_[i])]
                        .spec.switch_id;
      }
      partition = util::BlockPartition::from_labels(labels);
    }
    const SnapshotPairSource source(snapshot_);
    tiled_state_.full_build(source, usable_, std::move(partition),
                            profile_.network_weights);
  } else {
    nl_state_.full_build(*snapshot_, usable_, profile_.network_weights);
  }
  recompute_node_state();
  version_ = snapshot_->version;
  time_ = snapshot_->time;
  has_state_ = true;
  nl_stale_ = true;
  incremental_ = false;
  delta_nodes_ = 0;
  delta_pairs_ = 0;
}

bool PreparedBuilder::update(
    std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
    const monitor::SnapshotDelta& delta) {
  NLARM_CHECK(snapshot != nullptr) << "update over a null snapshot";
  const auto fall_back = [&](const char* why) {
    NLARM_DEBUG << "prepared delta fallback (" << why << "): base "
                << delta.base_version << " -> " << delta.version
                << ", state " << version_;
    obs::metrics::prepared_incremental_fallbacks().inc();
    rebuild(std::move(snapshot));
    return false;
  };

  if (!has_state_) return fall_back("no prior state");
  if (delta.requires_full_rebuild()) return fall_back("delta demands full");
  if (delta.base_version != version_) return fall_back("version gap");
  if (snapshot->version != delta.version) return fall_back("stale snapshot");
  if (snapshot->nodes.size() != pos_of_.size()) {
    return fall_back("node count changed");
  }

  // A dirty node whose usability flipped (first record arriving, record
  // invalidated) changes the working set's shape — every position shifts,
  // so incremental application is off the table. Likewise, in tiled mode a
  // working-set node that moved to a different switch invalidates the block
  // partition the tile accumulators are keyed on.
  for (cluster::NodeId id : delta.dirty_nodes) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= snapshot->nodes.size()) return fall_back("node out of range");
    const bool now_usable =
        snapshot->livehosts[idx] && snapshot->nodes[idx].valid;
    if (now_usable != (pos_of_[idx] >= 0)) {
      return fall_back("usable set changed");
    }
    if (tiling_ && tiling_->block_size == 0 && pos_of_[idx] >= 0 &&
        snapshot->nodes[idx].spec.switch_id !=
            snapshot_->nodes[idx].spec.switch_id) {
      return fall_back("switch assignment changed");
    }
  }

  obs::ScopedSpan span("prepared.update",
                       &obs::metrics::prepared_update_seconds());
  obs::metrics::prepared_incremental_updates().inc();

  std::size_t applied_pairs = 0;
  // Tiled patching re-reads a pair's previous raw terms from the retained
  // previous snapshot — the same values the accumulators last absorbed —
  // so no per-pair storage is needed for the swap.
  std::optional<SnapshotPairSource> old_source;
  std::optional<SnapshotPairSource> new_source;
  if (tiling_) {
    old_source.emplace(snapshot_);
    new_source.emplace(snapshot);
  }
  // Re-reading dirty cells is a random walk over three V×V matrices;
  // prefetching a handful of pairs ahead overlaps the DRAM misses instead
  // of serializing them.
  constexpr std::size_t kAhead = 16;
  const auto& lat_m = snapshot->net.latency_us;
  const auto& bw_m = snapshot->net.bandwidth_mbps;
  const auto& peak_m = snapshot->net.peak_mbps;
  for (std::size_t a = 0; a < delta.dirty_pairs.size(); ++a) {
    if (a + kAhead < delta.dirty_pairs.size()) {
      const auto& [fu, fv] = delta.dirty_pairs[a + kAhead];
      const auto fuu = static_cast<std::size_t>(fu);
      const auto fvv = static_cast<std::size_t>(fv);
      const auto edge = static_cast<std::size_t>(snapshot->net.size());
      if (fuu < edge && fvv < edge) {
        __builtin_prefetch(lat_m[fuu] + fvv);
        __builtin_prefetch(bw_m[fuu] + fvv);
        __builtin_prefetch(peak_m[fuu] + fvv);
        const std::int32_t fpu = pos_of_[fuu];
        const std::int32_t fpv = pos_of_[fvv];
        if (!tiling_ && fpu >= 0 && fpv >= 0) {
          nl_state_.prefetch_pair(
              static_cast<std::size_t>(std::min(fpu, fpv)),
              static_cast<std::size_t>(std::max(fpu, fpv)));
        }
      }
    }
    const auto& [u, v] = delta.dirty_pairs[a];
    const std::int32_t pu = pos_of_[static_cast<std::size_t>(u)];
    const std::int32_t pv = pos_of_[static_cast<std::size_t>(v)];
    if (pu < 0 || pv < 0) continue;  // pair outside the working set
    const auto i = static_cast<std::size_t>(std::min(pu, pv));
    const auto j = static_cast<std::size_t>(std::max(pu, pv));
    if (tiling_) {
      tiled_state_.patch_pair(*old_source, *new_source, usable_, i, j);
    } else {
      nl_state_.patch_pair(*snapshot, usable_, i, j);
    }
    ++applied_pairs;
  }
  if (applied_pairs > 0) {
    if (tiling_) {
      tiled_state_.refresh_dirty();
    } else {
      nl_state_.refresh_dirty();
    }
    nl_stale_ = true;
  }

  std::size_t applied_nodes = 0;
  for (cluster::NodeId id : delta.dirty_nodes) {
    if (pos_of_[static_cast<std::size_t>(id)] >= 0) ++applied_nodes;
  }
  snapshot_ = std::move(snapshot);
  if (applied_nodes > 0) recompute_node_state();

  version_ = snapshot_->version;
  time_ = snapshot_->time;
  incremental_ = true;
  delta_nodes_ = applied_nodes;
  delta_pairs_ = applied_pairs;
  return true;
}

std::shared_ptr<PreparedSnapshot> PreparedBuilder::build() {
  NLARM_CHECK(has_state_) << "build() before rebuild()";
  if (tiling_) {
    if (nl_stale_ || tiles_cache_ == nullptr) {
      auto source = std::make_shared<SnapshotPairSource>(snapshot_);
      auto tiles = std::make_shared<TiledPairState>();
      tiles->partition = tiled_state_.partition();
      tiles->weights = profile_.network_weights;
      tiles->scalars = tiled_state_.scalars();
      tiles->nodes = usable_;
      tiles->source = source;
      const std::size_t tile_count = tiles->partition.tile_count();
      tiles->tiles.resize(tile_count);
      for (std::size_t t = 0; t < tile_count; ++t) {
        tiles->tiles[t] = {tiled_state_.tile_lat_mean(t),
                           tiled_state_.tile_comp_mean(t),
                           tiled_state_.tile_pairs(t)};
      }
      tiles_cache_ = std::move(tiles);
      if (usable_.size() <= tiling_->dense_nl_limit) {
        auto matrix = std::make_shared<util::FlatMatrix>();
        tiled_state_.materialize_dense(*source, usable_, *matrix);
        nl_cache_ = std::move(matrix);
      } else {
        nl_cache_ = nullptr;
      }
      nl_stale_ = false;
      obs::metrics::prepared_nl_materializations().inc();
    } else {
      // Node-only tick: pair state unchanged, so the previous tiled state
      // (and its source snapshot) is shared with the new epoch — the tiled
      // twin of the shared dense-NL fast path below.
      obs::metrics::prepared_nl_reuses().inc();
    }
  } else if (nl_stale_ || nl_cache_ == nullptr) {
    auto matrix = std::make_shared<util::FlatMatrix>();
    nl_state_.materialize(*matrix);
    nl_cache_ = std::move(matrix);
    nl_stale_ = false;
    obs::metrics::prepared_nl_materializations().inc();
  } else {
    obs::metrics::prepared_nl_reuses().inc();
  }
  auto prepared = std::make_shared<PreparedSnapshot>();
  prepared->snapshot = snapshot_;
  prepared->profile = profile_;
  prepared->version = version_;
  prepared->time = time_;
  prepared->usable = usable_;
  prepared->cl = cl_;
  prepared->nl = nl_cache_;
  prepared->tiles = tiles_cache_;
  prepared->pc = pc_;
  prepared->pos_of = pos_of_;
  prepared->load_per_core = load_per_core_;
  prepared->effective_capacity = effective_capacity_;
  prepared->incremental = incremental_;
  prepared->delta_nodes = delta_nodes_;
  prepared->delta_pairs = delta_pairs_;
  return prepared;
}

Allocation allocate_prepared(const PreparedSnapshot& prepared,
                             const AllocationRequest& request,
                             const GenerationOptions& options,
                             AllocStats* stats,
                             std::span<const int> pc_override,
                             std::span<const std::size_t> starts) {
  request.validate();
  NLARM_CHECK(RequestProfile::of(request) == prepared.profile)
      << "request profile does not match the epoch's prepared inputs";
  NLARM_CHECK(prepared.snapshot != nullptr) << "epoch carries no snapshot";
  NLARM_CHECK(prepared.nl != nullptr) << "epoch carries no NL matrix";
  NLARM_CHECK(!prepared.usable.empty()) << "no usable nodes in epoch";
  const std::span<const int> pc =
      pc_override.empty() ? std::span<const int>(prepared.pc) : pc_override;
  NLARM_CHECK(pc.size() == prepared.usable.size())
      << "pc override size mismatch";

  obs::metrics::alloc_requests().inc();
  AllocStats local_stats;
  AllocStats& out_stats = stats != nullptr ? *stats : local_stats;
  out_stats = AllocStats{};
  out_stats.prepared_cache_hit = true;  // the epoch IS the prepared state
  out_stats.usable_nodes = prepared.usable.size();
  obs::ScopedSpan total_span("alloc.total",
                             &obs::metrics::alloc_total_seconds());

  obs::ScopedSpan generate_span("alloc.generate",
                                &obs::metrics::alloc_generate_seconds());
  std::vector<Candidate> candidates =
      starts.empty()
          ? generate_all_candidates(prepared.cl, *prepared.nl, pc,
                                    request.nprocs, request.job, options)
          : generate_all_candidates(prepared.cl, *prepared.nl, pc,
                                    request.nprocs, request.job, starts,
                                    options);
  out_stats.generate_seconds = generate_span.stop();
  out_stats.candidates_generated = candidates.size();
  obs::metrics::alloc_candidates_generated().inc(candidates.size());
  if (static_cast<std::size_t>(request.nprocs) < prepared.usable.size()) {
    obs::metrics::alloc_topk_generations().inc();
  } else {
    obs::metrics::alloc_fullsort_generations().inc();
  }

  obs::ScopedSpan select_span("alloc.select",
                              &obs::metrics::alloc_select_seconds());
  const SelectionResult selection = select_best_candidate(
      std::move(candidates), prepared.cl, *prepared.nl, request.job);
  out_stats.select_seconds = select_span.stop();

  const ScoredCandidate& best = selection.scored[selection.best_index];
  out_stats.compute_cost = best.compute_cost;
  out_stats.network_cost = best.network_cost;
  Allocation allocation;
  allocation.policy = "network-load-aware";
  allocation.total_procs = request.nprocs;
  allocation.total_cost = best.total_cost;
  for (std::size_t i = 0; i < best.candidate.members.size(); ++i) {
    allocation.nodes.push_back(prepared.usable[best.candidate.members[i]]);
    allocation.procs_per_node.push_back(best.candidate.procs[i]);
  }
  annotate_allocation(allocation, *prepared.snapshot);
  out_stats.total_seconds = total_span.stop();
  out_stats.valid = true;
  return allocation;
}

namespace simd {

void score_addition_row_scalar(double alpha, std::span<const double> cl,
                               const double* nl_row, double beta,
                               std::span<double> out) {
  const std::size_t count = cl.size();
  for (std::size_t u = 0; u < count; ++u) {
    out[u] = alpha * cl[u] + beta * nl_row[u];
  }
}

namespace {

using ScoreFn = void (*)(double, std::span<const double>, const double*,
                         double, std::span<double>);

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NLARM_SIMD_AVX2 1
__attribute__((target("avx2"))) void score_addition_row_avx2(
    double alpha, std::span<const double> cl, const double* nl_row,
    double beta, std::span<double> out) {
  const std::size_t count = cl.size();
  const double* cl_p = cl.data();
  double* out_p = out.data();
  const __m256d va = _mm256_set1_pd(alpha);
  const __m256d vb = _mm256_set1_pd(beta);
  std::size_t u = 0;
  // mul + add, NOT vfmadd: two roundings per lane, exactly like the scalar
  // expression (a*c) + (b*n). That is what keeps the lanes bit-identical.
  for (; u + 4 <= count; u += 4) {
    const __m256d c = _mm256_loadu_pd(cl_p + u);
    const __m256d n = _mm256_loadu_pd(nl_row + u);
    const __m256d r =
        _mm256_add_pd(_mm256_mul_pd(va, c), _mm256_mul_pd(vb, n));
    _mm256_storeu_pd(out_p + u, r);
  }
  for (; u < count; ++u) {
    out_p[u] = alpha * cl_p[u] + beta * nl_row[u];
  }
}
#endif

#if defined(__aarch64__)
#define NLARM_SIMD_NEON 1
void score_addition_row_neon(double alpha, std::span<const double> cl,
                             const double* nl_row, double beta,
                             std::span<double> out) {
  const std::size_t count = cl.size();
  const double* cl_p = cl.data();
  double* out_p = out.data();
  const float64x2_t va = vdupq_n_f64(alpha);
  const float64x2_t vb = vdupq_n_f64(beta);
  std::size_t u = 0;
  for (; u + 2 <= count; u += 2) {
    const float64x2_t c = vld1q_f64(cl_p + u);
    const float64x2_t n = vld1q_f64(nl_row + u);
    // vmulq + vaddq (two roundings), never vfmaq: see the AVX2 note.
    const float64x2_t r = vaddq_f64(vmulq_f64(va, c), vmulq_f64(vb, n));
    vst1q_f64(out_p + u, r);
  }
  for (; u < count; ++u) {
    out_p[u] = alpha * cl_p[u] + beta * nl_row[u];
  }
}
#endif

/// True when `candidate` reproduces the scalar kernel bit for bit on a
/// probe row spanning several magnitude decades. Catches a toolchain that
/// contracted the scalar loop into FMAs (one rounding), where the two-
/// rounding vector lanes would differ in the last bit.
bool kernel_matches_scalar(ScoreFn candidate) {
  constexpr std::size_t kProbe = 37;  // odd: exercises the vector tail
  std::array<double, kProbe> cl_probe;
  std::array<double, kProbe> nl_probe;
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next01 = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (std::size_t i = 0; i < kProbe; ++i) {
    const double scale = std::pow(10.0, static_cast<double>(i % 9) - 4.0);
    cl_probe[i] = next01() * scale;
    nl_probe[i] = next01() * scale;
  }
  std::array<double, kProbe> want;
  std::array<double, kProbe> got;
  for (const double alpha : {0.3, 0.5, 0.999}) {
    const double beta = 1.0 - alpha;
    score_addition_row_scalar(alpha, cl_probe, nl_probe.data(), beta, want);
    candidate(alpha, cl_probe, nl_probe.data(), beta, got);
    if (std::memcmp(want.data(), got.data(), sizeof want) != 0) return false;
  }
  return true;
}

struct Dispatch {
  ScoreFn fn = &score_addition_row_scalar;
  Kernel kernel = Kernel::kScalar;

  Dispatch() {
#if defined(NLARM_SIMD_AVX2)
    if (__builtin_cpu_supports("avx2") &&
        kernel_matches_scalar(&score_addition_row_avx2)) {
      fn = &score_addition_row_avx2;
      kernel = Kernel::kAvx2;
    }
#elif defined(NLARM_SIMD_NEON)
    if (kernel_matches_scalar(&score_addition_row_neon)) {
      fn = &score_addition_row_neon;
      kernel = Kernel::kNeon;
    }
#endif
    obs::metrics::simd_kernel().set(static_cast<double>(kernel));
  }
};

const Dispatch& dispatch() {
  static const Dispatch instance;
  return instance;
}

}  // namespace

void score_addition_row(double alpha, std::span<const double> cl,
                        const double* nl_row, double beta,
                        std::span<double> out) {
  dispatch().fn(alpha, cl, nl_row, beta, out);
}

Kernel active_kernel() { return dispatch().kernel; }

const char* active_kernel_name() {
  switch (dispatch().kernel) {
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kNeon:
      return "neon";
    case Kernel::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace simd

}  // namespace nlarm::core
