#include "core/prepared.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

#include "core/compute_load.h"
#include "core/normalize.h"
#include "core/selection.h"
#include "obs/catalog.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace nlarm::core {

namespace detail {

namespace {

/// Fork-join range count for `pool` over `items` units of work: one range
/// per worker plus the participating caller. The range count only affects
/// scheduling, never bits — partials fold with exact integer addition in
/// canonical range order, so ANY range count lands on the same totals.
std::size_t range_count_for(const util::ThreadPool* pool, std::size_t items) {
  if (pool == nullptr || pool->thread_count() == 0 || items < 2) return 1;
  return std::min(items, pool->thread_count() + 1);
}

/// Row-range boundaries [bounds[r], bounds[r+1]) over an n-row upper
/// triangle, balanced by pair count (row i carries n−1−i pairs, so equal
/// row counts would leave the first range with almost all the work).
std::vector<std::size_t> balanced_row_bounds(std::size_t n,
                                             std::size_t ranges) {
  std::vector<std::size_t> bounds(1, 0);
  if (ranges <= 1 || n == 0) {
    bounds.push_back(n);
    return bounds;
  }
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t seen = 0;
  std::size_t row = 0;
  for (std::size_t r = 1; r < ranges; ++r) {
    const std::uint64_t target = total * r / ranges;
    while (row < n && seen < target) {
      seen += n - 1 - row;
      ++row;
    }
    bounds.push_back(row);
  }
  bounds.push_back(n);
  return bounds;
}

}  // namespace

void ExactSum::accumulate(double v, bool negate) {
  if (!(v > 0.0)) return;  // zero adds nothing; NaN/negatives never arrive
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const int exp = static_cast<int>(bits >> 52);  // sign bit is clear: v > 0
  if (exp == 0) return;  // subnormal: far below the window, contributes 0
  const std::uint64_t mant =
      (bits & ((std::uint64_t{1} << 52) - 1)) | (std::uint64_t{1} << 52);
  // value = mant × 2^(exp − 1075); in units of the 2⁻⁸⁰ LSB the mantissa
  // lands at bit (exp − 995). +inf (exp 0x7ff) rides the same clamp as any
  // over-the-top finite value.
  int shift = exp - 995;
  if (shift < 0) return;
  if (shift > 191) shift = 191;  // keep mant's two limbs inside limbs_[0..3]
  const unsigned __int128 wide = static_cast<unsigned __int128>(mant)
                                 << (shift & 63);
  const std::uint64_t part[2] = {static_cast<std::uint64_t>(wide),
                                 static_cast<std::uint64_t>(wide >> 64)};
  const int idx = shift >> 6;
  if (negate) {
    unsigned __int128 borrow = 0;
    for (int l = idx, p = 0; l < 4; ++l, ++p) {
      const unsigned __int128 take = (p < 2 ? part[p] : 0) + borrow;
      const std::uint64_t before = limbs_[static_cast<std::size_t>(l)];
      limbs_[static_cast<std::size_t>(l)] =
          before - static_cast<std::uint64_t>(take);
      borrow = static_cast<unsigned __int128>(before) < take ? 1 : 0;
      if (p >= 2 && borrow == 0) break;
    }
  } else {
    unsigned __int128 carry = 0;
    for (int l = idx, p = 0; l < 4; ++l, ++p) {
      const unsigned __int128 sum =
          static_cast<unsigned __int128>(limbs_[static_cast<std::size_t>(l)]) +
          (p < 2 ? part[p] : 0) + carry;
      limbs_[static_cast<std::size_t>(l)] = static_cast<std::uint64_t>(sum);
      carry = sum >> 64;
      if (p >= 2 && carry == 0) break;
    }
  }
}

void ExactSum::add(const ExactSum& other) {
  unsigned __int128 carry = 0;
  for (std::size_t l = 0; l < limbs_.size(); ++l) {
    const unsigned __int128 sum = static_cast<unsigned __int128>(limbs_[l]) +
                                  other.limbs_[l] + carry;
    limbs_[l] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
}

double ExactSum::to_double() const {
  return std::ldexp(static_cast<double>(limbs_[3]), 112) +
         std::ldexp(static_cast<double>(limbs_[2]), 48) +
         std::ldexp(static_cast<double>(limbs_[1]), -16) +
         std::ldexp(static_cast<double>(limbs_[0]), -80);
}

void NlState::read_pair(const monitor::ClusterSnapshot& snapshot,
                        cluster::NodeId u, cluster::NodeId v, std::size_t k) {
  const auto uu = static_cast<std::size_t>(u);
  const auto vv = static_cast<std::size_t>(v);
  lat_raw_[k] = snapshot.net.latency_us[uu][vv];
  const double bw = snapshot.net.bandwidth_mbps[uu][vv];
  const double peak = snapshot.net.peak_mbps[uu][vv];
  comp_raw_[k] = (bw < 0.0 || peak < 0.0) ? -1.0 : std::max(0.0, peak - bw);
}

void NlState::full_build(const monitor::ClusterSnapshot& snapshot,
                         std::span<const cluster::NodeId> nodes,
                         const NetworkLoadWeights& weights,
                         util::ThreadPool* pool) {
  weights.validate();
  weights_ = weights;
  n_ = nodes.size();
  const std::size_t pair_count = n_ < 2 ? 0 : n_ * (n_ - 1) / 2;
  lat_raw_.resize(pair_count);
  comp_raw_.resize(pair_count);
  pair_i_.resize(pair_count);
  pair_j_.resize(pair_count);

  const auto matrix_size = static_cast<std::size_t>(snapshot.net.size());
  lat_acc_.reset();
  comp_acc_.reset();
  lat_missing_ = 0;
  comp_missing_ = 0;

  // Per-range partial totals. Each row range writes disjoint slices of the
  // raw/reverse-map arrays and accumulates into its own partial; the fold
  // below (canonical range order, exact integer addition) makes the result
  // equal to accumulating every pair straight into the globals, bit for
  // bit, regardless of the range count.
  struct RangeTotals {
    ExactSum lat;
    ExactSum comp;
    std::uint64_t lat_missing = 0;
    std::uint64_t comp_missing = 0;
  };
  const std::size_t ranges = range_count_for(pool, n_);
  const std::vector<std::size_t> bounds = balanced_row_bounds(n_, ranges);
  std::vector<RangeTotals> partials(ranges);
  const auto build_rows = [&](std::size_t r) {
    RangeTotals& part = partials[r];
    for (std::size_t i = bounds[r]; i < bounds[r + 1]; ++i) {
      const auto ui = static_cast<std::size_t>(nodes[i]);
      NLARM_CHECK(ui < matrix_size) << "pair out of snapshot";
      std::size_t k = pair_index(i, i + 1);
      for (std::size_t j = i + 1; j < n_; ++j, ++k) {
        const auto vj = static_cast<std::size_t>(nodes[j]);
        NLARM_CHECK(vj < matrix_size) << "pair out of snapshot";
        NLARM_CHECK(vj != ui) << "pair metrics of a self pair";
        pair_i_[k] = static_cast<std::uint32_t>(i);
        pair_j_[k] = static_cast<std::uint32_t>(j);
        read_pair(snapshot, nodes[i], nodes[j], k);
        const double lat = lat_raw_[k];
        if (lat >= 0.0) {
          part.lat.add(lat);
        } else {
          ++part.lat_missing;
        }
        const double comp = comp_raw_[k];
        if (comp >= 0.0) {
          part.comp.add(comp);
        } else {
          ++part.comp_missing;
        }
      }
    }
  };
  if (ranges <= 1) {
    if (n_ > 0) build_rows(0);
  } else {
    pool->parallel_for(ranges, build_rows);
  }
  for (const RangeTotals& part : partials) {
    lat_acc_.add(part.lat);
    comp_acc_.add(part.comp);
    lat_missing_ += part.lat_missing;
    comp_missing_ += part.comp_missing;
  }
  recompute_scalars();
}

void NlState::account_add(std::size_t k) {
  const double lat = lat_raw_[k];
  if (lat >= 0.0) {
    lat_acc_.add(lat);
  } else {
    ++lat_missing_;
  }
  const double comp = comp_raw_[k];
  if (comp >= 0.0) {
    comp_acc_.add(comp);
  } else {
    ++comp_missing_;
  }
}

void NlState::account_remove(std::size_t k) {
  const double lat = lat_raw_[k];
  if (lat >= 0.0) {
    lat_acc_.sub(lat);
  } else {
    --lat_missing_;
  }
  const double comp = comp_raw_[k];
  if (comp >= 0.0) {
    comp_acc_.sub(comp);
  } else {
    --comp_missing_;
  }
}

void NlState::patch_pair(const monitor::ClusterSnapshot& snapshot,
                         std::span<const cluster::NodeId> nodes,
                         std::size_t i, std::size_t j) {
  NLARM_CHECK(i < j && j < n_) << "bad pair position (" << i << ", " << j
                               << ")";
  const std::size_t k = pair_index(i, j);
  account_remove(k);
  read_pair(snapshot, nodes[i], nodes[j], k);
  account_add(k);
}

void NlState::refresh_dirty() { recompute_scalars(); }

void NlState::patch_pairs(const monitor::ClusterSnapshot& snapshot,
                          std::span<const cluster::NodeId> nodes,
                          std::span<const PairPosition> pairs,
                          util::ThreadPool* pool) {
  const std::size_t pair_count = lat_raw_.size();
  if (pairs.empty() || pair_count == 0) return;
  // Re-reading dirty cells is a random walk over three V×V matrices;
  // prefetching a handful of pairs ahead overlaps the DRAM misses instead
  // of serializing them (both the serial loop and each shard queue below).
  constexpr std::size_t kAhead = 16;
  const auto& lat_m = snapshot.net.latency_us;
  const auto& bw_m = snapshot.net.bandwidth_mbps;
  const auto& peak_m = snapshot.net.peak_mbps;
  const auto prefetch = [&](std::span<const PairPosition> queue,
                            std::size_t a) {
    if (a + kAhead >= queue.size()) return;
    const PairPosition& f = queue[a + kAhead];
    const auto fu = static_cast<std::size_t>(nodes[f.i]);
    const auto fv = static_cast<std::size_t>(nodes[f.j]);
    __builtin_prefetch(lat_m[fu] + fv);
    __builtin_prefetch(bw_m[fu] + fv);
    __builtin_prefetch(peak_m[fu] + fv);
    prefetch_pair(f.i, f.j);
  };

  const std::size_t shards = range_count_for(pool, pairs.size());
  if (shards <= 1) {
    for (std::size_t a = 0; a < pairs.size(); ++a) {
      prefetch(pairs, a);
      patch_pair(snapshot, nodes, pairs[a].i, pairs[a].j);
    }
    return;
  }

  // Shard by contiguous pair-index range: duplicates of one pair share an
  // index, so they land in one shard and replay there in delta order —
  // exactly the serial sequence of raw-array writes. Each shard folds its
  // swaps into one exact (new − old) delta (sub() wraps mod 2²⁵⁶, so a
  // net-negative delta is fine); adding the shard deltas to the globals in
  // canonical shard order restores the serial totals bit for bit.
  struct Shard {
    std::vector<PairPosition> queue;
    ExactSum lat_delta;
    ExactSum comp_delta;
    std::int64_t lat_missing_delta = 0;
    std::int64_t comp_missing_delta = 0;
  };
  std::vector<Shard> shard_v(shards);
  for (const PairPosition& p : pairs) {
    NLARM_CHECK(p.i < p.j && p.j < n_)
        << "bad pair position (" << p.i << ", " << p.j << ")";
    const std::size_t k = pair_index(p.i, p.j);
    shard_v[k * shards / pair_count].queue.push_back(p);
  }
  pool->parallel_for(shards, [&](std::size_t s) {
    Shard& shard = shard_v[s];
    const std::span<const PairPosition> queue(shard.queue);
    for (std::size_t a = 0; a < queue.size(); ++a) {
      prefetch(queue, a);
      const PairPosition& p = queue[a];
      const std::size_t k = pair_index(p.i, p.j);
      const double old_lat = lat_raw_[k];
      if (old_lat >= 0.0) {
        shard.lat_delta.sub(old_lat);
      } else {
        --shard.lat_missing_delta;
      }
      const double old_comp = comp_raw_[k];
      if (old_comp >= 0.0) {
        shard.comp_delta.sub(old_comp);
      } else {
        --shard.comp_missing_delta;
      }
      read_pair(snapshot, nodes[p.i], nodes[p.j], k);
      const double new_lat = lat_raw_[k];
      if (new_lat >= 0.0) {
        shard.lat_delta.add(new_lat);
      } else {
        ++shard.lat_missing_delta;
      }
      const double new_comp = comp_raw_[k];
      if (new_comp >= 0.0) {
        shard.comp_delta.add(new_comp);
      } else {
        ++shard.comp_missing_delta;
      }
    }
  });
  for (const Shard& shard : shard_v) {
    lat_acc_.add(shard.lat_delta);
    comp_acc_.add(shard.comp_delta);
    lat_missing_ += static_cast<std::uint64_t>(shard.lat_missing_delta);
    comp_missing_ += static_cast<std::uint64_t>(shard.comp_missing_delta);
  }
}

NlScalars compute_nl_scalars(double lat_sum, double comp_sum,
                             std::uint64_t lat_missing,
                             std::uint64_t comp_missing, std::size_t pairs,
                             const NetworkLoadWeights& weights) {
  NlScalars s;
  const std::uint64_t lat_measured =
      static_cast<std::uint64_t>(pairs) - lat_missing;
  const std::uint64_t comp_measured =
      static_cast<std::uint64_t>(pairs) - comp_missing;
  // Missing pairs take the mean of the measured ones; a fully unmeasured
  // network degrades to "all pairs equal" exactly like network_loads().
  s.lat_fill =
      lat_measured > 0 ? lat_sum / static_cast<double>(lat_measured) : 100.0;
  s.comp_fill =
      comp_measured > 0 ? comp_sum / static_cast<double>(comp_measured) : 0.0;
  s.lat_s = lat_sum + static_cast<double>(lat_missing) * s.lat_fill;
  s.comp_s = comp_sum + static_cast<double>(comp_missing) * s.comp_fill;
  // Each sum-normalized column totals exactly 1 over the pairs, so the
  // off-diagonal mean is (active weights)/pairs analytically; dividing by it
  // is the unit-mean rescale without an extra O(n²) pass.
  const double weight_sum = (s.lat_s > 0.0 ? weights.latency : 0.0) +
                            (s.comp_s > 0.0 ? weights.bandwidth : 0.0);
  s.rescale =
      weight_sum > 0.0 ? static_cast<double>(pairs) / weight_sum : 1.0;
  return s;
}

void NlState::recompute_scalars() {
  // The totals come out of the exact accumulators — order-independent, so
  // the same whether every pair was just re-accumulated (full build) or a
  // few contributions were swapped in place (incremental). That identity is
  // what makes the two paths bit-identical.
  const NlScalars s =
      compute_nl_scalars(lat_acc_.to_double(), comp_acc_.to_double(),
                         lat_missing_, comp_missing_, lat_raw_.size(),
                         weights_);
  lat_fill_ = s.lat_fill;
  comp_fill_ = s.comp_fill;
  lat_s_ = s.lat_s;
  comp_s_ = s.comp_s;
  rescale_ = s.rescale;
}

void NlState::materialize(util::FlatMatrix& out,
                          util::ThreadPool* pool) const {
  out.assign(n_, 0.0);
  const NlScalars s{lat_fill_, comp_fill_, lat_s_, comp_s_, rescale_};
  const std::size_t pairs = lat_raw_.size();
  const auto fill = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const double value = nl_value_from_raw(lat_raw_[k], comp_raw_[k], s,
                                             weights_);
      const std::size_t i = pair_i_[k];
      const std::size_t j = pair_j_[k];
      out[i][j] = value;
      out[j][i] = value;
    }
  };
  // Each pair owns two cells nobody else writes, and the value depends only
  // on shared immutable state — any partition of k is bit-identical.
  const std::size_t ranges = range_count_for(pool, pairs);
  if (ranges <= 1) {
    fill(0, pairs);
    return;
  }
  pool->parallel_for(ranges, [&](std::size_t r) {
    fill(pairs * r / ranges, pairs * (r + 1) / ranges);
  });
}

void TiledNlState::full_build(const PairSource& source,
                              std::span<const cluster::NodeId> nodes,
                              util::BlockPartition partition,
                              const NetworkLoadWeights& weights,
                              util::ThreadPool* pool) {
  weights.validate();
  weights_ = weights;
  n_ = nodes.size();
  NLARM_CHECK(partition.position_count() == n_)
      << "partition covers " << partition.position_count() << " positions, "
      << "working set has " << n_;
  partition_ = std::move(partition);
  const std::size_t tiles = partition_.tile_count();
  tile_lat_.assign(tiles, {});
  tile_comp_.assign(tiles, {});
  tile_lat_missing_.assign(tiles, 0);
  tile_comp_missing_.assign(tiles, 0);
  tile_pairs_.assign(tiles, 0);
  lat_acc_.reset();
  comp_acc_.reset();
  lat_missing_ = 0;
  comp_missing_ = 0;
  pair_total_ = n_ < 2 ? 0 : n_ * (n_ - 1) / 2;

  const std::size_t ranges = range_count_for(pool, n_);
  if (ranges <= 1) {
    for (std::size_t i = 0; i < n_; ++i) {
      const std::size_t bi = partition_.block_of(i);
      for (std::size_t j = i + 1; j < n_; ++j) {
        const std::size_t bj = partition_.block_of(j);
        const std::size_t t =
            partition_.tile_index(std::min(bi, bj), std::max(bi, bj));
        const PairSource::Raw raw = source.read(nodes[i], nodes[j]);
        ++tile_pairs_[t];
        if (raw.lat >= 0.0) {
          tile_lat_[t].add(raw.lat);
        } else {
          ++tile_lat_missing_[t];
        }
        if (raw.comp >= 0.0) {
          tile_comp_[t].add(raw.comp);
        } else {
          ++tile_comp_missing_[t];
        }
      }
    }
  } else {
    // Each row range accumulates a private dense set of per-tile partials
    // (O(ranges × G²) transient memory — megabytes at refresh scale), then
    // the partials fold per tile in canonical range order. Integer limb
    // addition makes the folded tile accumulators equal the serial ones
    // bit for bit.
    struct TilePartials {
      std::vector<ExactSum> lat;
      std::vector<ExactSum> comp;
      std::vector<std::uint64_t> lat_missing;
      std::vector<std::uint64_t> comp_missing;
      std::vector<std::uint64_t> pairs;
    };
    const std::vector<std::size_t> bounds = balanced_row_bounds(n_, ranges);
    std::vector<TilePartials> partials(ranges);
    pool->parallel_for(ranges, [&](std::size_t r) {
      TilePartials& part = partials[r];
      part.lat.assign(tiles, {});
      part.comp.assign(tiles, {});
      part.lat_missing.assign(tiles, 0);
      part.comp_missing.assign(tiles, 0);
      part.pairs.assign(tiles, 0);
      for (std::size_t i = bounds[r]; i < bounds[r + 1]; ++i) {
        const std::size_t bi = partition_.block_of(i);
        for (std::size_t j = i + 1; j < n_; ++j) {
          const std::size_t bj = partition_.block_of(j);
          const std::size_t t =
              partition_.tile_index(std::min(bi, bj), std::max(bi, bj));
          const PairSource::Raw raw = source.read(nodes[i], nodes[j]);
          ++part.pairs[t];
          if (raw.lat >= 0.0) {
            part.lat[t].add(raw.lat);
          } else {
            ++part.lat_missing[t];
          }
          if (raw.comp >= 0.0) {
            part.comp[t].add(raw.comp);
          } else {
            ++part.comp_missing[t];
          }
        }
      }
    });
    for (const TilePartials& part : partials) {
      for (std::size_t t = 0; t < tiles; ++t) {
        tile_lat_[t].add(part.lat[t]);
        tile_comp_[t].add(part.comp[t]);
        tile_lat_missing_[t] += part.lat_missing[t];
        tile_comp_missing_[t] += part.comp_missing[t];
        tile_pairs_[t] += part.pairs[t];
      }
    }
  }
  // Fold the tile accumulators into the global totals. Limb addition is
  // associative and commutative, so this equals accumulating every pair
  // straight into the global sums — which is what the flat NlState does —
  // bit for bit.
  for (std::size_t t = 0; t < tiles; ++t) {
    lat_acc_.add(tile_lat_[t]);
    comp_acc_.add(tile_comp_[t]);
    lat_missing_ += tile_lat_missing_[t];
    comp_missing_ += tile_comp_missing_[t];
  }
  refresh_dirty();
}

void TiledNlState::patch_pair(const PairSource& old_source,
                              const PairSource& new_source,
                              std::span<const cluster::NodeId> nodes,
                              std::size_t i, std::size_t j) {
  NLARM_CHECK(i < j && j < n_) << "bad pair position (" << i << ", " << j
                               << ")";
  const std::size_t bi = partition_.block_of(i);
  const std::size_t bj = partition_.block_of(j);
  const std::size_t t =
      partition_.tile_index(std::min(bi, bj), std::max(bi, bj));
  const PairSource::Raw old_raw = old_source.read(nodes[i], nodes[j]);
  if (old_raw.lat >= 0.0) {
    tile_lat_[t].sub(old_raw.lat);
    lat_acc_.sub(old_raw.lat);
  } else {
    --tile_lat_missing_[t];
    --lat_missing_;
  }
  if (old_raw.comp >= 0.0) {
    tile_comp_[t].sub(old_raw.comp);
    comp_acc_.sub(old_raw.comp);
  } else {
    --tile_comp_missing_[t];
    --comp_missing_;
  }
  const PairSource::Raw new_raw = new_source.read(nodes[i], nodes[j]);
  if (new_raw.lat >= 0.0) {
    tile_lat_[t].add(new_raw.lat);
    lat_acc_.add(new_raw.lat);
  } else {
    ++tile_lat_missing_[t];
    ++lat_missing_;
  }
  if (new_raw.comp >= 0.0) {
    tile_comp_[t].add(new_raw.comp);
    comp_acc_.add(new_raw.comp);
  } else {
    ++tile_comp_missing_[t];
    ++comp_missing_;
  }
}

void TiledNlState::patch_pairs(const PairSource& old_source,
                               const PairSource& new_source,
                               std::span<const cluster::NodeId> nodes,
                               std::span<const PairPosition> pairs,
                               util::ThreadPool* pool) {
  if (pairs.empty()) return;
  const std::size_t tiles = tile_pairs_.size();
  const std::size_t shards = range_count_for(pool, pairs.size());
  if (shards <= 1 || tiles == 0) {
    for (const PairPosition& p : pairs) {
      patch_pair(old_source, new_source, nodes, p.i, p.j);
    }
    return;
  }

  // Shard by tile-index range: a shard owns a disjoint interval of tiles,
  // so its direct tile-accumulator mutations race with nobody, and
  // same-tile pairs (including duplicates) replay in delta order inside
  // one shard — the serial sequence exactly. Global totals go through
  // per-shard exact deltas folded in canonical shard order.
  struct Shard {
    std::vector<PairPosition> queue;
    ExactSum lat_delta;
    ExactSum comp_delta;
    std::int64_t lat_missing_delta = 0;
    std::int64_t comp_missing_delta = 0;
  };
  std::vector<Shard> shard_v(shards);
  for (const PairPosition& p : pairs) {
    NLARM_CHECK(p.i < p.j && p.j < n_)
        << "bad pair position (" << p.i << ", " << p.j << ")";
    const std::size_t bi = partition_.block_of(p.i);
    const std::size_t bj = partition_.block_of(p.j);
    const std::size_t t =
        partition_.tile_index(std::min(bi, bj), std::max(bi, bj));
    shard_v[t * shards / tiles].queue.push_back(p);
  }
  pool->parallel_for(shards, [&](std::size_t s) {
    Shard& shard = shard_v[s];
    for (const PairPosition& p : shard.queue) {
      const std::size_t bi = partition_.block_of(p.i);
      const std::size_t bj = partition_.block_of(p.j);
      const std::size_t t =
          partition_.tile_index(std::min(bi, bj), std::max(bi, bj));
      const PairSource::Raw old_raw = old_source.read(nodes[p.i], nodes[p.j]);
      if (old_raw.lat >= 0.0) {
        tile_lat_[t].sub(old_raw.lat);
        shard.lat_delta.sub(old_raw.lat);
      } else {
        --tile_lat_missing_[t];
        --shard.lat_missing_delta;
      }
      if (old_raw.comp >= 0.0) {
        tile_comp_[t].sub(old_raw.comp);
        shard.comp_delta.sub(old_raw.comp);
      } else {
        --tile_comp_missing_[t];
        --shard.comp_missing_delta;
      }
      const PairSource::Raw new_raw = new_source.read(nodes[p.i], nodes[p.j]);
      if (new_raw.lat >= 0.0) {
        tile_lat_[t].add(new_raw.lat);
        shard.lat_delta.add(new_raw.lat);
      } else {
        ++tile_lat_missing_[t];
        ++shard.lat_missing_delta;
      }
      if (new_raw.comp >= 0.0) {
        tile_comp_[t].add(new_raw.comp);
        shard.comp_delta.add(new_raw.comp);
      } else {
        ++tile_comp_missing_[t];
        ++shard.comp_missing_delta;
      }
    }
  });
  for (const Shard& shard : shard_v) {
    lat_acc_.add(shard.lat_delta);
    comp_acc_.add(shard.comp_delta);
    lat_missing_ += static_cast<std::uint64_t>(shard.lat_missing_delta);
    comp_missing_ += static_cast<std::uint64_t>(shard.comp_missing_delta);
  }
}

void TiledNlState::refresh_dirty() {
  scalars_ = compute_nl_scalars(lat_acc_.to_double(), comp_acc_.to_double(),
                                lat_missing_, comp_missing_, pair_total_,
                                weights_);
}

void TiledNlState::materialize_dense(const PairSource& source,
                                     std::span<const cluster::NodeId> nodes,
                                     util::FlatMatrix& out,
                                     util::ThreadPool* pool) const {
  NLARM_CHECK(nodes.size() == n_) << "working-set size changed";
  out.assign(n_, 0.0);
  const auto fill_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = i + 1; j < n_; ++j) {
        const PairSource::Raw raw = source.read(nodes[i], nodes[j]);
        const double value =
            nl_value_from_raw(raw.lat, raw.comp, scalars_, weights_);
        out[i][j] = value;
        out[j][i] = value;
      }
    }
  };
  // Row ranges write disjoint cells: range owning row i writes out[i][j]
  // and the mirror out[j][i] — column i of later rows, which no other
  // range's pairs touch.
  const std::size_t ranges = range_count_for(pool, n_);
  if (ranges <= 1) {
    fill_rows(0, n_);
    return;
  }
  const std::vector<std::size_t> bounds = balanced_row_bounds(n_, ranges);
  pool->parallel_for(ranges, [&](std::size_t r) {
    fill_rows(bounds[r], bounds[r + 1]);
  });
}

double TiledNlState::tile_lat_mean(std::size_t t) const {
  const std::uint64_t pairs = tile_pairs_[t];
  if (pairs == 0) {
    return 0.0;
  }
  const double sum = tile_lat_[t].to_double() +
                     static_cast<double>(tile_lat_missing_[t]) *
                         scalars_.lat_fill;
  return sum / static_cast<double>(pairs);
}

double TiledNlState::tile_comp_mean(std::size_t t) const {
  const std::uint64_t pairs = tile_pairs_[t];
  if (pairs == 0) {
    return 0.0;
  }
  const double sum = tile_comp_[t].to_double() +
                     static_cast<double>(tile_comp_missing_[t]) *
                         scalars_.comp_fill;
  return sum / static_cast<double>(pairs);
}

std::size_t TiledNlState::memory_bytes() const {
  const std::size_t tiles = tile_pairs_.size();
  return partition_.memory_bytes() +
         tiles * (2 * sizeof(ExactSum) + 3 * sizeof(std::uint64_t));
}

}  // namespace detail

PairSource::Raw SnapshotPairSource::read(cluster::NodeId u,
                                         cluster::NodeId v) const {
  const monitor::NetSnapshot& net = snapshot_->net;
  const auto uu = static_cast<std::size_t>(u);
  const auto vv = static_cast<std::size_t>(v);
  const std::size_t edge = net.latency_us.size();
  NLARM_CHECK(uu < edge && vv < edge) << "pair out of snapshot";
  Raw raw;
  raw.lat = net.latency_us[uu][vv];
  const double bw = net.bandwidth_mbps[uu][vv];
  const double peak = net.peak_mbps[uu][vv];
  raw.comp = (bw < 0.0 || peak < 0.0) ? -1.0 : std::max(0.0, peak - bw);
  return raw;
}

std::span<const double> TiledPairState::tile_values(std::size_t a,
                                                    std::size_t b) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (!cache_ready_) {
    cache_.reset(partition);
    cache_ready_ = true;
  }
  return cache_.tile(partition, a, b, [&](std::size_t r, std::size_t c) {
    const PairSource::Raw raw = source->read(nodes[r], nodes[c]);
    return detail::nl_value_from_raw(raw.lat, raw.comp, scalars, weights);
  });
}

std::size_t TiledPairState::tiles_materialized() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.tiles_materialized();
}

std::size_t TiledPairState::tile_cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.cache_hits();
}

std::size_t TiledPairState::memory_bytes() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return partition.memory_bytes() +
         tiles.capacity() * sizeof(TileAggregate) +
         nodes.capacity() * sizeof(cluster::NodeId) + cache_.value_bytes();
}

void prepared_network_loads(const monitor::ClusterSnapshot& snapshot,
                            std::span<const cluster::NodeId> nodes,
                            const NetworkLoadWeights& weights,
                            util::FlatMatrix& out) {
  // Reused per thread so repeated one-shot preparations (the classic
  // allocator path) allocate nothing in steady state.
  thread_local detail::NlState state;
  state.full_build(snapshot, nodes, weights);
  state.materialize(out);
}

PreparedBuilder::PreparedBuilder(RequestProfile profile)
    : profile_(std::move(profile)) {
  profile_.compute_weights.validate();
  profile_.network_weights.validate();
  NLARM_CHECK(profile_.ppn >= 0) << "negative ppn";
}

PreparedBuilder::PreparedBuilder(RequestProfile profile, TilingOptions tiling)
    : PreparedBuilder(std::move(profile)) {
  tiling_ = tiling;
}

void PreparedBuilder::recompute_node_state() {
  if (usable_.empty()) {
    cl_.clear();
    pc_.clear();
    load_per_core_ = 0.0;
    effective_capacity_ = 0;
    return;
  }
  cl_ = rescale_unit_mean(
      compute_loads(*snapshot_, usable_, profile_.compute_weights));
  pc_ = effective_process_counts(*snapshot_, usable_, profile_.ppn);

  // Same accumulation order as the classic broker aggregates, so epoch gate
  // verdicts are bit-identical to ResourceBroker::aggregates().
  double load_sum = 0.0;
  double core_sum = 0.0;
  for (cluster::NodeId id : usable_) {
    const monitor::NodeSnapshot& node =
        snapshot_->nodes[static_cast<std::size_t>(id)];
    load_sum += node.cpu_load_avg.one_min;
    core_sum += static_cast<double>(node.spec.core_count);
  }
  load_per_core_ = core_sum > 0.0 ? load_sum / core_sum : 0.0;
  effective_capacity_ = 0;
  for (int c : pc_) effective_capacity_ += c;
}

void PreparedBuilder::rebuild(
    std::shared_ptr<const monitor::ClusterSnapshot> snapshot) {
  NLARM_CHECK(snapshot != nullptr) << "rebuild over a null snapshot";
  obs::ScopedSpan span("prepared.rebuild",
                       &obs::metrics::prepared_rebuild_seconds());
  obs::metrics::prepared_full_rebuilds().inc();
  if (pool_ != nullptr && pool_->thread_count() > 0) {
    obs::metrics::refresh_parallel_rebuilds().inc();
  }
  snapshot_ = std::move(snapshot);
  usable_ = snapshot_->usable_nodes();
  pos_of_.assign(snapshot_->nodes.size(), -1);
  for (std::size_t i = 0; i < usable_.size(); ++i) {
    pos_of_[static_cast<std::size_t>(usable_[i])] =
        static_cast<std::int32_t>(i);
  }
  if (tiling_) {
    // Tiled mode keeps NO per-pair storage: pair state lives in O(G²) tile
    // accumulators, and the dense matrix (when still wanted) is
    // materialized straight from the snapshot at build().
    util::BlockPartition partition;
    if (tiling_->block_size > 0) {
      partition =
          util::BlockPartition::fixed(usable_.size(), tiling_->block_size);
    } else {
      std::vector<std::int32_t> labels(usable_.size());
      for (std::size_t i = 0; i < usable_.size(); ++i) {
        labels[i] = snapshot_
                        ->nodes[static_cast<std::size_t>(usable_[i])]
                        .spec.switch_id;
      }
      partition = util::BlockPartition::from_labels(labels);
    }
    const SnapshotPairSource source(snapshot_);
    tiled_state_.full_build(source, usable_, std::move(partition),
                            profile_.network_weights, pool_);
  } else {
    nl_state_.full_build(*snapshot_, usable_, profile_.network_weights,
                         pool_);
  }
  recompute_node_state();
  version_ = snapshot_->version;
  time_ = snapshot_->time;
  has_state_ = true;
  nl_stale_ = true;
  incremental_ = false;
  delta_nodes_ = 0;
  delta_pairs_ = 0;
  obs::metrics::refresh_rebuild_sketch().observe(span.stop());
}

bool PreparedBuilder::update(
    std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
    const monitor::SnapshotDelta& delta) {
  NLARM_CHECK(snapshot != nullptr) << "update over a null snapshot";
  const auto fall_back = [&](const char* why) {
    NLARM_DEBUG << "prepared delta fallback (" << why << "): base "
                << delta.base_version << " -> " << delta.version
                << ", state " << version_;
    obs::metrics::prepared_incremental_fallbacks().inc();
    rebuild(std::move(snapshot));
    return false;
  };

  if (!has_state_) return fall_back("no prior state");
  if (delta.requires_full_rebuild()) return fall_back("delta demands full");
  if (delta.base_version != version_) return fall_back("version gap");
  if (snapshot->version != delta.version) return fall_back("stale snapshot");
  if (snapshot->nodes.size() != pos_of_.size()) {
    return fall_back("node count changed");
  }

  // A dirty node whose usability flipped (first record arriving, record
  // invalidated) changes the working set's shape — every position shifts,
  // so incremental application is off the table. Likewise, in tiled mode a
  // working-set node that moved to a different switch invalidates the block
  // partition the tile accumulators are keyed on.
  for (cluster::NodeId id : delta.dirty_nodes) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= snapshot->nodes.size()) return fall_back("node out of range");
    const bool now_usable =
        snapshot->livehosts[idx] && snapshot->nodes[idx].valid;
    if (now_usable != (pos_of_[idx] >= 0)) {
      return fall_back("usable set changed");
    }
    if (tiling_ && tiling_->block_size == 0 && pos_of_[idx] >= 0 &&
        snapshot->nodes[idx].spec.switch_id !=
            snapshot_->nodes[idx].spec.switch_id) {
      return fall_back("switch assignment changed");
    }
  }

  obs::ScopedSpan span("prepared.update",
                       &obs::metrics::prepared_update_seconds());
  obs::metrics::prepared_incremental_updates().inc();

  // Resolve dirty pairs to working-set positions up front (delta order is
  // preserved, duplicates included), then hand the whole batch to the pair
  // state — sharded over the refresh pool when one is attached, serial
  // (with the same prefetch-ahead) otherwise.
  std::vector<detail::PairPosition> resolved;
  resolved.reserve(delta.dirty_pairs.size());
  for (const auto& [u, v] : delta.dirty_pairs) {
    const std::int32_t pu = pos_of_[static_cast<std::size_t>(u)];
    const std::int32_t pv = pos_of_[static_cast<std::size_t>(v)];
    if (pu < 0 || pv < 0) continue;  // pair outside the working set
    resolved.push_back(
        {static_cast<std::uint32_t>(std::min(pu, pv)),
         static_cast<std::uint32_t>(std::max(pu, pv))});
  }
  const std::size_t applied_pairs = resolved.size();
  if (applied_pairs > 0) {
    if (tiling_) {
      // Tiled patching re-reads a pair's previous raw terms from the
      // retained previous snapshot — the same values the accumulators last
      // absorbed — so no per-pair storage is needed for the swap.
      const SnapshotPairSource old_source(snapshot_);
      const SnapshotPairSource new_source(snapshot);
      tiled_state_.patch_pairs(old_source, new_source, usable_, resolved,
                               pool_);
      tiled_state_.refresh_dirty();
    } else {
      nl_state_.patch_pairs(*snapshot, usable_, resolved, pool_);
      nl_state_.refresh_dirty();
    }
    nl_stale_ = true;
    if (pool_ != nullptr && pool_->thread_count() > 0) {
      obs::metrics::refresh_parallel_applies().inc();
    }
  }

  std::size_t applied_nodes = 0;
  for (cluster::NodeId id : delta.dirty_nodes) {
    if (pos_of_[static_cast<std::size_t>(id)] >= 0) ++applied_nodes;
  }
  snapshot_ = std::move(snapshot);
  if (applied_nodes > 0) recompute_node_state();

  version_ = snapshot_->version;
  time_ = snapshot_->time;
  incremental_ = true;
  delta_nodes_ = applied_nodes;
  delta_pairs_ = applied_pairs;
  obs::metrics::refresh_apply_sketch().observe(span.stop());
  return true;
}

std::shared_ptr<PreparedSnapshot> PreparedBuilder::build() {
  NLARM_CHECK(has_state_) << "build() before rebuild()";
  if (tiling_) {
    if (nl_stale_ || tiles_cache_ == nullptr) {
      auto source = std::make_shared<SnapshotPairSource>(snapshot_);
      auto tiles = std::make_shared<TiledPairState>();
      tiles->partition = tiled_state_.partition();
      tiles->weights = profile_.network_weights;
      tiles->scalars = tiled_state_.scalars();
      tiles->nodes = usable_;
      tiles->source = source;
      const std::size_t tile_count = tiles->partition.tile_count();
      tiles->tiles.resize(tile_count);
      for (std::size_t t = 0; t < tile_count; ++t) {
        tiles->tiles[t] = {tiled_state_.tile_lat_mean(t),
                           tiled_state_.tile_comp_mean(t),
                           tiled_state_.tile_pairs(t)};
      }
      tiles_cache_ = std::move(tiles);
      if (usable_.size() <= tiling_->dense_nl_limit) {
        auto matrix = std::make_shared<util::FlatMatrix>();
        tiled_state_.materialize_dense(*source, usable_, *matrix, pool_);
        nl_cache_ = std::move(matrix);
      } else {
        nl_cache_ = nullptr;
      }
      nl_stale_ = false;
      obs::metrics::prepared_nl_materializations().inc();
    } else {
      // Node-only tick: pair state unchanged, so the previous tiled state
      // (and its source snapshot) is shared with the new epoch — the tiled
      // twin of the shared dense-NL fast path below.
      obs::metrics::prepared_nl_reuses().inc();
    }
  } else if (nl_stale_ || nl_cache_ == nullptr) {
    auto matrix = std::make_shared<util::FlatMatrix>();
    nl_state_.materialize(*matrix, pool_);
    nl_cache_ = std::move(matrix);
    nl_stale_ = false;
    obs::metrics::prepared_nl_materializations().inc();
  } else {
    obs::metrics::prepared_nl_reuses().inc();
  }
  auto prepared = std::make_shared<PreparedSnapshot>();
  prepared->snapshot = snapshot_;
  prepared->profile = profile_;
  prepared->version = version_;
  prepared->time = time_;
  prepared->usable = usable_;
  prepared->cl = cl_;
  prepared->nl = nl_cache_;
  prepared->tiles = tiles_cache_;
  prepared->pc = pc_;
  prepared->pos_of = pos_of_;
  prepared->load_per_core = load_per_core_;
  prepared->effective_capacity = effective_capacity_;
  prepared->incremental = incremental_;
  prepared->delta_nodes = delta_nodes_;
  prepared->delta_pairs = delta_pairs_;
  return prepared;
}

Allocation allocate_prepared(const PreparedSnapshot& prepared,
                             const AllocationRequest& request,
                             const GenerationOptions& options,
                             AllocStats* stats,
                             std::span<const int> pc_override,
                             std::span<const std::size_t> starts) {
  request.validate();
  NLARM_CHECK(RequestProfile::of(request) == prepared.profile)
      << "request profile does not match the epoch's prepared inputs";
  NLARM_CHECK(prepared.snapshot != nullptr) << "epoch carries no snapshot";
  NLARM_CHECK(prepared.nl != nullptr) << "epoch carries no NL matrix";
  NLARM_CHECK(!prepared.usable.empty()) << "no usable nodes in epoch";
  const std::span<const int> pc =
      pc_override.empty() ? std::span<const int>(prepared.pc) : pc_override;
  NLARM_CHECK(pc.size() == prepared.usable.size())
      << "pc override size mismatch";

  obs::metrics::alloc_requests().inc();
  AllocStats local_stats;
  AllocStats& out_stats = stats != nullptr ? *stats : local_stats;
  out_stats = AllocStats{};
  out_stats.prepared_cache_hit = true;  // the epoch IS the prepared state
  out_stats.usable_nodes = prepared.usable.size();
  obs::ScopedSpan total_span("alloc.total",
                             &obs::metrics::alloc_total_seconds());

  obs::ScopedSpan generate_span("alloc.generate",
                                &obs::metrics::alloc_generate_seconds());
  std::vector<Candidate> candidates =
      starts.empty()
          ? generate_all_candidates(prepared.cl, *prepared.nl, pc,
                                    request.nprocs, request.job, options)
          : generate_all_candidates(prepared.cl, *prepared.nl, pc,
                                    request.nprocs, request.job, starts,
                                    options);
  out_stats.generate_seconds = generate_span.stop();
  out_stats.candidates_generated = candidates.size();
  obs::metrics::alloc_candidates_generated().inc(candidates.size());
  if (static_cast<std::size_t>(request.nprocs) < prepared.usable.size()) {
    obs::metrics::alloc_topk_generations().inc();
  } else {
    obs::metrics::alloc_fullsort_generations().inc();
  }

  obs::ScopedSpan select_span("alloc.select",
                              &obs::metrics::alloc_select_seconds());
  const SelectionResult selection = select_best_candidate(
      std::move(candidates), prepared.cl, *prepared.nl, request.job);
  out_stats.select_seconds = select_span.stop();

  const ScoredCandidate& best = selection.scored[selection.best_index];
  out_stats.compute_cost = best.compute_cost;
  out_stats.network_cost = best.network_cost;
  Allocation allocation;
  allocation.policy = "network-load-aware";
  allocation.total_procs = request.nprocs;
  allocation.total_cost = best.total_cost;
  for (std::size_t i = 0; i < best.candidate.members.size(); ++i) {
    allocation.nodes.push_back(prepared.usable[best.candidate.members[i]]);
    allocation.procs_per_node.push_back(best.candidate.procs[i]);
  }
  annotate_allocation(allocation, *prepared.snapshot);
  out_stats.total_seconds = total_span.stop();
  out_stats.valid = true;
  return allocation;
}

namespace simd {

void score_addition_row_scalar(double alpha, std::span<const double> cl,
                               const double* nl_row, double beta,
                               std::span<double> out) {
  const std::size_t count = cl.size();
  for (std::size_t u = 0; u < count; ++u) {
    out[u] = alpha * cl[u] + beta * nl_row[u];
  }
}

namespace {

using ScoreFn = void (*)(double, std::span<const double>, const double*,
                         double, std::span<double>);

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NLARM_SIMD_AVX2 1
__attribute__((target("avx2"))) void score_addition_row_avx2(
    double alpha, std::span<const double> cl, const double* nl_row,
    double beta, std::span<double> out) {
  const std::size_t count = cl.size();
  const double* cl_p = cl.data();
  double* out_p = out.data();
  const __m256d va = _mm256_set1_pd(alpha);
  const __m256d vb = _mm256_set1_pd(beta);
  std::size_t u = 0;
  // mul + add, NOT vfmadd: two roundings per lane, exactly like the scalar
  // expression (a*c) + (b*n). That is what keeps the lanes bit-identical.
  for (; u + 4 <= count; u += 4) {
    const __m256d c = _mm256_loadu_pd(cl_p + u);
    const __m256d n = _mm256_loadu_pd(nl_row + u);
    const __m256d r =
        _mm256_add_pd(_mm256_mul_pd(va, c), _mm256_mul_pd(vb, n));
    _mm256_storeu_pd(out_p + u, r);
  }
  for (; u < count; ++u) {
    out_p[u] = alpha * cl_p[u] + beta * nl_row[u];
  }
}
#endif

#if defined(__aarch64__)
#define NLARM_SIMD_NEON 1
void score_addition_row_neon(double alpha, std::span<const double> cl,
                             const double* nl_row, double beta,
                             std::span<double> out) {
  const std::size_t count = cl.size();
  const double* cl_p = cl.data();
  double* out_p = out.data();
  const float64x2_t va = vdupq_n_f64(alpha);
  const float64x2_t vb = vdupq_n_f64(beta);
  std::size_t u = 0;
  for (; u + 2 <= count; u += 2) {
    const float64x2_t c = vld1q_f64(cl_p + u);
    const float64x2_t n = vld1q_f64(nl_row + u);
    // vmulq + vaddq (two roundings), never vfmaq: see the AVX2 note.
    const float64x2_t r = vaddq_f64(vmulq_f64(va, c), vmulq_f64(vb, n));
    vst1q_f64(out_p + u, r);
  }
  for (; u < count; ++u) {
    out_p[u] = alpha * cl_p[u] + beta * nl_row[u];
  }
}
#endif

/// True when `candidate` reproduces the scalar kernel bit for bit on a
/// probe row spanning several magnitude decades. Catches a toolchain that
/// contracted the scalar loop into FMAs (one rounding), where the two-
/// rounding vector lanes would differ in the last bit.
bool kernel_matches_scalar(ScoreFn candidate) {
  constexpr std::size_t kProbe = 37;  // odd: exercises the vector tail
  std::array<double, kProbe> cl_probe;
  std::array<double, kProbe> nl_probe;
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next01 = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (std::size_t i = 0; i < kProbe; ++i) {
    const double scale = std::pow(10.0, static_cast<double>(i % 9) - 4.0);
    cl_probe[i] = next01() * scale;
    nl_probe[i] = next01() * scale;
  }
  std::array<double, kProbe> want;
  std::array<double, kProbe> got;
  for (const double alpha : {0.3, 0.5, 0.999}) {
    const double beta = 1.0 - alpha;
    score_addition_row_scalar(alpha, cl_probe, nl_probe.data(), beta, want);
    candidate(alpha, cl_probe, nl_probe.data(), beta, got);
    if (std::memcmp(want.data(), got.data(), sizeof want) != 0) return false;
  }
  return true;
}

struct Dispatch {
  ScoreFn fn = &score_addition_row_scalar;
  Kernel kernel = Kernel::kScalar;

  Dispatch() {
#if defined(NLARM_SIMD_AVX2)
    if (__builtin_cpu_supports("avx2") &&
        kernel_matches_scalar(&score_addition_row_avx2)) {
      fn = &score_addition_row_avx2;
      kernel = Kernel::kAvx2;
    }
#elif defined(NLARM_SIMD_NEON)
    if (kernel_matches_scalar(&score_addition_row_neon)) {
      fn = &score_addition_row_neon;
      kernel = Kernel::kNeon;
    }
#endif
    obs::metrics::simd_kernel().set(static_cast<double>(kernel));
  }
};

const Dispatch& dispatch() {
  static const Dispatch instance;
  return instance;
}

}  // namespace

void score_addition_row(double alpha, std::span<const double> cl,
                        const double* nl_row, double beta,
                        std::span<double> out) {
  dispatch().fn(alpha, cl, nl_row, beta, out);
}

Kernel active_kernel() { return dispatch().kernel; }

const char* active_kernel_name() {
  switch (dispatch().kernel) {
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kNeon:
      return "neon";
    case Kernel::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace simd

}  // namespace nlarm::core
