#include "core/prepared.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/compute_load.h"
#include "core/normalize.h"
#include "core/selection.h"
#include "obs/catalog.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace nlarm::core {

namespace detail {

void ExactSum::accumulate(double v, bool negate) {
  if (!(v > 0.0)) return;  // zero adds nothing; NaN/negatives never arrive
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const int exp = static_cast<int>(bits >> 52);  // sign bit is clear: v > 0
  if (exp == 0) return;  // subnormal: far below the window, contributes 0
  const std::uint64_t mant =
      (bits & ((std::uint64_t{1} << 52) - 1)) | (std::uint64_t{1} << 52);
  // value = mant × 2^(exp − 1075); in units of the 2⁻⁸⁰ LSB the mantissa
  // lands at bit (exp − 995). +inf (exp 0x7ff) rides the same clamp as any
  // over-the-top finite value.
  int shift = exp - 995;
  if (shift < 0) return;
  if (shift > 191) shift = 191;  // keep mant's two limbs inside limbs_[0..3]
  const unsigned __int128 wide = static_cast<unsigned __int128>(mant)
                                 << (shift & 63);
  const std::uint64_t part[2] = {static_cast<std::uint64_t>(wide),
                                 static_cast<std::uint64_t>(wide >> 64)};
  const int idx = shift >> 6;
  if (negate) {
    unsigned __int128 borrow = 0;
    for (int l = idx, p = 0; l < 4; ++l, ++p) {
      const unsigned __int128 take = (p < 2 ? part[p] : 0) + borrow;
      const std::uint64_t before = limbs_[static_cast<std::size_t>(l)];
      limbs_[static_cast<std::size_t>(l)] =
          before - static_cast<std::uint64_t>(take);
      borrow = static_cast<unsigned __int128>(before) < take ? 1 : 0;
      if (p >= 2 && borrow == 0) break;
    }
  } else {
    unsigned __int128 carry = 0;
    for (int l = idx, p = 0; l < 4; ++l, ++p) {
      const unsigned __int128 sum =
          static_cast<unsigned __int128>(limbs_[static_cast<std::size_t>(l)]) +
          (p < 2 ? part[p] : 0) + carry;
      limbs_[static_cast<std::size_t>(l)] = static_cast<std::uint64_t>(sum);
      carry = sum >> 64;
      if (p >= 2 && carry == 0) break;
    }
  }
}

double ExactSum::to_double() const {
  return std::ldexp(static_cast<double>(limbs_[3]), 112) +
         std::ldexp(static_cast<double>(limbs_[2]), 48) +
         std::ldexp(static_cast<double>(limbs_[1]), -16) +
         std::ldexp(static_cast<double>(limbs_[0]), -80);
}

void NlState::read_pair(const monitor::ClusterSnapshot& snapshot,
                        cluster::NodeId u, cluster::NodeId v, std::size_t k) {
  const auto uu = static_cast<std::size_t>(u);
  const auto vv = static_cast<std::size_t>(v);
  lat_raw_[k] = snapshot.net.latency_us[uu][vv];
  const double bw = snapshot.net.bandwidth_mbps[uu][vv];
  const double peak = snapshot.net.peak_mbps[uu][vv];
  comp_raw_[k] = (bw < 0.0 || peak < 0.0) ? -1.0 : std::max(0.0, peak - bw);
}

void NlState::full_build(const monitor::ClusterSnapshot& snapshot,
                         std::span<const cluster::NodeId> nodes,
                         const NetworkLoadWeights& weights) {
  weights.validate();
  weights_ = weights;
  n_ = nodes.size();
  const std::size_t pair_count = n_ < 2 ? 0 : n_ * (n_ - 1) / 2;
  lat_raw_.resize(pair_count);
  comp_raw_.resize(pair_count);
  pair_i_.resize(pair_count);
  pair_j_.resize(pair_count);

  const auto matrix_size = static_cast<std::size_t>(snapshot.net.size());
  lat_acc_.reset();
  comp_acc_.reset();
  lat_missing_ = 0;
  comp_missing_ = 0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const auto ui = static_cast<std::size_t>(nodes[i]);
    NLARM_CHECK(ui < matrix_size) << "pair out of snapshot";
    for (std::size_t j = i + 1; j < n_; ++j, ++k) {
      const auto vj = static_cast<std::size_t>(nodes[j]);
      NLARM_CHECK(vj < matrix_size) << "pair out of snapshot";
      NLARM_CHECK(vj != ui) << "pair metrics of a self pair";
      pair_i_[k] = static_cast<std::uint32_t>(i);
      pair_j_[k] = static_cast<std::uint32_t>(j);
      read_pair(snapshot, nodes[i], nodes[j], k);
      account_add(k);
    }
  }
  recompute_scalars();
}

void NlState::account_add(std::size_t k) {
  const double lat = lat_raw_[k];
  if (lat >= 0.0) {
    lat_acc_.add(lat);
  } else {
    ++lat_missing_;
  }
  const double comp = comp_raw_[k];
  if (comp >= 0.0) {
    comp_acc_.add(comp);
  } else {
    ++comp_missing_;
  }
}

void NlState::account_remove(std::size_t k) {
  const double lat = lat_raw_[k];
  if (lat >= 0.0) {
    lat_acc_.sub(lat);
  } else {
    --lat_missing_;
  }
  const double comp = comp_raw_[k];
  if (comp >= 0.0) {
    comp_acc_.sub(comp);
  } else {
    --comp_missing_;
  }
}

void NlState::patch_pair(const monitor::ClusterSnapshot& snapshot,
                         std::span<const cluster::NodeId> nodes,
                         std::size_t i, std::size_t j) {
  NLARM_CHECK(i < j && j < n_) << "bad pair position (" << i << ", " << j
                               << ")";
  const std::size_t k = pair_index(i, j);
  account_remove(k);
  read_pair(snapshot, nodes[i], nodes[j], k);
  account_add(k);
}

void NlState::refresh_dirty() { recompute_scalars(); }

void NlState::recompute_scalars() {
  // The totals come out of the exact accumulators — order-independent, so
  // the same whether every pair was just re-accumulated (full build) or a
  // few contributions were swapped in place (incremental). That identity is
  // what makes the two paths bit-identical.
  const double lat_sum = lat_acc_.to_double();
  const double comp_sum = comp_acc_.to_double();
  const std::uint64_t lat_missing = lat_missing_;
  const std::uint64_t comp_missing = comp_missing_;
  const std::size_t pairs = lat_raw_.size();
  const std::uint64_t lat_measured =
      static_cast<std::uint64_t>(pairs) - lat_missing;
  const std::uint64_t comp_measured =
      static_cast<std::uint64_t>(pairs) - comp_missing;
  // Missing pairs take the mean of the measured ones; a fully unmeasured
  // network degrades to "all pairs equal" exactly like network_loads().
  lat_fill_ = lat_measured > 0
                  ? lat_sum / static_cast<double>(lat_measured)
                  : 100.0;
  comp_fill_ =
      comp_measured > 0 ? comp_sum / static_cast<double>(comp_measured) : 0.0;
  lat_s_ = lat_sum + static_cast<double>(lat_missing) * lat_fill_;
  comp_s_ = comp_sum + static_cast<double>(comp_missing) * comp_fill_;
  // Each sum-normalized column totals exactly 1 over the pairs, so the
  // off-diagonal mean is (active weights)/pairs analytically; dividing by it
  // is the unit-mean rescale without an extra O(n²) pass.
  const double weight_sum = (lat_s_ > 0.0 ? weights_.latency : 0.0) +
                            (comp_s_ > 0.0 ? weights_.bandwidth : 0.0);
  rescale_ =
      weight_sum > 0.0 ? static_cast<double>(pairs) / weight_sum : 1.0;
}

void NlState::materialize(util::FlatMatrix& out) const {
  out.assign(n_, 0.0);
  const std::size_t pairs = lat_raw_.size();
  for (std::size_t k = 0; k < pairs; ++k) {
    const double lat_raw = lat_raw_[k];
    const double lat_value = lat_raw < 0.0 ? lat_fill_ : lat_raw;
    const double lat_term = lat_s_ > 0.0 ? lat_value / lat_s_ : 0.0;
    const double comp_raw = comp_raw_[k];
    const double comp_value = comp_raw < 0.0 ? comp_fill_ : comp_raw;
    const double comp_term = comp_s_ > 0.0 ? comp_value / comp_s_ : 0.0;
    const double value =
        (weights_.latency * lat_term + weights_.bandwidth * comp_term) *
        rescale_;
    const std::size_t i = pair_i_[k];
    const std::size_t j = pair_j_[k];
    out[i][j] = value;
    out[j][i] = value;
  }
}

}  // namespace detail

void prepared_network_loads(const monitor::ClusterSnapshot& snapshot,
                            std::span<const cluster::NodeId> nodes,
                            const NetworkLoadWeights& weights,
                            util::FlatMatrix& out) {
  // Reused per thread so repeated one-shot preparations (the classic
  // allocator path) allocate nothing in steady state.
  thread_local detail::NlState state;
  state.full_build(snapshot, nodes, weights);
  state.materialize(out);
}

PreparedBuilder::PreparedBuilder(RequestProfile profile)
    : profile_(std::move(profile)) {
  profile_.compute_weights.validate();
  profile_.network_weights.validate();
  NLARM_CHECK(profile_.ppn >= 0) << "negative ppn";
}

void PreparedBuilder::recompute_node_state() {
  if (usable_.empty()) {
    cl_.clear();
    pc_.clear();
    load_per_core_ = 0.0;
    effective_capacity_ = 0;
    return;
  }
  cl_ = rescale_unit_mean(
      compute_loads(*snapshot_, usable_, profile_.compute_weights));
  pc_ = effective_process_counts(*snapshot_, usable_, profile_.ppn);

  // Same accumulation order as the classic broker aggregates, so epoch gate
  // verdicts are bit-identical to ResourceBroker::aggregates().
  double load_sum = 0.0;
  double core_sum = 0.0;
  for (cluster::NodeId id : usable_) {
    const monitor::NodeSnapshot& node =
        snapshot_->nodes[static_cast<std::size_t>(id)];
    load_sum += node.cpu_load_avg.one_min;
    core_sum += static_cast<double>(node.spec.core_count);
  }
  load_per_core_ = core_sum > 0.0 ? load_sum / core_sum : 0.0;
  effective_capacity_ = 0;
  for (int c : pc_) effective_capacity_ += c;
}

void PreparedBuilder::rebuild(
    std::shared_ptr<const monitor::ClusterSnapshot> snapshot) {
  NLARM_CHECK(snapshot != nullptr) << "rebuild over a null snapshot";
  obs::ScopedSpan span("prepared.rebuild",
                       &obs::metrics::prepared_rebuild_seconds());
  obs::metrics::prepared_full_rebuilds().inc();
  snapshot_ = std::move(snapshot);
  usable_ = snapshot_->usable_nodes();
  pos_of_.assign(snapshot_->nodes.size(), -1);
  for (std::size_t i = 0; i < usable_.size(); ++i) {
    pos_of_[static_cast<std::size_t>(usable_[i])] =
        static_cast<std::int32_t>(i);
  }
  nl_state_.full_build(*snapshot_, usable_, profile_.network_weights);
  recompute_node_state();
  version_ = snapshot_->version;
  time_ = snapshot_->time;
  has_state_ = true;
  nl_stale_ = true;
  incremental_ = false;
  delta_nodes_ = 0;
  delta_pairs_ = 0;
}

bool PreparedBuilder::update(
    std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
    const monitor::SnapshotDelta& delta) {
  NLARM_CHECK(snapshot != nullptr) << "update over a null snapshot";
  const auto fall_back = [&](const char* why) {
    NLARM_DEBUG << "prepared delta fallback (" << why << "): base "
                << delta.base_version << " -> " << delta.version
                << ", state " << version_;
    obs::metrics::prepared_incremental_fallbacks().inc();
    rebuild(std::move(snapshot));
    return false;
  };

  if (!has_state_) return fall_back("no prior state");
  if (delta.requires_full_rebuild()) return fall_back("delta demands full");
  if (delta.base_version != version_) return fall_back("version gap");
  if (snapshot->version != delta.version) return fall_back("stale snapshot");
  if (snapshot->nodes.size() != pos_of_.size()) {
    return fall_back("node count changed");
  }

  // A dirty node whose usability flipped (first record arriving, record
  // invalidated) changes the working set's shape — every position shifts,
  // so incremental application is off the table.
  for (cluster::NodeId id : delta.dirty_nodes) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= snapshot->nodes.size()) return fall_back("node out of range");
    const bool now_usable =
        snapshot->livehosts[idx] && snapshot->nodes[idx].valid;
    if (now_usable != (pos_of_[idx] >= 0)) {
      return fall_back("usable set changed");
    }
  }

  obs::ScopedSpan span("prepared.update",
                       &obs::metrics::prepared_update_seconds());
  obs::metrics::prepared_incremental_updates().inc();

  std::size_t applied_pairs = 0;
  // Re-reading dirty cells is a random walk over three V×V matrices;
  // prefetching a handful of pairs ahead overlaps the DRAM misses instead
  // of serializing them.
  constexpr std::size_t kAhead = 16;
  const auto& lat_m = snapshot->net.latency_us;
  const auto& bw_m = snapshot->net.bandwidth_mbps;
  const auto& peak_m = snapshot->net.peak_mbps;
  for (std::size_t a = 0; a < delta.dirty_pairs.size(); ++a) {
    if (a + kAhead < delta.dirty_pairs.size()) {
      const auto& [fu, fv] = delta.dirty_pairs[a + kAhead];
      const auto fuu = static_cast<std::size_t>(fu);
      const auto fvv = static_cast<std::size_t>(fv);
      const auto edge = static_cast<std::size_t>(snapshot->net.size());
      if (fuu < edge && fvv < edge) {
        __builtin_prefetch(lat_m[fuu] + fvv);
        __builtin_prefetch(bw_m[fuu] + fvv);
        __builtin_prefetch(peak_m[fuu] + fvv);
        const std::int32_t fpu = pos_of_[fuu];
        const std::int32_t fpv = pos_of_[fvv];
        if (fpu >= 0 && fpv >= 0) {
          nl_state_.prefetch_pair(
              static_cast<std::size_t>(std::min(fpu, fpv)),
              static_cast<std::size_t>(std::max(fpu, fpv)));
        }
      }
    }
    const auto& [u, v] = delta.dirty_pairs[a];
    const std::int32_t pu = pos_of_[static_cast<std::size_t>(u)];
    const std::int32_t pv = pos_of_[static_cast<std::size_t>(v)];
    if (pu < 0 || pv < 0) continue;  // pair outside the working set
    const auto i = static_cast<std::size_t>(std::min(pu, pv));
    const auto j = static_cast<std::size_t>(std::max(pu, pv));
    nl_state_.patch_pair(*snapshot, usable_, i, j);
    ++applied_pairs;
  }
  if (applied_pairs > 0) {
    nl_state_.refresh_dirty();
    nl_stale_ = true;
  }

  std::size_t applied_nodes = 0;
  for (cluster::NodeId id : delta.dirty_nodes) {
    if (pos_of_[static_cast<std::size_t>(id)] >= 0) ++applied_nodes;
  }
  snapshot_ = std::move(snapshot);
  if (applied_nodes > 0) recompute_node_state();

  version_ = snapshot_->version;
  time_ = snapshot_->time;
  incremental_ = true;
  delta_nodes_ = applied_nodes;
  delta_pairs_ = applied_pairs;
  return true;
}

std::shared_ptr<PreparedSnapshot> PreparedBuilder::build() {
  NLARM_CHECK(has_state_) << "build() before rebuild()";
  if (nl_stale_ || nl_cache_ == nullptr) {
    auto matrix = std::make_shared<util::FlatMatrix>();
    nl_state_.materialize(*matrix);
    nl_cache_ = std::move(matrix);
    nl_stale_ = false;
    obs::metrics::prepared_nl_materializations().inc();
  } else {
    obs::metrics::prepared_nl_reuses().inc();
  }
  auto prepared = std::make_shared<PreparedSnapshot>();
  prepared->snapshot = snapshot_;
  prepared->profile = profile_;
  prepared->version = version_;
  prepared->time = time_;
  prepared->usable = usable_;
  prepared->cl = cl_;
  prepared->nl = nl_cache_;
  prepared->pc = pc_;
  prepared->pos_of = pos_of_;
  prepared->load_per_core = load_per_core_;
  prepared->effective_capacity = effective_capacity_;
  prepared->incremental = incremental_;
  prepared->delta_nodes = delta_nodes_;
  prepared->delta_pairs = delta_pairs_;
  return prepared;
}

Allocation allocate_prepared(const PreparedSnapshot& prepared,
                             const AllocationRequest& request,
                             const GenerationOptions& options,
                             AllocStats* stats,
                             std::span<const int> pc_override,
                             std::span<const std::size_t> starts) {
  request.validate();
  NLARM_CHECK(RequestProfile::of(request) == prepared.profile)
      << "request profile does not match the epoch's prepared inputs";
  NLARM_CHECK(prepared.snapshot != nullptr) << "epoch carries no snapshot";
  NLARM_CHECK(prepared.nl != nullptr) << "epoch carries no NL matrix";
  NLARM_CHECK(!prepared.usable.empty()) << "no usable nodes in epoch";
  const std::span<const int> pc =
      pc_override.empty() ? std::span<const int>(prepared.pc) : pc_override;
  NLARM_CHECK(pc.size() == prepared.usable.size())
      << "pc override size mismatch";

  obs::metrics::alloc_requests().inc();
  AllocStats local_stats;
  AllocStats& out_stats = stats != nullptr ? *stats : local_stats;
  out_stats = AllocStats{};
  out_stats.prepared_cache_hit = true;  // the epoch IS the prepared state
  out_stats.usable_nodes = prepared.usable.size();
  obs::ScopedSpan total_span("alloc.total",
                             &obs::metrics::alloc_total_seconds());

  obs::ScopedSpan generate_span("alloc.generate",
                                &obs::metrics::alloc_generate_seconds());
  std::vector<Candidate> candidates =
      starts.empty()
          ? generate_all_candidates(prepared.cl, *prepared.nl, pc,
                                    request.nprocs, request.job, options)
          : generate_all_candidates(prepared.cl, *prepared.nl, pc,
                                    request.nprocs, request.job, starts,
                                    options);
  out_stats.generate_seconds = generate_span.stop();
  out_stats.candidates_generated = candidates.size();
  obs::metrics::alloc_candidates_generated().inc(candidates.size());
  if (static_cast<std::size_t>(request.nprocs) < prepared.usable.size()) {
    obs::metrics::alloc_topk_generations().inc();
  } else {
    obs::metrics::alloc_fullsort_generations().inc();
  }

  obs::ScopedSpan select_span("alloc.select",
                              &obs::metrics::alloc_select_seconds());
  const SelectionResult selection = select_best_candidate(
      std::move(candidates), prepared.cl, *prepared.nl, request.job);
  out_stats.select_seconds = select_span.stop();

  const ScoredCandidate& best = selection.scored[selection.best_index];
  out_stats.compute_cost = best.compute_cost;
  out_stats.network_cost = best.network_cost;
  Allocation allocation;
  allocation.policy = "network-load-aware";
  allocation.total_procs = request.nprocs;
  allocation.total_cost = best.total_cost;
  for (std::size_t i = 0; i < best.candidate.members.size(); ++i) {
    allocation.nodes.push_back(prepared.usable[best.candidate.members[i]]);
    allocation.procs_per_node.push_back(best.candidate.procs[i]);
  }
  annotate_allocation(allocation, *prepared.snapshot);
  out_stats.total_seconds = total_span.stop();
  out_stats.valid = true;
  return allocation;
}

}  // namespace nlarm::core
