// ResourceBroker: the user-facing entry point (the paper's "resource
// broker"). Takes a monitored snapshot, applies an allocation policy, and —
// implementing the extension sketched in §6 — recommends *waiting* instead
// of allocating when the cluster is too loaded for the gain to matter
// ("if the overall load on the cluster is extremely high ... our tool
// should recommend waiting rather than allocating it right away").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "obs/audit.h"

namespace nlarm::core {

struct BrokerPolicy {
  /// Recommend waiting when the usable nodes' mean 1-minute CPU load per
  /// logical core exceeds this. 0.5 = half the cluster's cores already busy
  /// with background work.
  double max_load_per_core = 0.5;
  /// Recommend waiting when the request exceeds the cluster's effective
  /// capacity (otherwise the allocation oversubscribes round-robin).
  bool allow_oversubscription = false;
  /// Minimum number of usable nodes required to allocate at all.
  int min_usable_nodes = 1;
};

struct BrokerDecision {
  enum class Action { kAllocate, kWait };
  Action action = Action::kWait;
  Allocation allocation;  ///< valid when action == kAllocate
  std::string reason;     ///< human-readable explanation
  double cluster_load_per_core = 0.0;
  int effective_capacity = 0;  ///< Σ pc over usable nodes
};

class ResourceBroker {
 public:
  /// The broker borrows the allocator; it must outlive the broker.
  ResourceBroker(Allocator& allocator, BrokerPolicy policy = {});

  /// Decides between allocating and waiting for the given request.
  BrokerDecision decide(const monitor::ClusterSnapshot& snapshot,
                        const AllocationRequest& request);

  const BrokerPolicy& policy() const { return policy_; }
  int decisions_made() const { return decisions_; }
  int waits_recommended() const { return waits_; }

  /// Attaches a decision-audit sink; every decide() appends one record.
  /// Pass nullptr to detach. The log must outlive the broker (borrowed).
  void set_audit_log(obs::AuditLog* log) { audit_log_ = log; }

 private:
  /// Snapshot-level aggregates the wait/allocate gate needs. They only
  /// depend on the snapshot and the request's ppn, so they are memoized on
  /// the snapshot version counter — a broker fielding many requests between
  /// monitor updates computes them once. Version 0 (unversioned snapshot)
  /// never matches.
  struct Aggregates {
    std::vector<cluster::NodeId> usable;
    double load_per_core = 0.0;
    int effective_capacity = 0;
  };
  struct AggregatesKey {
    std::uint64_t version = 0;
    double time = 0.0;
    std::size_t node_count = 0;
    int ppn = 0;

    bool operator==(const AggregatesKey&) const = default;
  };

  const Aggregates& aggregates(const monitor::ClusterSnapshot& snapshot,
                               const AllocationRequest& request);

  Allocator& allocator_;
  BrokerPolicy policy_;
  Aggregates aggregates_;
  AggregatesKey aggregates_key_;
  bool has_aggregates_ = false;
  bool last_aggregates_hit_ = false;  ///< memo outcome of the last decide()
  int decisions_ = 0;
  int waits_ = 0;
  obs::AuditLog* audit_log_ = nullptr;
};

}  // namespace nlarm::core
