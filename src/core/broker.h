// ResourceBroker: the user-facing entry point (the paper's "resource
// broker"). Takes a monitored snapshot, applies an allocation policy, and —
// implementing the extension sketched in §6 — recommends *waiting* instead
// of allocating when the cluster is too loaded for the gain to matter
// ("if the overall load on the cluster is extremely high ... our tool
// should recommend waiting rather than allocating it right away").
//
// Two serving paths:
//  - decide(snapshot, request): the classic synchronous path. Thread-safe
//    but serialized (the borrowed allocator and the aggregates memo are
//    shared mutable state).
//  - refresh_epoch(...) + decide(pin, request): the concurrent path. A
//    refresh thread turns snapshots (or snapshot deltas) into immutable
//    prepared epochs; any number of threads decide() against their pinned
//    epoch with no locks on the hot path. decide_batch() admits a vector of
//    requests against one epoch with conflict-aware capacity debiting.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "core/degrade.h"
#include "core/epoch.h"
#include "core/hierarchical.h"
#include "core/prepared.h"
#include "monitor/delta_log.h"
#include "monitor/snapshot_delta.h"
#include "monitor/store.h"
#include "obs/audit.h"
#include "util/thread_pool.h"

namespace nlarm::core {

struct BrokerPolicy {
  /// Recommend waiting when the usable nodes' mean 1-minute CPU load per
  /// logical core exceeds this. 0.5 = half the cluster's cores already busy
  /// with background work.
  double max_load_per_core = 0.5;
  /// Recommend waiting when the request exceeds the cluster's effective
  /// capacity (otherwise the allocation oversubscribes round-robin).
  bool allow_oversubscription = false;
  /// Minimum number of usable nodes required to allocate at all.
  int min_usable_nodes = 1;
};

struct BrokerDecision {
  enum class Action { kAllocate, kWait };
  Action action = Action::kWait;
  Allocation allocation;  ///< valid when action == kAllocate
  std::string reason;     ///< human-readable explanation
  double cluster_load_per_core = 0.0;
  int effective_capacity = 0;  ///< Σ pc over usable nodes
};

class ResourceBroker {
 public:
  /// The broker borrows the allocator; it must outlive the broker.
  ResourceBroker(Allocator& allocator, BrokerPolicy policy = {});

  /// Decides between allocating and waiting for the given request
  /// (classic path; serialized internally).
  BrokerDecision decide(const monitor::ClusterSnapshot& snapshot,
                        const AllocationRequest& request);

  // --- concurrent epoch path ---

  /// Rebuilds the prepared epoch from scratch and publishes it. A profile
  /// change (different weights/ppn) resets the builder.
  void refresh_epoch(
      std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
      const RequestProfile& profile);

  /// Applies a snapshot delta to the prepared state in O(dirty) and
  /// publishes the result. Returns true when the delta was applied
  /// incrementally (false = continuity could not be proven and a full
  /// rebuild ran instead — same published result either way).
  bool refresh_epoch(
      std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
      const monitor::SnapshotDelta& delta, const RequestProfile& profile);

  /// Follows an on-disk delta append-log (monitor/delta_log.h): polls the
  /// reader and, when frames arrived, applies their coalesced delta as one
  /// epoch refresh — incremental O(dirty) whenever the frames chain onto
  /// the current prepared state (full/compaction frames rebuild). The
  /// file-tailing analog of the assemble() + drain_delta() live loop.
  /// Returns the number of frames ingested (0 = nothing new, no epoch
  /// published).
  int ingest_delta_log(monitor::DeltaLogReader& log,
                       const RequestProfile& profile);

  // --- staleness-aware degradation (core/degrade.h) ---

  /// Enables degradation: the StalenessView refresh overloads rewrite
  /// snapshots through a Degrader before preparation, and decide(pin) falls
  /// back to the last-good epoch when the current one is poisoned — refusing
  /// only once that epoch's age exceeds policy.max_epoch_age_s. Set before
  /// serving starts (same contract as set_audit_log).
  void set_degradation(const DegradationPolicy& policy);
  bool degradation_enabled() const { return degradation_.has_value(); }

  /// Degraded full refresh: quarantine/fallback rewrite, then rebuild.
  /// Requires set_degradation().
  void refresh_epoch(
      std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
      const monitor::StalenessView& staleness, const RequestProfile& profile);

  /// Degraded delta refresh. Pairs whose fallback state flipped without a
  /// store write are patched alongside the delta's dirty pairs; a
  /// quarantine-membership change forces a full rebuild (the usable set's
  /// shape moved). Returns true when applied incrementally.
  bool refresh_epoch(
      std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
      const monitor::SnapshotDelta& delta,
      const monitor::StalenessView& staleness, const RequestProfile& profile);

  // --- tiled two-phase hierarchy (core/hierarchical.h) ---

  /// Enables tiled serving on the epoch path: the builder keeps pair state
  /// per topology tile (O(G²) memory instead of O(V²)), epochs publish a
  /// TiledPairState, and decide(pin)/decide_batch() go through
  /// allocate_two_phase. Set before the first refresh_epoch (same contract
  /// as set_degradation); a profile-change builder reset picks it up too.
  void set_hierarchy(const HierarchicalOptions& options,
                     const TilingOptions& tiling = {});
  bool hierarchy_enabled() const { return hierarchy_.has_value(); }

  // --- parallel refresh plane (DESIGN.md §17) ---

  /// Sizes the epoch-refresh worker pool: full rebuilds, delta applies and
  /// dense materializations inside refresh_epoch() fan out across `threads`
  /// workers (the refresh thread participates, so an internal pool of
  /// threads-1 workers is kept). threads <= 1 keeps the serial path.
  /// Published epochs are bit-identical either way. Call before refresh
  /// threads start (same contract as set_degradation); the pool is owned by
  /// the broker and torn down with it.
  void set_refresh_threads(int threads);
  int refresh_threads() const { return refresh_threads_; }

  /// Current epoch counter (0 = nothing published yet).
  std::uint64_t epoch() const { return publisher_.epoch(); }

  /// A fresh pin on the current epoch (one per reader thread).
  EpochPin pin_epoch() const { return publisher_.pin(); }

  /// Re-validates a pin against the publisher; true when it changed.
  bool refresh_pin(EpochPin& pin) const { return publisher_.refresh(pin); }

  /// Lock-free decision against the pinned epoch. The request's profile
  /// must match the epoch's. Safe to call from any number of threads.
  BrokerDecision decide(const EpochPin& pin,
                        const AllocationRequest& request);

  /// Batched admission: decides every request (in order) against one epoch,
  /// debiting each allocation's processes from a working copy of the
  /// per-node capacities so later requests see what earlier ones took.
  /// All requests must share the epoch's profile.
  std::vector<BrokerDecision> decide_batch(
      const EpochPin& pin, std::span<const AllocationRequest> requests);

  const BrokerPolicy& policy() const { return policy_; }
  int decisions_made() const {
    return decisions_.load(std::memory_order_relaxed);
  }
  int waits_recommended() const {
    return waits_.load(std::memory_order_relaxed);
  }
  /// Epoch decides served from the last-good epoch because the current one
  /// had no usable nodes.
  int fallback_decisions() const {
    return fallbacks_.load(std::memory_order_relaxed);
  }
  /// Epoch decides refused outright because even the last-good epoch was
  /// older than the policy's hard bound.
  int stale_refusals() const {
    return refusals_.load(std::memory_order_relaxed);
  }

  /// Candidate fan-out options for the epoch paths. Defaults to serial
  /// generation: with many decide() threads in flight, cross-request
  /// concurrency already fills the machine, and per-request fork-join only
  /// adds coordination. (The classic path keeps the allocator's own
  /// options.)
  void set_epoch_generation_options(const GenerationOptions& options) {
    epoch_generation_options_ = options;
  }

  /// Attaches a decision-audit sink; every decide() appends one record.
  /// Pass nullptr to detach. The log must outlive the broker (borrowed).
  /// Set before concurrent decides start (the pointer itself is unguarded;
  /// AuditLog::append is thread-safe).
  void set_audit_log(obs::AuditLog* log) { audit_log_ = log; }

 private:
  /// The sharded serve plane (core/serve_shard.h) is the broker's
  /// high-throughput front end: it reuses decide_prepared / the degradation
  /// resolution / the stale refusal, and replays cached placements through
  /// replay_decision.
  friend class ServePlane;

  /// Snapshot-level aggregates the wait/allocate gate needs. They only
  /// depend on the snapshot and the request's ppn, so they are memoized on
  /// the snapshot version counter — a broker fielding many requests between
  /// monitor updates computes them once. Version 0 (unversioned snapshot)
  /// never matches.
  struct Aggregates {
    std::vector<cluster::NodeId> usable;
    double load_per_core = 0.0;
    int effective_capacity = 0;
  };
  /// The float snapshot timestamp is deliberately NOT part of the key: the
  /// version counter already changes on every store write (and is trusted
  /// whenever nonzero), while wall-clock time drifts on every re-assembly
  /// of unchanged data and was defeating the memo.
  struct AggregatesKey {
    std::uint64_t version = 0;
    std::size_t node_count = 0;
    int ppn = 0;

    bool operator==(const AggregatesKey&) const = default;
  };

  const Aggregates& aggregates(const monitor::ClusterSnapshot& snapshot,
                               const AllocationRequest& request);

  /// Shared preamble of the four refresh_epoch overloads: constructs the
  /// right builder shape on first use or profile change and re-attaches the
  /// refresh pool. Caller holds builder_mutex_.
  PreparedBuilder& ensure_builder(const RequestProfile& profile);

  /// Shared epilogue of the epoch paths: gate, allocate, audit.
  /// `degradation_note` annotates the audit record when the decision was
  /// served in a degraded mode ("" = derive from the epoch itself).
  BrokerDecision decide_prepared(const PreparedSnapshot& prepared,
                                 const AllocationRequest& request,
                                 std::span<const int> pc_override,
                                 std::span<const std::size_t> starts,
                                 std::size_t gate_usable,
                                 int gate_capacity,
                                 const char* degradation_note = "");

  /// Degradation fallback resolution shared by decide(pin) and
  /// decide_batch(): picks the epoch to serve from. Returns the pinned
  /// epoch when it is healthy (or degradation is off), the last-good epoch
  /// (kept alive through `keepalive`, `note` set) when the pinned one is
  /// poisoned but the last-good is young enough, and nullptr when the
  /// decision must be refused (`last_good_age` tells how stale it was).
  const PreparedSnapshot* resolve_degraded(
      const PreparedSnapshot& current,
      std::shared_ptr<const PreparedSnapshot>& keepalive, const char*& note,
      double& last_good_age);

  /// Hand-rolled wait verdict + audit for a refused stale decision.
  BrokerDecision refuse_stale(const PreparedSnapshot& prepared,
                              const AllocationRequest& request,
                              double last_good_age);

  /// Serve-plane cache replay: re-issues a previously scored decision
  /// against the same epoch without a scoring pass (the caller has already
  /// proven the placement still has capacity headroom). Counts, audits and
  /// observes exactly like a decide, with the audit degradation field set
  /// to "cache-replay" when no degradation note applies.
  BrokerDecision replay_decision(const PreparedSnapshot& prepared,
                                 const AllocationRequest& request,
                                 const BrokerDecision& cached,
                                 const char* degradation_note);

  Allocator& allocator_;
  BrokerPolicy policy_;
  /// Guards only the classic path's genuinely shared mutable state — the
  /// aggregates memo and the borrowed allocator — NOT the whole decide():
  /// gate evaluation, stat counters (atomics) and the audit append run
  /// outside it, so wait verdicts and audit I/O no longer serialize
  /// concurrent classic callers.
  std::mutex decide_mutex_;
  Aggregates aggregates_;
  AggregatesKey aggregates_key_;
  bool has_aggregates_ = false;
  bool last_aggregates_hit_ = false;  ///< memo outcome of the last decide()
  std::atomic<int> decisions_{0};
  std::atomic<int> waits_{0};
  std::atomic<int> fallbacks_{0};
  std::atomic<int> refusals_{0};
  obs::AuditLog* audit_log_ = nullptr;

  std::optional<DegradationPolicy> degradation_;
  std::optional<HierarchicalOptions> hierarchy_;
  TilingOptions tiling_;

  std::mutex builder_mutex_;  ///< serializes refresh_epoch callers
  std::optional<Degrader> degrader_;  ///< under builder_mutex_
  std::optional<PreparedBuilder> builder_;
  int refresh_threads_ = 1;
  /// Refresh worker pool (refresh_threads_ - 1 workers); under
  /// builder_mutex_ like the builder it is attached to.
  std::unique_ptr<util::ThreadPool> refresh_pool_;
  EpochPublisher publisher_;
  GenerationOptions epoch_generation_options_{.parallel_threshold = -1,
                                              .pool = nullptr};
};

}  // namespace nlarm::core
