// The three baseline allocation policies of §5:
//  * random — required number of nodes picked uniformly from active nodes;
//  * sequential — a random start node plus topologically neighboring nodes
//    ("users often tend to select consecutive nodes");
//  * load-aware — the group of nodes with minimal compute load.
#pragma once

#include "core/allocator.h"
#include "sim/rng.h"

namespace nlarm::core {

class RandomAllocator : public Allocator {
 public:
  explicit RandomAllocator(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }
  Allocation allocate(const monitor::ClusterSnapshot& snapshot,
                      const AllocationRequest& request) override;

 private:
  sim::Rng rng_;
};

class SequentialAllocator : public Allocator {
 public:
  explicit SequentialAllocator(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "sequential"; }
  Allocation allocate(const monitor::ClusterSnapshot& snapshot,
                      const AllocationRequest& request) override;

 private:
  sim::Rng rng_;
};

class LoadAwareAllocator : public Allocator {
 public:
  std::string name() const override { return "load-aware"; }
  Allocation allocate(const monitor::ClusterSnapshot& snapshot,
                      const AllocationRequest& request) override;
};

}  // namespace nlarm::core
