#include "core/job_queue.h"

#include <algorithm>
#include <cmath>

#include "obs/catalog.h"
#include "util/check.h"
#include "util/logging.h"

namespace nlarm::core {

JobQueue::JobQueue(Allocator& allocator, QueueOptions options)
    : allocator_(allocator),
      broker_(allocator, options.broker),
      options_(options),
      backoff_rng_(options.backoff_seed) {
  NLARM_CHECK(options.max_attempts >= 0) << "negative max attempts";
  NLARM_CHECK(options.backoff_base_s >= 0.0) << "negative backoff base";
  NLARM_CHECK(options.backoff_max_s >= options.backoff_base_s)
      << "backoff max below base";
  NLARM_CHECK(options.backoff_jitter >= 0.0 && options.backoff_jitter < 1.0)
      << "backoff jitter must be in [0, 1)";
}

JobId JobQueue::submit(const std::string& name,
                       const AllocationRequest& request, double now) {
  request.validate();
  QueuedJob job;
  job.id = next_id_++;
  job.name = name;
  job.request = request;
  job.submit_time = now;
  queue_.push_back(std::move(job));
  return queue_.back().id;
}

std::vector<cluster::NodeId> JobQueue::reserved_nodes() const {
  std::vector<cluster::NodeId> reserved;
  for (const auto& [id, job] : running_) {
    reserved.insert(reserved.end(), job.allocation.nodes.begin(),
                    job.allocation.nodes.end());
  }
  std::sort(reserved.begin(), reserved.end());
  reserved.erase(std::unique(reserved.begin(), reserved.end()),
                 reserved.end());
  return reserved;
}

std::optional<StartedJob> JobQueue::try_start(
    const QueuedJob& job, const monitor::ClusterSnapshot& snapshot,
    double now) {
  monitor::ClusterSnapshot view = snapshot;
  if (options_.reserve_nodes) {
    for (cluster::NodeId id : reserved_nodes()) {
      view.livehosts[static_cast<std::size_t>(id)] = false;
    }
  }
  if (view.usable_nodes().empty()) return std::nullopt;

  const BrokerDecision decision = broker_.decide(view, job.request);
  if (decision.action != BrokerDecision::Action::kAllocate) {
    NLARM_DEBUG << "job " << job.id << " held: " << decision.reason;
    return std::nullopt;
  }
  StartedJob started;
  started.id = job.id;
  started.name = job.name;
  started.allocation = decision.allocation;
  started.submit_time = job.submit_time;
  started.start_time = now;
  return started;
}

double JobQueue::backoff_deadline(const QueuedJob& job, double now) {
  // Exponent capped well below the double range; the min() against
  // backoff_max_s bounds the delay either way.
  const int exponent = std::min(job.attempts - 1, 32);
  double delay =
      std::min(std::ldexp(options_.backoff_base_s, exponent),
               options_.backoff_max_s);
  if (options_.backoff_jitter > 0.0) {
    delay *= backoff_rng_.uniform(1.0 - options_.backoff_jitter,
                                  1.0 + options_.backoff_jitter);
  }
  return now + delay;
}

std::vector<StartedJob> JobQueue::poll(
    const monitor::ClusterSnapshot& snapshot, double now) {
  std::vector<StartedJob> started;
  bool head_blocked = false;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (head_blocked && !options_.backfill) break;

    // A job inside its backoff window is not attempted (and does not burn
    // an attempt); it still blocks the head for FIFO purposes.
    if (now < it->not_before) {
      head_blocked = true;
      ++it;
      continue;
    }

    std::optional<StartedJob> attempt = try_start(*it, snapshot, now);
    if (attempt.has_value()) {
      running_.emplace(attempt->id, *attempt);
      wait_sum_ += attempt->wait_time();
      ++started_count_;
      started.push_back(std::move(*attempt));
      it = queue_.erase(it);
      continue;
    }

    it->attempts += 1;
    if (options_.max_attempts > 0 && it->attempts >= options_.max_attempts) {
      NLARM_WARN << "job " << it->id << " rejected after " << it->attempts
                 << " attempts";
      ++rejected_;
      it = queue_.erase(it);
      continue;
    }
    if (options_.backoff_base_s > 0.0) {
      it->not_before = backoff_deadline(*it, now);
      obs::metrics::jobqueue_backoffs().inc();
      NLARM_DEBUG << "job " << it->id << " backing off until "
                  << it->not_before << " (attempt " << it->attempts << ")";
    }
    head_blocked = true;
    ++it;
  }
  return started;
}

void JobQueue::release(JobId id) {
  NLARM_CHECK(running_.erase(id) == 1) << "release of unknown job " << id;
}

double JobQueue::mean_wait_time() const {
  if (started_count_ == 0) return 0.0;
  return wait_sum_ / static_cast<double>(started_count_);
}

}  // namespace nlarm::core
