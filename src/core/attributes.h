// Table 1 of the paper: node attributes and their optimization criteria.
//
// Static attributes (core count, frequency, total memory) are "maximize";
// load-like attributes are "minimize"; available memory is "maximize".
// Dynamic attributes appear once per running-mean window (1/5/15 min).
#pragma once

#include <array>
#include <string>

#include "monitor/snapshot.h"

namespace nlarm::core {

enum class Attribute : int {
  kCoreCount = 0,
  kCpuFreq,
  kTotalMem,
  kUsers,
  kCpuLoad1,
  kCpuLoad5,
  kCpuLoad15,
  kCpuUtil1,
  kCpuUtil5,
  kCpuUtil15,
  kNetFlow1,
  kNetFlow5,
  kNetFlow15,
  kMemAvail1,
  kMemAvail5,
  kMemAvail15,
};

inline constexpr int kAttributeCount = 16;

inline constexpr std::array<Attribute, kAttributeCount> kAllAttributes = {
    Attribute::kCoreCount, Attribute::kCpuFreq,   Attribute::kTotalMem,
    Attribute::kUsers,     Attribute::kCpuLoad1,  Attribute::kCpuLoad5,
    Attribute::kCpuLoad15, Attribute::kCpuUtil1,  Attribute::kCpuUtil5,
    Attribute::kCpuUtil15, Attribute::kNetFlow1,  Attribute::kNetFlow5,
    Attribute::kNetFlow15, Attribute::kMemAvail1, Attribute::kMemAvail5,
    Attribute::kMemAvail15};

enum class Criterion { kMinimize, kMaximize };

/// Table 1, column 2.
Criterion criterion_of(Attribute attribute);

/// Extracts the raw attribute value from a node record.
double attribute_value(const monitor::NodeSnapshot& node,
                       Attribute attribute);

std::string to_string(Attribute attribute);

}  // namespace nlarm::core
