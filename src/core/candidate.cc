#include "core/candidate.h"

#include <algorithm>
#include <numeric>

#include "core/prepared.h"
#include "obs/catalog.h"
#include "util/check.h"
#include "util/logging.h"

namespace nlarm::core {

namespace {

/// Strict total order on (addition cost, index). Equivalent to the original
/// stable_sort with an index tie-break: indices are unique, so the key is a
/// total order and any correct sort produces the same permutation.
struct AdditionOrder {
  std::span<const double> addition;
  bool operator()(std::size_t a, std::size_t b) const {
    if (addition[a] != addition[b]) return addition[a] < addition[b];
    return a < b;
  }
};

}  // namespace

CandidateCosts candidate_costs(std::span<const std::size_t> members,
                               std::span<const double> cl,
                               const util::FlatMatrix& nl) {
  thread_local std::vector<std::size_t> sorted;
  sorted.assign(members.begin(), members.end());
  std::sort(sorted.begin(), sorted.end());
  CandidateCosts costs;
  for (std::size_t t = 0; t < sorted.size(); ++t) {
    const std::size_t m = sorted[t];
    NLARM_CHECK(m < cl.size()) << "member out of cl range";
    costs.compute += cl[m];
    const double* row = nl[m];  // NL is symmetric; one row walk per member
    for (std::size_t i = 0; i < t; ++i) {
      costs.network += row[sorted[i]];
    }
  }
  return costs;
}

FillResult fill_processes(std::span<const std::size_t> order,
                          std::span<const int> pc, int nprocs) {
  NLARM_CHECK(nprocs > 0) << "request must ask for at least one process";
  NLARM_CHECK(!order.empty()) << "no nodes to fill";
  FillResult result;
  int remaining = nprocs;
  for (std::size_t idx : order) {
    if (remaining <= 0) break;
    NLARM_CHECK(idx < pc.size()) << "order index out of pc range";
    NLARM_CHECK(pc[idx] >= 0) << "node with negative capacity " << pc[idx];
    if (pc[idx] == 0) continue;  // drained by a batch debit; never a member
    const int take = std::min(pc[idx], remaining);
    result.members.push_back(idx);
    result.procs.push_back(take);
    remaining -= take;
  }
  NLARM_CHECK(!result.members.empty())
      << "no node in the candidate prefix has capacity left";
  // Round-robin overflow (Algorithm 1 lines 12–13): the request exceeds the
  // cluster's effective capacity, so the rest is spread one process at a
  // time over the selected nodes.
  if (remaining > 0) {
    obs::metrics::alloc_fill_overflows().inc();
    NLARM_DEBUG << "candidate fill overflow: " << remaining << " of "
                << nprocs << " process(es) beyond capacity, oversubscribing "
                << result.members.size() << " node(s) round-robin";
  }
  std::size_t cursor = 0;
  while (remaining > 0) {
    result.procs[cursor] += 1;
    --remaining;
    cursor = (cursor + 1) % result.procs.size();
  }
  return result;
}

Candidate generate_candidate(std::size_t start, std::span<const double> cl,
                             const util::FlatMatrix& nl,
                             std::span<const int> pc, int nprocs,
                             const JobWeights& job) {
  job.validate();
  const std::size_t count = cl.size();
  NLARM_CHECK(start < count) << "start index out of range";
  NLARM_CHECK(nl.size() == count && pc.size() == count)
      << "cl/nl/pc size mismatch";
  NLARM_CHECK(nprocs > 0) << "request must ask for at least one process";
  NLARM_CHECK(pc[start] > 0) << "start node has no capacity left";

  // Scratch reused across start nodes and requests (one copy per thread, so
  // the parallel fan-out needs no coordination).
  thread_local std::vector<double> addition;
  thread_local std::vector<std::size_t> order;

  // Addition costs A_v(u) = α·CL(u) + β·NL(v,u), vectorized over the
  // contiguous NL row (AVX2/NEON behind runtime dispatch, bit-identical to
  // the scalar loop — see core/prepared.h). A_v(v) = 0 so the start node
  // sorts first; the row kernel writes α·CL(v) there (the NL diagonal is
  // zero), overwritten after.
  addition.resize(count);
  simd::score_addition_row(job.alpha, cl, nl[start], job.beta, addition);
  addition[start] = 0.0;

  order.resize(count);
  std::iota(order.begin(), order.end(), 0);
  const AdditionOrder cmp{addition};

  // fill_processes consumes at most `nprocs` nodes before the request is
  // covered (each taken node contributes ≥1 process), so only the k
  // cheapest nodes can ever be used. Partial-select them; the full sort
  // remains only for requests that need the whole working set (where the
  // round-robin overflow may also touch every node). Zero-capacity nodes
  // (batch debits) are skipped by the fill without contributing, so they
  // widen the prefix the fill may have to walk.
  std::size_t zero_caps = 0;
  for (std::size_t u = 0; u < count; ++u) {
    if (pc[u] == 0) ++zero_caps;
  }
  const std::size_t k =
      std::min(count, static_cast<std::size_t>(nprocs) + zero_caps);
  std::span<const std::size_t> prefix;
  if (k < count) {
    std::nth_element(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(k),
                     order.end(), cmp);
    std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
              cmp);
    prefix = std::span<const std::size_t>(order.data(), k);
  } else {
    std::sort(order.begin(), order.end(), cmp);
    prefix = std::span<const std::size_t>(order.data(), count);
  }
  NLARM_CHECK(prefix.front() == start)
      << "start node must sort first (its addition cost is 0)";

  FillResult fill = fill_processes(prefix, pc, nprocs);
  Candidate candidate;
  candidate.start_index = start;
  candidate.members = std::move(fill.members);
  candidate.procs = std::move(fill.procs);
  candidate.total_procs = nprocs;
  const CandidateCosts costs = candidate_costs(candidate.members, cl, nl);
  candidate.compute_cost = costs.compute;
  candidate.network_cost = costs.network;
  candidate.has_costs = true;
  return candidate;
}

std::vector<Candidate> generate_all_candidates(
    std::span<const double> cl, const util::FlatMatrix& nl,
    std::span<const int> pc, int nprocs, const JobWeights& job,
    const GenerationOptions& options) {
  const std::size_t count = cl.size();
  std::vector<Candidate> candidates(count);
  const bool parallel =
      options.parallel_threshold >= 0 &&
      count >= static_cast<std::size_t>(options.parallel_threshold) &&
      count > 1;
  if (!parallel) {
    for (std::size_t start = 0; start < count; ++start) {
      candidates[start] = generate_candidate(start, cl, nl, pc, nprocs, job);
    }
    return candidates;
  }
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::shared();
  pool.parallel_for(count, [&](std::size_t start) {
    candidates[start] = generate_candidate(start, cl, nl, pc, nprocs, job);
  });
  return candidates;
}

std::vector<Candidate> generate_all_candidates(
    std::span<const double> cl, const util::FlatMatrix& nl,
    std::span<const int> pc, int nprocs, const JobWeights& job,
    std::span<const std::size_t> starts, const GenerationOptions& options) {
  const std::size_t count = starts.size();
  std::vector<Candidate> candidates(count);
  const bool parallel =
      options.parallel_threshold >= 0 &&
      count >= static_cast<std::size_t>(options.parallel_threshold) &&
      count > 1;
  if (!parallel) {
    for (std::size_t i = 0; i < count; ++i) {
      candidates[i] = generate_candidate(starts[i], cl, nl, pc, nprocs, job);
    }
    return candidates;
  }
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::shared();
  pool.parallel_for(count, [&](std::size_t i) {
    candidates[i] = generate_candidate(starts[i], cl, nl, pc, nprocs, job);
  });
  return candidates;
}

}  // namespace nlarm::core
