#include "core/candidate.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace nlarm::core {

FillResult fill_processes(std::span<const std::size_t> order,
                          std::span<const int> pc, int nprocs) {
  NLARM_CHECK(nprocs > 0) << "request must ask for at least one process";
  NLARM_CHECK(!order.empty()) << "no nodes to fill";
  FillResult result;
  int remaining = nprocs;
  for (std::size_t idx : order) {
    if (remaining <= 0) break;
    NLARM_CHECK(idx < pc.size()) << "order index out of pc range";
    NLARM_CHECK(pc[idx] > 0) << "node with non-positive capacity " << pc[idx];
    const int take = std::min(pc[idx], remaining);
    result.members.push_back(idx);
    result.procs.push_back(take);
    remaining -= take;
  }
  // Round-robin overflow (Algorithm 1 lines 12–13): the request exceeds the
  // cluster's effective capacity, so the rest is spread one process at a
  // time over the selected nodes.
  std::size_t cursor = 0;
  while (remaining > 0) {
    result.procs[cursor] += 1;
    --remaining;
    cursor = (cursor + 1) % result.procs.size();
  }
  return result;
}

Candidate generate_candidate(std::size_t start, std::span<const double> cl,
                             const std::vector<std::vector<double>>& nl,
                             std::span<const int> pc, int nprocs,
                             const JobWeights& job) {
  job.validate();
  const std::size_t count = cl.size();
  NLARM_CHECK(start < count) << "start index out of range";
  NLARM_CHECK(nl.size() == count && pc.size() == count)
      << "cl/nl/pc size mismatch";

  // Addition costs A_v(u); A_v(v) = 0 so the start node sorts first.
  std::vector<double> addition(count);
  for (std::size_t u = 0; u < count; ++u) {
    addition[u] = (u == start)
                      ? 0.0
                      : job.alpha * cl[u] + job.beta * nl[start][u];
  }

  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (addition[a] != addition[b]) {
                       return addition[a] < addition[b];
                     }
                     return a < b;  // deterministic tie-break
                   });
  NLARM_CHECK(order.front() == start)
      << "start node must sort first (its addition cost is 0)";

  FillResult fill = fill_processes(order, pc, nprocs);
  Candidate candidate;
  candidate.start_index = start;
  candidate.members = std::move(fill.members);
  candidate.procs = std::move(fill.procs);
  candidate.total_procs = nprocs;
  return candidate;
}

std::vector<Candidate> generate_all_candidates(
    std::span<const double> cl, const std::vector<std::vector<double>>& nl,
    std::span<const int> pc, int nprocs, const JobWeights& job) {
  std::vector<Candidate> candidates;
  candidates.reserve(cl.size());
  for (std::size_t start = 0; start < cl.size(); ++start) {
    candidates.push_back(
        generate_candidate(start, cl, nl, pc, nprocs, job));
  }
  return candidates;
}

}  // namespace nlarm::core
