#include "core/weights.h"

#include "util/check.h"

namespace nlarm::core {

namespace {
void check_non_negative(double w, const char* name) {
  NLARM_CHECK(w >= 0.0) << "weight '" << name << "' is negative: " << w;
}
}  // namespace

void ComputeLoadWeights::validate() const {
  check_non_negative(cpu_load, "cpu_load");
  check_non_negative(cpu_util, "cpu_util");
  check_non_negative(net_flow, "net_flow");
  check_non_negative(memory, "memory");
  check_non_negative(core_count, "core_count");
  check_non_negative(cpu_freq, "cpu_freq");
  check_non_negative(total_mem, "total_mem");
  check_non_negative(users, "users");
  const double sum = cpu_load + cpu_util + net_flow + memory + core_count +
                     cpu_freq + total_mem + users;
  NLARM_CHECK(sum > 0.0) << "all compute-load weights are zero";
  check_non_negative(window_blend.one_min, "window.one_min");
  check_non_negative(window_blend.five_min, "window.five_min");
  check_non_negative(window_blend.fifteen_min, "window.fifteen_min");
  const double blend_sum = window_blend.one_min + window_blend.five_min +
                           window_blend.fifteen_min;
  NLARM_CHECK(blend_sum > 0.0) << "all window-blend weights are zero";
}

double ComputeLoadWeights::attribute_weight(Attribute attribute) const {
  const double blend_sum = window_blend.one_min + window_blend.five_min +
                           window_blend.fifteen_min;
  const double b1 = window_blend.one_min / blend_sum;
  const double b5 = window_blend.five_min / blend_sum;
  const double b15 = window_blend.fifteen_min / blend_sum;
  switch (attribute) {
    case Attribute::kCoreCount:
      return core_count;
    case Attribute::kCpuFreq:
      return cpu_freq;
    case Attribute::kTotalMem:
      return total_mem;
    case Attribute::kUsers:
      return users;
    case Attribute::kCpuLoad1:
      return cpu_load * b1;
    case Attribute::kCpuLoad5:
      return cpu_load * b5;
    case Attribute::kCpuLoad15:
      return cpu_load * b15;
    case Attribute::kCpuUtil1:
      return cpu_util * b1;
    case Attribute::kCpuUtil5:
      return cpu_util * b5;
    case Attribute::kCpuUtil15:
      return cpu_util * b15;
    case Attribute::kNetFlow1:
      return net_flow * b1;
    case Attribute::kNetFlow5:
      return net_flow * b5;
    case Attribute::kNetFlow15:
      return net_flow * b15;
    case Attribute::kMemAvail1:
      return memory * b1;
    case Attribute::kMemAvail5:
      return memory * b5;
    case Attribute::kMemAvail15:
      return memory * b15;
  }
  NLARM_CHECK(false) << "unknown attribute";
}

ComputeLoadWeights ComputeLoadWeights::compute_intensive() {
  ComputeLoadWeights w;
  w.cpu_load = 0.4;
  w.cpu_util = 0.3;
  w.net_flow = 0.05;
  w.memory = 0.05;
  w.core_count = 0.1;
  w.cpu_freq = 0.05;
  w.total_mem = 0.05;
  return w;
}

ComputeLoadWeights ComputeLoadWeights::memory_intensive() {
  ComputeLoadWeights w;
  w.cpu_load = 0.15;
  w.cpu_util = 0.1;
  w.net_flow = 0.1;
  w.memory = 0.4;
  w.core_count = 0.05;
  w.cpu_freq = 0.05;
  w.total_mem = 0.15;
  return w;
}

ComputeLoadWeights ComputeLoadWeights::network_intensive() {
  ComputeLoadWeights w;
  w.cpu_load = 0.15;
  w.cpu_util = 0.1;
  w.net_flow = 0.45;
  w.memory = 0.1;
  w.core_count = 0.1;
  w.cpu_freq = 0.05;
  w.total_mem = 0.05;
  return w;
}

void NetworkLoadWeights::validate() const {
  check_non_negative(latency, "latency");
  check_non_negative(bandwidth, "bandwidth");
  NLARM_CHECK(latency + bandwidth > 0.0) << "all network-load weights zero";
}

void JobWeights::validate() const {
  check_non_negative(alpha, "alpha");
  check_non_negative(beta, "beta");
  const double sum = alpha + beta;
  NLARM_CHECK(sum > 0.999 && sum < 1.001)
      << "alpha + beta must equal 1 (got " << sum << ")";
}

}  // namespace nlarm::core
