#include "core/normalize.h"

#include <algorithm>

#include "util/check.h"

namespace nlarm::core {

std::vector<double> normalize_by_sum(std::span<const double> values) {
  double sum = 0.0;
  for (double v : values) {
    NLARM_CHECK(v >= 0.0) << "normalize_by_sum needs non-negative values, got "
                          << v;
    sum += v;
  }
  std::vector<double> out(values.begin(), values.end());
  if (sum <= 0.0) {
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }
  for (double& v : out) v /= sum;
  return out;
}

std::vector<double> complement_max(std::span<const double> values) {
  std::vector<double> out(values.begin(), values.end());
  if (out.empty()) return out;
  const double max = *std::max_element(out.begin(), out.end());
  for (double& v : out) v = max - v;
  return out;
}

std::vector<double> normalize_attribute(std::span<const double> values,
                                        bool maximize) {
  std::vector<double> normalized = normalize_by_sum(values);
  if (maximize) return complement_max(normalized);
  return normalized;
}

std::vector<double> rescale_unit_mean(std::span<const double> values) {
  std::vector<double> out(values.begin(), values.end());
  double sum = 0.0;
  for (double v : out) sum += v;
  if (sum <= 0.0) return out;
  const double mean = sum / static_cast<double>(out.size());
  for (double& v : out) v /= mean;
  return out;
}

std::vector<std::vector<double>> rescale_unit_mean(
    const std::vector<std::vector<double>>& matrix) {
  std::vector<std::vector<double>> out = matrix;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = 0; j < out.size(); ++j) {
      if (i == j) continue;
      sum += out[i][j];
      ++count;
    }
  }
  if (sum <= 0.0 || count == 0) return out;
  const double mean = sum / static_cast<double>(count);
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = 0; j < out.size(); ++j) {
      if (i != j) out[i][j] /= mean;
    }
  }
  return out;
}

}  // namespace nlarm::core
