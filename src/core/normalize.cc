#include "core/normalize.h"

#include <algorithm>

#include "util/check.h"

namespace nlarm::core {

std::vector<double> normalize_by_sum(std::span<const double> values) {
  double sum = 0.0;
  for (double v : values) {
    NLARM_CHECK(v >= 0.0) << "normalize_by_sum needs non-negative values, got "
                          << v;
    sum += v;
  }
  std::vector<double> out(values.begin(), values.end());
  if (sum <= 0.0) {
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }
  for (double& v : out) v /= sum;
  return out;
}

std::vector<double> complement_max(std::span<const double> values) {
  std::vector<double> out(values.begin(), values.end());
  if (out.empty()) return out;
  const double max = *std::max_element(out.begin(), out.end());
  for (double& v : out) v = max - v;
  return out;
}

std::vector<double> normalize_attribute(std::span<const double> values,
                                        bool maximize) {
  std::vector<double> normalized = normalize_by_sum(values);
  if (maximize) return complement_max(normalized);
  return normalized;
}

std::vector<double> rescale_unit_mean(std::span<const double> values) {
  std::vector<double> out(values.begin(), values.end());
  rescale_unit_mean_inplace(out);
  return out;
}

void rescale_unit_mean_inplace(std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  if (sum <= 0.0) return;
  const double mean = sum / static_cast<double>(values.size());
  for (double& v : values) v /= mean;
}

util::FlatMatrix rescale_unit_mean(const util::FlatMatrix& matrix) {
  util::FlatMatrix out = matrix;
  rescale_unit_mean_inplace(out);
  return out;
}

void rescale_unit_mean_inplace(util::FlatMatrix& matrix) {
  const std::size_t n = matrix.size();
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = matrix[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      sum += row[j];
      ++count;
    }
  }
  if (sum <= 0.0 || count == 0) return;
  const double mean = sum / static_cast<double>(count);
  for (std::size_t i = 0; i < n; ++i) {
    double* row = matrix[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) row[j] /= mean;
    }
  }
}

}  // namespace nlarm::core
