// Prepared allocator state as a first-class, incrementally-maintained value.
//
// PR 1 memoized the O(V²) prepared inputs (normalized CL, NL matrix, pc)
// per whole-snapshot version, so ANY monitor write threw all of it away.
// This layer makes re-preparation scale with what actually changed:
//
//   MonitorStore ──assemble()──► ClusterSnapshot ─┐
//        └───────drain_delta()─► SnapshotDelta  ──┤
//                                                 ▼
//                       PreparedBuilder (mutable, owner thread only)
//                          rebuild()  O(V²) — fallback / correctness oracle
//                          update()   O(dirty + V)
//                          build()  ──► PreparedSnapshot (immutable epoch)
//
// The built PreparedSnapshot is immutable and safe to share across threads;
// EpochPublisher (core/epoch.h) hands it to concurrent decide() callers.
//
// Bit-identity contract: update()+build() must equal rebuild()+build() down
// to the last bit, so the incremental path can be property-tested against
// the from-scratch path on every tick. Global sum-normalization makes that
// impossible for a floating-point running sum (every NL entry divides by a
// global sum, and FP addition is not associative, so "subtract the old term,
// add the new one" drifts from a from-scratch sum). The canonical pipeline
// here sidesteps that: pair-term totals are *defined* as exact fixed-point
// accumulators (detail::ExactSum — integer arithmetic, so addition IS
// associative and commutative), and the fill/normalizer/rescale scalars are
// derived from those totals with a fixed operation sequence. An incremental
// update subtracts a pair's old contribution and adds its new one; because
// the accumulator is exact, the result equals re-accumulating every pair
// from scratch, bit for bit, with O(dirty) work and no auxiliary partial-sum
// structure. prepare() in the allocator and reference::allocate consume the
// same canonical pipeline (prepared_network_loads), keeping the
// golden-equivalence suite meaningful.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/allocator.h"
#include "core/candidate.h"
#include "core/weights.h"
#include "monitor/snapshot.h"
#include "monitor/snapshot_delta.h"
#include "util/flat_matrix.h"
#include "util/tiled_matrix.h"

namespace nlarm::util {
class ThreadPool;
}

namespace nlarm::core {

/// The request-dependent part of the prepared state: everything besides the
/// snapshot that CL/NL/pc derive from. Epochs are built per profile; a
/// decide() against an epoch must carry a matching profile.
struct RequestProfile {
  ComputeLoadWeights compute_weights;
  NetworkLoadWeights network_weights;
  int ppn = 0;

  static RequestProfile of(const AllocationRequest& request) {
    return {request.compute_weights, request.network_weights, request.ppn};
  }

  bool operator==(const RequestProfile&) const = default;
};

/// Read-only source of raw pair terms. The snapshot-backed implementation is
/// the production one; benches and tests substitute procedural sources so a
/// V=16384 run never has to materialize 8 GB of dense NetSnapshot matrices.
class PairSource {
 public:
  /// Raw terms for one node pair: latency in µs and complement of available
  /// bandwidth in Mbit/s; < 0 = unmeasured (the store's sentinel).
  struct Raw {
    double lat = -1.0;
    double comp = -1.0;
  };

  virtual ~PairSource() = default;
  virtual Raw read(cluster::NodeId u, cluster::NodeId v) const = 0;
};

/// PairSource over a ClusterSnapshot's dense net matrices. Reads exactly
/// what detail::NlState::read_pair reads, so tiled and flat state built from
/// the same snapshot see the same raw terms bit for bit.
class SnapshotPairSource final : public PairSource {
 public:
  explicit SnapshotPairSource(
      std::shared_ptr<const monitor::ClusterSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {}

  Raw read(cluster::NodeId u, cluster::NodeId v) const override;

  const monitor::ClusterSnapshot& snapshot() const { return *snapshot_; }

 private:
  std::shared_ptr<const monitor::ClusterSnapshot> snapshot_;
};

namespace detail {

/// Order-independent exact accumulator for nonnegative doubles: a 256-bit
/// two's-complement fixed-point integer with its least-significant bit at
/// 2⁻⁸⁰. Integer addition is associative and commutative, so a sequence of
/// add()/sub() calls lands on the same state regardless of order — which is
/// exactly what lets an incremental "subtract old term, add new term" match
/// a from-scratch accumulation bit for bit.
///
/// Window: values in [2⁻²⁸, 2¹⁹¹) are decomposed exactly (a 53-bit mantissa
/// shifted into the limbs). Realistic pair metrics — microsecond latencies,
/// Mbit/s bandwidth complements — sit many decades inside that window. Out
/// of deference to garbage inputs the edges are still *deterministic*:
/// positive values below the window contribute 0, values at/above the top
/// (including +inf) clamp to the highest representable shift, and overflow
/// wraps mod 2²⁵⁶ — degenerate, but identical on both paths, which is the
/// contract that matters. NaN and negatives are filtered by the caller
/// (they mean "unmeasured" and are counted, not summed).
class ExactSum {
 public:
  void add(double v) { accumulate(v, /*negate=*/false); }
  void sub(double v) { accumulate(v, /*negate=*/true); }
  /// Limb-wise mod-2²⁵⁶ addition of another accumulator. Folding per-tile
  /// partial sums into a global total this way is associative/commutative,
  /// so a tile-partitioned accumulation equals flat per-pair accumulation
  /// bit for bit.
  void add(const ExactSum& other);
  void reset() { limbs_ = {}; }

  /// Deterministic conversion: fold the limbs high→low in one fixed
  /// expression. (Not correctly-rounded against the abstract sum — it does
  /// not need to be; this fold IS the canonical definition of the total.)
  double to_double() const;

 private:
  void accumulate(double v, bool negate);

  // Little-endian limbs; limb l carries weight 2^(64l − 80).
  std::array<std::uint64_t, 4> limbs_{};
};

/// A dirty pair resolved to working-set positions (i < j). The unit of work
/// the sharded patch paths queue per shard.
struct PairPosition {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
};

/// Exact-accumulator network-load state over a working node set. This class
/// IS the canonical definition of the prepared NL matrix (see file
/// comment): both the one-shot prepared_network_loads() and the incremental
/// PreparedBuilder go through it, which is what makes them bit-identical.
class NlState {
 public:
  /// Gathers every upper-triangle pair term from the snapshot and computes
  /// all aggregates. O(n²). With a pool, rows are partitioned into fixed
  /// ranges whose ExactSum partials fold in canonical range order — integer
  /// addition is associative, so the parallel totals equal the serial ones
  /// bit for bit.
  void full_build(const monitor::ClusterSnapshot& snapshot,
                  std::span<const cluster::NodeId> nodes,
                  const NetworkLoadWeights& weights,
                  util::ThreadPool* pool = nullptr);

  /// Re-reads one pair (positions i < j in the working set) from the
  /// snapshot, swapping its old contribution out of the exact totals and
  /// the new one in. Finish a batch of patches with refresh_dirty().
  void patch_pair(const monitor::ClusterSnapshot& snapshot,
                  std::span<const cluster::NodeId> nodes, std::size_t i,
                  std::size_t j);

  /// Applies a batch of patches. With a pool the batch is sharded by
  /// contiguous pair-index range: each shard replays its pairs in delta
  /// order (duplicates share an index, so they land in one shard) and
  /// accumulates an exact (new − old) delta that is folded into the global
  /// totals in canonical shard order — bit-identical to calling patch_pair
  /// serially. Finish with refresh_dirty().
  void patch_pairs(const monitor::ClusterSnapshot& snapshot,
                   std::span<const cluster::NodeId> nodes,
                   std::span<const PairPosition> pairs,
                   util::ThreadPool* pool = nullptr);

  /// Re-derives the normalization scalars from the (already exact) totals.
  /// O(1) — the accumulators absorbed the per-pair work in patch_pair().
  void refresh_dirty();

  /// Pulls this pair's raw terms toward the cache ahead of a patch_pair()
  /// call (the patch loop's random walk is DRAM-latency-bound otherwise).
  void prefetch_pair(std::size_t i, std::size_t j) const {
    const std::size_t k = pair_index(i, j);
    if (k < lat_raw_.size()) {
      __builtin_prefetch(lat_raw_.data() + k, 1);
      __builtin_prefetch(comp_raw_.data() + k, 1);
    }
  }

  /// Writes the canonical NL matrix (normalized, unit-mean rescaled,
  /// symmetric, zero diagonal). O(n²). Safe to parallelize: every pair
  /// writes two disjoint cells and reads only shared immutable state.
  void materialize(util::FlatMatrix& out,
                   util::ThreadPool* pool = nullptr) const;

  std::size_t node_count() const { return n_; }
  std::size_t pair_count() const { return lat_raw_.size(); }

 private:
  /// Flat index of pair (i, j), i < j, in the i-major upper triangle.
  std::size_t pair_index(std::size_t i, std::size_t j) const {
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }

  void read_pair(const monitor::ClusterSnapshot& snapshot, cluster::NodeId u,
                 cluster::NodeId v, std::size_t k);
  void account_add(std::size_t k);
  void account_remove(std::size_t k);
  void recompute_scalars();

  std::size_t n_ = 0;
  NetworkLoadWeights weights_;

  // Pair-indexed raw terms: latency in µs, complement of available
  // bandwidth in Mbit/s; <0 = unmeasured (the store's sentinel).
  std::vector<double> lat_raw_;
  std::vector<double> comp_raw_;
  // Reverse map k → (i, j), so materialize() needs no arithmetic inversion
  // of pair_index.
  std::vector<std::uint32_t> pair_i_;
  std::vector<std::uint32_t> pair_j_;

  // Exact totals over the measured pair terms plus unmeasured-pair counts.
  // Maintained incrementally; order-independence makes the incremental and
  // from-scratch paths agree exactly.
  ExactSum lat_acc_;
  ExactSum comp_acc_;
  std::uint64_t lat_missing_ = 0;
  std::uint64_t comp_missing_ = 0;

  // Scalars derived from the exact totals (fixed operation sequence).
  double lat_fill_ = 0.0;   ///< mean measured latency (or 100 µs fallback)
  double comp_fill_ = 0.0;  ///< mean measured complement (or 0 fallback)
  double lat_s_ = 0.0;      ///< latency normalizer Σ (with fills)
  double comp_s_ = 0.0;     ///< complement normalizer Σ (with fills)
  double rescale_ = 1.0;    ///< unit-mean rescale factor
};

/// The normalization scalars the canonical NL pipeline derives from the
/// exact totals. Shared between the flat NlState and the tiled state so
/// both use the identical operation sequence (a prerequisite for their
/// bit-identity).
struct NlScalars {
  double lat_fill = 0.0;
  double comp_fill = 0.0;
  double lat_s = 0.0;
  double comp_s = 0.0;
  double rescale = 1.0;
};

NlScalars compute_nl_scalars(double lat_sum, double comp_sum,
                             std::uint64_t lat_missing,
                             std::uint64_t comp_missing, std::size_t pairs,
                             const NetworkLoadWeights& weights);

/// Canonical per-pair NL value from raw terms + scalars — the one formula
/// NlState::materialize, the tiled tile fill and nl_value() all share.
inline double nl_value_from_raw(double lat_raw, double comp_raw,
                                const NlScalars& s,
                                const NetworkLoadWeights& weights) {
  const double lat_value = lat_raw < 0.0 ? s.lat_fill : lat_raw;
  const double comp_value = comp_raw < 0.0 ? s.comp_fill : comp_raw;
  const double lat_term = s.lat_s > 0.0 ? lat_value / s.lat_s : 0.0;
  const double comp_term = s.comp_s > 0.0 ? comp_value / s.comp_s : 0.0;
  return (weights.latency * lat_term + weights.bandwidth * comp_term) *
         s.rescale;
}

/// Tiled counterpart of NlState: exact pair-term accumulators kept PER TILE
/// of a topology block partition, folded into global totals on demand. No
/// per-pair storage at all — O(G²) accumulators plus O(V) partition vectors
/// — which is what holds pair-state memory at V=16384 to megabytes instead
/// of gigabytes. Raw terms are re-read from a PairSource when patching, so
/// the owner must keep the previous snapshot alive across an update (the
/// PreparedBuilder already does).
class TiledNlState {
 public:
  /// Gathers every upper-triangle pair term through `source` and fills all
  /// tile + global accumulators. O(n²) reads, O(G²) memory. With a pool,
  /// row ranges accumulate per-range per-tile partials folded per tile in
  /// canonical range order — bit-identical to the serial accumulation.
  void full_build(const PairSource& source,
                  std::span<const cluster::NodeId> nodes,
                  util::BlockPartition partition,
                  const NetworkLoadWeights& weights,
                  util::ThreadPool* pool = nullptr);

  /// Swaps pair (i, j)'s old contribution (read from `old_source`) for its
  /// new one (read from `new_source`) in the pair's tile and the global
  /// totals. Finish a batch with refresh_dirty().
  void patch_pair(const PairSource& old_source, const PairSource& new_source,
                  std::span<const cluster::NodeId> nodes, std::size_t i,
                  std::size_t j);

  /// Applies a batch of patches. With a pool the batch is sharded by tile
  /// range: a shard owns a disjoint tile-index interval (same-tile pairs —
  /// including duplicates — replay in delta order inside one shard), tile
  /// accumulators are mutated directly, and exact global deltas fold in
  /// canonical shard order — bit-identical to serial patch_pair calls.
  /// Finish with refresh_dirty().
  void patch_pairs(const PairSource& old_source, const PairSource& new_source,
                   std::span<const cluster::NodeId> nodes,
                   std::span<const PairPosition> pairs,
                   util::ThreadPool* pool = nullptr);

  /// Re-derives the normalization scalars from the exact global totals.
  void refresh_dirty();

  /// Writes the full canonical NL matrix from `source` — same entries, bit
  /// for bit, as NlState::materialize over the same working set. O(n²).
  /// Parallel-safe over row ranges (disjoint cell writes).
  void materialize_dense(const PairSource& source,
                         std::span<const cluster::NodeId> nodes,
                         util::FlatMatrix& out,
                         util::ThreadPool* pool = nullptr) const;

  std::size_t node_count() const { return n_; }
  const util::BlockPartition& partition() const { return partition_; }
  const NlScalars& scalars() const { return scalars_; }

  /// Mean filled tile terms (lat, comp) for phase-1 group aggregates.
  double tile_lat_mean(std::size_t t) const;
  double tile_comp_mean(std::size_t t) const;
  std::uint64_t tile_pairs(std::size_t t) const { return tile_pairs_[t]; }

  std::size_t memory_bytes() const;

 private:
  std::size_t n_ = 0;
  util::BlockPartition partition_;
  NetworkLoadWeights weights_;

  // Per-tile exact totals over measured terms + unmeasured counts + pair
  // counts, indexed by BlockPartition::tile_index.
  std::vector<ExactSum> tile_lat_;
  std::vector<ExactSum> tile_comp_;
  std::vector<std::uint64_t> tile_lat_missing_;
  std::vector<std::uint64_t> tile_comp_missing_;
  std::vector<std::uint64_t> tile_pairs_;

  // Global exact totals (the fold of all tiles, maintained incrementally).
  ExactSum lat_acc_;
  ExactSum comp_acc_;
  std::uint64_t lat_missing_ = 0;
  std::uint64_t comp_missing_ = 0;
  std::size_t pair_total_ = 0;

  NlScalars scalars_;
};

}  // namespace detail

/// Immutable tiled pair state published with an epoch. Carries the block
/// partition over working-set positions, per-tile aggregate means for
/// phase-1 group selection, the canonical global scalars, and a lazy dense
/// tile cache for phase 2 — tiles of blocks an allocation actually chose
/// are the only dense pair values ever materialized. tile_values() is
/// thread-safe (decide() runs concurrently against one epoch).
class TiledPairState {
 public:
  struct TileAggregate {
    double lat_mean = 0.0;   ///< filled mean latency over the tile's pairs
    double comp_mean = 0.0;  ///< filled mean bandwidth complement
    std::uint64_t pairs = 0;
  };

  util::BlockPartition partition;
  NetworkLoadWeights weights;
  std::vector<TileAggregate> tiles;  ///< BlockPartition::tile_index order
  detail::NlScalars scalars;
  /// Working-set node ids (== PreparedSnapshot::usable) and the raw-term
  /// source the lazy tile fill reads through.
  std::vector<cluster::NodeId> nodes;
  std::shared_ptr<const PairSource> source;

  /// Canonical NL value for working-set positions (i, j) — bit-identical to
  /// the dense prepared matrix entry [i][j].
  double nl_value(std::size_t i, std::size_t j) const {
    if (i == j) {
      return 0.0;
    }
    const PairSource::Raw raw = source->read(nodes[i], nodes[j]);
    return detail::nl_value_from_raw(raw.lat, raw.comp, scalars, weights);
  }

  /// Dense values of tile (a, b), a ≤ b, materialized on first use and
  /// cached for the epoch's lifetime. Row-major over (members(a),
  /// members(b)). Thread-safe.
  std::span<const double> tile_values(std::size_t a, std::size_t b) const;

  std::size_t tiles_materialized() const;
  std::size_t tile_cache_hits() const;
  /// Bytes of pair state held right now: aggregates, partition and the
  /// materialized tile cache (the dense V×V matrix this replaces is
  /// n² × 8 bytes).
  std::size_t memory_bytes() const;

 private:
  mutable std::mutex cache_mutex_;
  mutable util::TiledMatrix cache_;
  mutable bool cache_ready_ = false;
};

/// One-shot canonical prepared-NL matrix (normalize by chunked sums, fill
/// missing with the measured mean, unit-mean rescale). This is what the
/// allocator's prepare(), reference::allocate and the epoch builder all use;
/// it intentionally supersedes rescale_unit_mean(network_loads(...)) as the
/// prepared-input definition (the raw network_loads() stays as the Eq. 2
/// diagnostic form).
void prepared_network_loads(const monitor::ClusterSnapshot& snapshot,
                            std::span<const cluster::NodeId> nodes,
                            const NetworkLoadWeights& weights,
                            util::FlatMatrix& out);

/// An immutable epoch: everything a decide() needs, derived from one
/// snapshot version and one request profile. Safe to read from any number
/// of threads; never mutated after build().
struct PreparedSnapshot {
  /// The snapshot the epoch derives from (annotation, hostfiles, audit).
  std::shared_ptr<const monitor::ClusterSnapshot> snapshot;
  RequestProfile profile;
  std::uint64_t version = 0;  ///< snapshot version the state matches
  double time = 0.0;          ///< snapshot assembly time
  std::uint64_t epoch = 0;    ///< stamped by EpochPublisher::publish

  std::vector<cluster::NodeId> usable;
  std::vector<double> cl;  ///< unit-mean rescaled compute loads
  /// Canonical NL matrix. shared_ptr so epochs whose network state did not
  /// change (node-only ticks — the common case given the paper's 3–10 s node
  /// vs 1–5 min pair cadences) share one materialized matrix. A tiled
  /// builder above its dense_nl_limit publishes nullptr here — consumers
  /// must then decide through `tiles` (allocate_two_phase).
  std::shared_ptr<const util::FlatMatrix> nl;
  /// Tiled pair state (nullptr unless the builder runs in tiled mode).
  /// Shared across node-only epochs exactly like `nl`.
  std::shared_ptr<const TiledPairState> tiles;
  std::vector<int> pc;

  /// Position of each NodeId in `usable` (-1 = not usable). Batch admission
  /// uses this to debit capacity by node id.
  std::vector<std::int32_t> pos_of;

  // Broker-gate aggregates (same accumulation order as the classic path).
  double load_per_core = 0.0;
  int effective_capacity = 0;

  // Build provenance (observability / tests).
  bool incremental = false;     ///< last state change was a delta apply
  std::size_t delta_nodes = 0;  ///< in-working-set dirty nodes applied
  std::size_t delta_pairs = 0;  ///< in-working-set dirty pairs applied

  // Degradation provenance (set by ResourceBroker when a Degrader rewrote
  // the snapshot this epoch derives from; see core/degrade.h).
  bool degraded = false;           ///< snapshot was rewritten for staleness
  std::size_t quarantined = 0;     ///< nodes quarantined out of usable
  std::size_t pair_fallbacks = 0;  ///< pairs served from the 5-min fallback
};

/// Tiled-mode configuration for PreparedBuilder.
struct TilingOptions {
  /// Materialize the dense NL matrix only while the usable-node count is at
  /// most this; above it epochs carry nl == nullptr and only the tiled
  /// state, and decides must go through allocate_two_phase.
  std::size_t dense_nl_limit = 2048;
  /// 0 = one block per switch id (topology partition); > 0 = fixed-size
  /// blocks of the usable set in position order (topology-free clusters).
  std::size_t block_size = 0;
};

/// Owner-thread builder of PreparedSnapshot epochs. Not thread-safe; one
/// monitor/refresh thread drives it while decide() threads consume the
/// immutable epochs it builds.
class PreparedBuilder {
 public:
  explicit PreparedBuilder(RequestProfile profile);
  /// Tiled mode: pair state is kept per topology tile (O(G²) memory) and
  /// epochs additionally publish a TiledPairState.
  PreparedBuilder(RequestProfile profile, TilingOptions tiling);

  bool tiling_enabled() const { return tiling_.has_value(); }

  /// Attaches (or detaches, with nullptr) a refresh pool: full rebuilds,
  /// sharded delta applies and NL materializations then fan out over its
  /// workers. Results are bit-identical with or without a pool — the pool
  /// only changes wall time, never bits (fixed-range ExactSum partials
  /// folded in canonical order; see DESIGN.md §17). The pool must outlive
  /// every rebuild()/update()/build() call.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* thread_pool() const { return pool_; }

  const RequestProfile& profile() const { return profile_; }
  bool has_state() const { return has_state_; }
  std::uint64_t state_version() const { return version_; }

  /// Full O(V²) re-preparation from the snapshot. Also the fallback target
  /// of update() and the correctness oracle the tests compare against.
  void rebuild(std::shared_ptr<const monitor::ClusterSnapshot> snapshot);

  /// Applies a delta in O(dirty + V). Returns true when the
  /// delta was applied incrementally; falls back to rebuild() (returning
  /// false) whenever continuity cannot be proven: no prior state, version
  /// gap, livehosts change, an explicit full flag, a node-count change, or
  /// a dirty node whose usability flipped.
  bool update(std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
              const monitor::SnapshotDelta& delta);

  /// Materializes the current state as an immutable epoch. O(V²) only when
  /// pair state changed since the last build; otherwise the previous NL
  /// matrix is shared.
  std::shared_ptr<PreparedSnapshot> build();

 private:
  void recompute_node_state();

  RequestProfile profile_;
  util::ThreadPool* pool_ = nullptr;  ///< not owned; refresh fan-out target
  bool has_state_ = false;
  std::shared_ptr<const monitor::ClusterSnapshot> snapshot_;
  std::uint64_t version_ = 0;
  double time_ = 0.0;

  std::vector<cluster::NodeId> usable_;
  std::vector<std::int32_t> pos_of_;
  std::vector<double> cl_;
  std::vector<int> pc_;
  double load_per_core_ = 0.0;
  int effective_capacity_ = 0;

  detail::NlState nl_state_;
  std::shared_ptr<const util::FlatMatrix> nl_cache_;  ///< last materialized
  bool nl_stale_ = true;

  // Tiled mode (nullopt = classic dense pair state).
  std::optional<TilingOptions> tiling_;
  detail::TiledNlState tiled_state_;
  std::shared_ptr<const TiledPairState> tiles_cache_;

  bool incremental_ = false;
  std::size_t delta_nodes_ = 0;
  std::size_t delta_pairs_ = 0;
};

namespace simd {

/// Which addition-cost kernel runtime dispatch selected for this process.
enum class Kernel { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// The canonical scalar Algorithm-1 scoring row:
///   out[u] = alpha * cl[u] + beta * nl_row[u]
/// (the caller zeroes out[start] afterwards). This is the reference the
/// vector kernels are gated against; the equivalence suites pin the whole
/// fast path to it.
void score_addition_row_scalar(double alpha, std::span<const double> cl,
                               const double* nl_row, double beta,
                               std::span<double> out);

/// Dispatched scoring row: AVX2 on x86-64, NEON on aarch64, scalar
/// otherwise. The vector kernels use element-wise mul + add (never a fused
/// multiply-add), so each lane performs the same two IEEE roundings as the
/// scalar expression — and dispatch additionally runs a one-time exactness
/// probe, falling back to scalar if the local compiler contracted the
/// scalar loop differently. Results are therefore bit-identical to
/// score_addition_row_scalar on every platform, by construction or by gate.
void score_addition_row(double alpha, std::span<const double> cl,
                        const double* nl_row, double beta,
                        std::span<double> out);

/// The kernel the one-time dispatch landed on ("scalar", "avx2", "neon").
Kernel active_kernel();
const char* active_kernel_name();

}  // namespace simd

/// Stateless Algorithms 1+2 against an immutable epoch — the concurrent
/// decide() hot path (thread safety comes from touching only the epoch,
/// thread-local scratch and atomic metrics).
///
/// `pc_override`/`starts` support batch admission: a non-empty pc_override
/// replaces the epoch's per-node capacities (zero entries are skipped by the
/// process fill), and a non-empty `starts` restricts candidate generation to
/// those working-set positions. Both empty = the plain single-request path.
/// `stats` (optional) receives the per-stage timings and counters.
Allocation allocate_prepared(const PreparedSnapshot& prepared,
                             const AllocationRequest& request,
                             const GenerationOptions& options = {},
                             AllocStats* stats = nullptr,
                             std::span<const int> pc_override = {},
                             std::span<const std::size_t> starts = {});

}  // namespace nlarm::core
