#include "apps/minifft.h"

#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace nlarm::apps {

long minifft_points(int n) {
  NLARM_CHECK(n > 0) << "grid size must be positive";
  return static_cast<long>(n) * n * n;
}

mpisim::AppProfile make_minifft_profile(const MiniFftParams& params) {
  NLARM_CHECK(params.nranks > 0) << "need at least one rank";
  NLARM_CHECK(params.iterations > 0) << "need at least one iteration";

  const double points = static_cast<double>(minifft_points(params.n));
  const double points_per_rank = points / params.nranks;

  mpisim::AppProfile profile;
  profile.name = util::format("miniFFT(n=%d,p=%d)", params.n, params.nranks);
  profile.nranks = params.nranks;
  profile.iterations = params.iterations;
  // Slab decomposition: ranks form a 1-D line; the communication pattern is
  // the alltoall, so the grid only matters for validation.
  profile.grid = {1, 1, params.nranks};

  // Three 1-D FFT passes over the rank's slab per transform.
  const double log_n = std::log2(static_cast<double>(params.n));
  const double fft_flops = 3.0 * points_per_rank * params.flops_scale * log_n;

  // Transpose: the rank's slab (16 B per complex point) is scattered evenly
  // over all ranks — bytes to each partner = slab / P.
  const double bytes_per_pair =
      points_per_rank * 16.0 / static_cast<double>(params.nranks);

  profile.phases.push_back(mpisim::ComputePhase{fft_flops});
  profile.phases.push_back(mpisim::AlltoallPhase{bytes_per_pair});
  profile.phases.push_back(mpisim::ComputePhase{fft_flops * 0.5});
  profile.phases.push_back(mpisim::AlltoallPhase{bytes_per_pair});
  return profile;
}

}  // namespace nlarm::apps
