// miniFFT: a distributed 3-D FFT proxy (slab decomposition).
//
// Not part of the paper's evaluation — added because the transpose-based
// FFT is the canonical *bisection-bandwidth-bound* MPI workload, the
// opposite corner of the communication space from miniMD's nearest-neighbor
// halos. Each iteration: local 1-D FFT passes (n³ log n flops split over
// ranks) and two all-to-all transposes moving each rank's slab.
#pragma once

#include "mpisim/app_profile.h"

namespace nlarm::apps {

struct MiniFftParams {
  int n = 128;          ///< grid points per dimension (n³ complex values)
  int nranks = 8;
  int iterations = 20;  ///< forward+inverse transform pairs
  /// Effective flops per point per 1-D FFT pass (5·log2 n for radix-2,
  /// deflated memory efficiency folded in).
  double flops_scale = 10.0;
};

/// Total complex grid points: n³.
long minifft_points(int n);

mpisim::AppProfile make_minifft_profile(const MiniFftParams& params);

}  // namespace nlarm::apps
