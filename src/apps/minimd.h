// miniMD proxy (Mantevo): parallel molecular dynamics with spatial
// decomposition.
//
// The paper varies the problem size s from 8 to 48 (§5.1), which in miniMD's
// fcc lattice is 4·s³ atoms (s=8 → 2048, s=48 → 442368 — the paper's
// "2K – 442K atoms"). Each timestep: force computation over the rank's
// atoms, a 6-face ghost-atom halo exchange (periodic box), and two small
// allreduces (energy/virial reductions).
#pragma once

#include "mpisim/app_profile.h"

namespace nlarm::apps {

struct MiniMdParams {
  int size = 16;         ///< lattice parameter s; atoms = 4·s³
  int nranks = 8;
  int timesteps = 100;   ///< miniMD default run length
  /// Effective force-field work per atom per step (neighbors × flops/pair,
  /// deflated cache efficiency — calibrated so comm fractions land in the
  /// paper's 40–80% band on the GigE testbed).
  double flops_per_atom = 15000.0;
  /// Ghost-exchange payload per boundary atom (positions forward + forces
  /// reverse, doubles).
  double bytes_per_ghost_atom = 64.0;
};

/// Number of atoms for lattice size s.
long minimd_atoms(int size);

/// Builds the execution profile. Decomposition is the most cubic 3-D rank
/// grid; ghost-atom count per face scales with (atoms/rank)^(2/3).
mpisim::AppProfile make_minimd_profile(const MiniMdParams& params);

}  // namespace nlarm::apps
