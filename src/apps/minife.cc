#include "apps/minife.h"

#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace nlarm::apps {

long minife_rows(int nx) {
  NLARM_CHECK(nx > 0) << "nx must be positive";
  const long nodes = static_cast<long>(nx) + 1;
  return nodes * nodes * nodes;
}

mpisim::AppProfile make_minife_profile(const MiniFeParams& params) {
  NLARM_CHECK(params.nranks > 0) << "need at least one rank";
  NLARM_CHECK(params.cg_iterations > 0) << "need at least one CG iteration";

  const double rows = static_cast<double>(minife_rows(params.nx));
  const double rows_per_rank = rows / params.nranks;

  mpisim::AppProfile profile;
  profile.name = util::format("miniFE(nx=%d,p=%d)", params.nx, params.nranks);
  profile.nranks = params.nranks;
  profile.iterations = params.cg_iterations;
  profile.grid = mpisim::balanced_grid_3d(params.nranks);

  // SpMV: 2 flops per nonzero; dot products and axpys: 2 flops per row each.
  const double spmv_flops =
      rows_per_rank * params.nonzeros_per_row * params.flops_per_nonzero;
  const double vector_flops = rows_per_rank * 2.0 * 5.0;  // 2 dots + 3 axpys

  // Halo: one layer of boundary rows per face, 8 bytes per value.
  const double face_rows = std::pow(rows_per_rank, 2.0 / 3.0);
  const double face_bytes = face_rows * 8.0;

  profile.phases.push_back(mpisim::ComputePhase{spmv_flops + vector_flops});
  profile.phases.push_back(
      mpisim::HaloPhase{face_bytes, /*periodic=*/false});
  profile.phases.push_back(mpisim::AllreducePhase{8.0});
  profile.phases.push_back(mpisim::AllreducePhase{8.0});
  return profile;
}

}  // namespace nlarm::apps
