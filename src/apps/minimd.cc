#include "apps/minimd.h"

#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace nlarm::apps {

long minimd_atoms(int size) {
  NLARM_CHECK(size > 0) << "lattice size must be positive";
  return 4L * size * size * size;  // fcc unit cell: 4 atoms
}

mpisim::AppProfile make_minimd_profile(const MiniMdParams& params) {
  NLARM_CHECK(params.nranks > 0) << "need at least one rank";
  NLARM_CHECK(params.timesteps > 0) << "need at least one timestep";

  const double atoms = static_cast<double>(minimd_atoms(params.size));
  const double atoms_per_rank = atoms / params.nranks;

  mpisim::AppProfile profile;
  profile.name = util::format("miniMD(s=%d,p=%d)", params.size, params.nranks);
  profile.nranks = params.nranks;
  profile.iterations = params.timesteps;
  profile.grid = mpisim::balanced_grid_3d(params.nranks);

  // Ghost atoms on one face of the rank's sub-box: surface layer of a cube
  // holding atoms_per_rank atoms, with a cutoff skin a few atom-layers deep.
  const double face_atoms = std::pow(atoms_per_rank, 2.0 / 3.0) * 3.0;
  const double face_bytes = face_atoms * params.bytes_per_ghost_atom;

  profile.phases.push_back(
      mpisim::ComputePhase{atoms_per_rank * params.flops_per_atom});
  // Forward communication (ghost positions) and reverse communication
  // (ghost forces) each step.
  profile.phases.push_back(
      mpisim::HaloPhase{face_bytes, /*periodic=*/true});
  profile.phases.push_back(
      mpisim::HaloPhase{face_bytes, /*periodic=*/true});
  // Thermo reductions (energy, virial): two scalar allreduces per step.
  profile.phases.push_back(mpisim::AllreducePhase{16.0});
  profile.phases.push_back(mpisim::AllreducePhase{16.0});
  return profile;
}

}  // namespace nlarm::apps
