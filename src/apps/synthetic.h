// Synthetic application with a configurable computation/communication mix —
// useful for weight-tuning experiments (§6 discusses profiling applications
// to choose α/β) and for property tests that need apps at the extremes.
#pragma once

#include "mpisim/app_profile.h"

namespace nlarm::apps {

struct SyntheticParams {
  int nranks = 8;
  int iterations = 50;
  double flops_per_rank = 1e8;
  double halo_bytes_per_face = 0.0;   ///< 0 disables the halo phase
  double allreduce_bytes = 0.0;       ///< 0 disables the allreduce phase
  bool periodic = true;
};

mpisim::AppProfile make_synthetic_profile(const SyntheticParams& params);

/// Convenience extremes.
mpisim::AppProfile make_compute_bound_profile(int nranks, int iterations = 50);
mpisim::AppProfile make_comm_bound_profile(int nranks, int iterations = 50);

}  // namespace nlarm::apps
