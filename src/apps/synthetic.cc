#include "apps/synthetic.h"

#include "util/check.h"
#include "util/strings.h"

namespace nlarm::apps {

mpisim::AppProfile make_synthetic_profile(const SyntheticParams& params) {
  NLARM_CHECK(params.nranks > 0) << "need at least one rank";
  NLARM_CHECK(params.flops_per_rank >= 0.0) << "negative flops";

  mpisim::AppProfile profile;
  profile.name = util::format("synthetic(p=%d)", params.nranks);
  profile.nranks = params.nranks;
  profile.iterations = params.iterations;
  profile.grid = mpisim::balanced_grid_3d(params.nranks);
  if (params.flops_per_rank > 0.0) {
    profile.phases.push_back(mpisim::ComputePhase{params.flops_per_rank});
  }
  if (params.halo_bytes_per_face > 0.0) {
    profile.phases.push_back(
        mpisim::HaloPhase{params.halo_bytes_per_face, params.periodic});
  }
  if (params.allreduce_bytes > 0.0) {
    profile.phases.push_back(
        mpisim::AllreducePhase{params.allreduce_bytes});
  }
  NLARM_CHECK(!profile.phases.empty())
      << "synthetic app needs at least one non-zero phase";
  return profile;
}

mpisim::AppProfile make_compute_bound_profile(int nranks, int iterations) {
  SyntheticParams params;
  params.nranks = nranks;
  params.iterations = iterations;
  params.flops_per_rank = 5e8;
  params.allreduce_bytes = 8.0;
  return make_synthetic_profile(params);
}

mpisim::AppProfile make_comm_bound_profile(int nranks, int iterations) {
  SyntheticParams params;
  params.nranks = nranks;
  params.iterations = iterations;
  params.flops_per_rank = 1e6;
  params.halo_bytes_per_face = 2e6;
  return make_synthetic_profile(params);
}

}  // namespace nlarm::apps
