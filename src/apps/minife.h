// miniFE proxy (Mantevo): unstructured implicit finite elements.
//
// miniFE assembles a brick-shaped domain of nx×ny×nz hexahedral elements
// (the paper fixes ny = nz = nx, §5.2) and solves with CG. Each CG
// iteration: one 27-point-stencil SpMV with a 1-deep halo exchange
// (non-periodic), two dot products (8-byte allreduces) and three axpys.
#pragma once

#include "mpisim/app_profile.h"

namespace nlarm::apps {

struct MiniFeParams {
  int nx = 96;           ///< elements per dimension (ny = nz = nx)
  int nranks = 8;
  int cg_iterations = 200;  ///< miniFE's default max CG iterations
  /// Effective cost per matrix entry: 2 flops of arithmetic inflated by the
  /// memory-bound nature of SpMV (~12% of peak), so modelled compute time
  /// matches a real CG iteration.
  double flops_per_nonzero = 10.0;
  int nonzeros_per_row = 27;       ///< hex-8 stencil
};

/// Matrix rows for an nx³-element brick: (nx+1)³ nodes.
long minife_rows(int nx);

mpisim::AppProfile make_minife_profile(const MiniFeParams& params);

}  // namespace nlarm::apps
