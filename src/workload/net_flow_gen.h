// Background network traffic generator.
//
// Two layers, matching the paper's observations (§1, Fig. 1(b), Fig. 2(b)):
//  * per-node chatter — on/off local traffic (video lectures, downloads,
//    NFS) that loads only the node's uplink;
//  * elephant flows — point-to-point transfers between random node pairs
//    (network-intensive jobs) that load every link on their path and cause
//    the P2P bandwidth fluctuations of Figure 2.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "sim/markov.h"
#include "sim/ou_process.h"
#include "sim/rng.h"

namespace nlarm::workload {

struct TrafficParams {
  /// Chatter: expected off/on episode lengths and on-rate distribution.
  double chatter_mean_off_s = 600.0;
  double chatter_mean_on_s = 180.0;
  double chatter_rate_median_mbps = 30.0;
  double chatter_rate_sigma = 1.0;

  /// Elephant flows: Poisson arrivals (mean inter-arrival over the whole
  /// cluster), exponential durations, lognormal rates. Defaults keep ~8
  /// flows alive — enough that several links are visibly loaded at any
  /// time, as in the paper's Figure 2(a) dark patches. Durations are long
  /// (other users' experiments and bulk transfers run for many minutes),
  /// which is what makes the 5-minute bandwidth probe cadence useful.
  double elephant_interarrival_s = 75.0;
  double elephant_mean_duration_s = 600.0;
  double elephant_rate_median_mbps = 200.0;
  double elephant_rate_sigma = 0.8;

  /// Fraction of elephants with one endpoint on a designated "server" node
  /// (creates persistent hotspots like a lab file server).
  double server_affinity = 0.3;
  cluster::NodeId server_node = 0;
};

class BackgroundTraffic {
 public:
  BackgroundTraffic(const cluster::Cluster& cluster, net::FlowSet& flows,
                    net::NetworkModel& network, TrafficParams params,
                    sim::Rng rng);

  /// Advances chatter and elephant arrivals/expiries by dt seconds and
  /// pushes the result into the flow set and the network model's uplink
  /// backgrounds.
  void step(double now, double dt);

  std::size_t active_elephants() const { return active_.size(); }
  const TrafficParams& params() const { return params_; }

 private:
  struct ActiveFlow {
    net::FlowId id;
    double expires_at;
  };
  struct Chatter {
    sim::OnOffModulator modulator;
    double on_rate_mbps;
  };

  void spawn_elephant(double now);

  const cluster::Cluster& cluster_;
  net::FlowSet& flows_;
  net::NetworkModel& network_;
  TrafficParams params_;
  sim::Rng rng_;
  std::vector<Chatter> chatter_;
  std::vector<ActiveFlow> active_;
};

}  // namespace nlarm::workload
