// Time-series trace recording and replay.
//
// Figures 1 and 2(b) of the paper are multi-day traces of node metrics; the
// recorder samples named channels on a fixed period and can serialize the
// result to CSV. Replay loads a recorded CSV back into memory so recorded
// cluster days can be re-used as deterministic workloads.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace nlarm::workload {

/// One recorded channel: aligned time/value vectors.
struct TimeSeries {
  std::string name;
  std::vector<double> times;
  std::vector<double> values;

  double value_at(double time) const;  ///< step interpolation; clamped
};

class TraceRecorder {
 public:
  using Sampler = std::function<double()>;

  /// Registers a channel; `sampler` is called on each sampling tick.
  void add_channel(const std::string& name, Sampler sampler);

  /// Schedules sampling every `period` seconds on the simulation.
  void attach(sim::Simulation& sim, double period);

  /// Takes one sample of all channels at time `now` (attach() does this
  /// automatically; exposed for tests and manual loops).
  void sample(double now);

  std::size_t channel_count() const { return channels_.size(); }
  const TimeSeries& series(std::size_t index) const;
  const TimeSeries& series(const std::string& name) const;

  /// CSV with a `time` column plus one column per channel.
  void write_csv(std::ostream& out) const;

 private:
  struct Channel {
    TimeSeries series;
    Sampler sampler;
  };
  std::vector<Channel> channels_;
  std::vector<double> sample_times_;
  sim::PeriodicHandle handle_;
};

/// Loads a trace CSV (as written by TraceRecorder::write_csv) into series.
std::vector<TimeSeries> load_trace_csv(std::istream& in);

}  // namespace nlarm::workload
