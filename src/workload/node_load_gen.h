// Per-node background-load generator.
//
// Reproduces the statistical structure of Figure 1: CPU load that is mostly
// low with occasional spikes (lab sessions, assignment deadlines), CPU
// utilization averaging 20–35%, memory usage around 25% of 16 GB, and a
// small changing population of logged-in users. Each node gets a
// "personality" (its own baselines) so the cluster is heterogeneous in load,
// not just in hardware.
#pragma once

#include "cluster/node.h"
#include "sim/markov.h"
#include "sim/ou_process.h"
#include "sim/rng.h"

namespace nlarm::workload {

/// Per-node long-run baselines, drawn once per node by the scenario.
struct NodePersonality {
  double base_load_mean = 0.3;   ///< runnable-queue mean outside spikes
  double load_volatility = 0.25; ///< OU diffusion for CPU load
  double spike_magnitude = 4.0;  ///< extra load during a spike episode
  double mean_spike_gap_s = 4.0 * 3600.0;   ///< expected time between spikes
  double mean_spike_len_s = 30.0 * 60.0;    ///< expected spike duration
  double util_base = 0.25;       ///< interactive CPU utilization baseline
  double mem_frac_mean = 0.25;   ///< mean fraction of RAM in use
  double user_mean = 1.5;        ///< mean logged-in sessions
};

class NodeLoadGenerator {
 public:
  NodeLoadGenerator(const cluster::NodeSpec& spec,
                    const NodePersonality& personality, sim::Rng rng);

  /// Advances the node's background activity by dt seconds and writes the
  /// resulting dynamics (cpu_load, cpu_util, mem_used_gb, users) into
  /// `node`. Does not touch net_flow_mbps (owned by the traffic generator)
  /// or `alive`.
  void step(double dt, cluster::Node& node);

  const NodePersonality& personality() const { return personality_; }

  /// True while a load-spike episode is active.
  bool in_spike() const { return spike_.on(); }

 private:
  NodePersonality personality_;
  sim::Rng rng_;
  sim::OuProcess load_;
  sim::OnOffModulator spike_;
  sim::OuProcess util_extra_;
  sim::OuProcess mem_frac_;
  double users_;
};

/// Draws a heterogeneous personality for one node. `flavor` scales overall
/// business: 1.0 = the shared-lab cluster of the paper.
NodePersonality draw_personality(sim::Rng& rng, double flavor);

}  // namespace nlarm::workload
