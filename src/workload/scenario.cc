#include "workload/scenario.h"

#include "util/check.h"
#include "util/strings.h"

namespace nlarm::workload {

ScenarioKind parse_scenario_kind(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "quiet") return ScenarioKind::kQuiet;
  if (lower == "shared_lab" || lower == "shared-lab" || lower == "lab") {
    return ScenarioKind::kSharedLab;
  }
  if (lower == "hotspot") return ScenarioKind::kHotspot;
  if (lower == "heavy") return ScenarioKind::kHeavy;
  NLARM_CHECK(false) << "unknown scenario '" << name << "'";
}

std::string to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kQuiet:
      return "quiet";
    case ScenarioKind::kSharedLab:
      return "shared_lab";
    case ScenarioKind::kHotspot:
      return "hotspot";
    case ScenarioKind::kHeavy:
      return "heavy";
  }
  return "?";
}

ScenarioTuning tuning_for(ScenarioKind kind) {
  ScenarioTuning t;
  switch (kind) {
    case ScenarioKind::kQuiet:
      t.load_flavor = 0.15;
      t.traffic.chatter_rate_median_mbps = 5.0;
      t.traffic.elephant_interarrival_s = 600.0;
      t.traffic.elephant_rate_median_mbps = 60.0;
      break;
    case ScenarioKind::kSharedLab:
      // Defaults in NodePersonality/TrafficParams target Fig. 1 statistics.
      break;
    case ScenarioKind::kHotspot:
      t.load_flavor = 1.6;
      t.traffic.elephant_interarrival_s = 30.0;
      t.traffic.elephant_rate_median_mbps = 300.0;
      t.traffic.server_affinity = 0.45;
      break;
    case ScenarioKind::kHeavy:
      t.load_flavor = 20.0;
      t.traffic.chatter_mean_off_s = 180.0;
      t.traffic.chatter_mean_on_s = 240.0;
      t.traffic.chatter_rate_median_mbps = 120.0;
      t.traffic.elephant_interarrival_s = 12.0;
      t.traffic.elephant_rate_median_mbps = 400.0;
      break;
  }
  return t;
}

Scenario::Scenario(cluster::Cluster& cluster, net::FlowSet& flows,
                   net::NetworkModel& network, const ScenarioOptions& options)
    : cluster_(cluster), flows_(flows), network_(network), options_(options) {
  NLARM_CHECK(options.tick_seconds > 0.0) << "tick must be positive";
  const ScenarioTuning tuning = tuning_for(options.kind);

  sim::Rng root(options.seed);
  sim::Rng personality_rng = root.fork("personalities");
  node_gens_.reserve(static_cast<std::size_t>(cluster.size()));
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    const NodePersonality personality =
        draw_personality(personality_rng, tuning.load_flavor);
    node_gens_.emplace_back(cluster.node(n).spec, personality,
                            root.fork(0x4000u + static_cast<std::uint64_t>(n)));
  }
  traffic_ = std::make_unique<BackgroundTraffic>(
      cluster, flows, network, tuning.traffic, root.fork("traffic"));
  failure_rng_ = root.fork("failures");
  downtime_left_.assign(static_cast<std::size_t>(cluster.size()), 0.0);
  NLARM_CHECK(options.mean_node_uptime_s >= 0.0 &&
              options.mean_node_downtime_s > 0.0)
      << "invalid node failure parameters";
}

void Scenario::update_failures(double dt) {
  if (options_.mean_node_uptime_s <= 0.0) return;
  const double fail_prob = dt / options_.mean_node_uptime_s;
  for (cluster::NodeId n = 0; n < cluster_.size(); ++n) {
    const auto idx = static_cast<std::size_t>(n);
    cluster::Node& node = cluster_.mutable_node(n);
    if (node.dyn.alive) {
      if (failure_rng_.chance(std::min(1.0, fail_prob))) {
        node.dyn.alive = false;
        downtime_left_[idx] =
            failure_rng_.exponential(1.0 / options_.mean_node_downtime_s);
        ++failures_;
      }
    } else if (downtime_left_[idx] > 0.0) {
      downtime_left_[idx] -= dt;
      if (downtime_left_[idx] <= 0.0) {
        node.dyn.alive = true;  // reboot: fresh, idle node
        node.dyn.cpu_load = 0.0;
        node.dyn.cpu_util = 0.0;
        node.dyn.users = 0;
      }
    }
  }
}

void Scenario::attach(sim::Simulation& sim) {
  NLARM_CHECK(!attached_) << "scenario already attached";
  attached_ = true;
  const double dt = options_.tick_seconds;
  tick_handle_ = sim.schedule_every(dt, dt, [this, &sim, dt]() {
    tick(sim.now(), dt);
  });
}

void Scenario::tick(double now, double dt) {
  update_failures(dt);
  for (cluster::NodeId n = 0; n < cluster_.size(); ++n) {
    if (!cluster_.node(n).dyn.alive) continue;  // dead nodes do nothing
    node_gens_[static_cast<std::size_t>(n)].step(dt, cluster_.mutable_node(n));
  }
  traffic_->step(now, dt);
  // Node data flow rate is derived from the traffic state.
  for (cluster::NodeId n = 0; n < cluster_.size(); ++n) {
    cluster_.mutable_node(n).dyn.net_flow_mbps = network_.node_flow_mbps(n);
  }
}

void Scenario::warm_up(double seconds) {
  NLARM_CHECK(seconds >= 0.0) << "negative warm-up";
  const double dt = options_.tick_seconds;
  for (double t = 0.0; t < seconds; t += dt) {
    warmup_clock_ += dt;
    tick(warmup_clock_, dt);
  }
}

const NodeLoadGenerator& Scenario::node_generator(cluster::NodeId id) const {
  NLARM_CHECK(id >= 0 && id < cluster_.size()) << "bad node id " << id;
  return node_gens_[static_cast<std::size_t>(id)];
}

}  // namespace nlarm::workload
