#include "workload/net_flow_gen.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nlarm::workload {

BackgroundTraffic::BackgroundTraffic(const cluster::Cluster& cluster,
                                     net::FlowSet& flows,
                                     net::NetworkModel& network,
                                     TrafficParams params, sim::Rng rng)
    : cluster_(cluster),
      flows_(flows),
      network_(network),
      params_(params),
      rng_(rng) {
  NLARM_CHECK(params_.elephant_interarrival_s > 0.0)
      << "elephant inter-arrival must be positive";
  NLARM_CHECK(params_.server_node >= 0 && params_.server_node < cluster.size())
      << "server node out of range";
  chatter_.reserve(static_cast<std::size_t>(cluster.size()));
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    sim::Rng node_rng = rng_.fork(static_cast<std::uint64_t>(n));
    const double rate =
        node_rng.lognormal(std::log(params_.chatter_rate_median_mbps),
                           params_.chatter_rate_sigma);
    chatter_.push_back(Chatter{
        sim::OnOffModulator(params_.chatter_mean_off_s,
                            params_.chatter_mean_on_s,
                            /*start_on=*/node_rng.chance(0.2), node_rng),
        rate});
  }
}

void BackgroundTraffic::spawn_elephant(double now) {
  cluster::NodeId src;
  cluster::NodeId dst;
  if (rng_.chance(params_.server_affinity)) {
    src = params_.server_node;
    do {
      dst = static_cast<cluster::NodeId>(
          rng_.uniform_int(0, cluster_.size() - 1));
    } while (dst == src);
  } else {
    src = static_cast<cluster::NodeId>(
        rng_.uniform_int(0, cluster_.size() - 1));
    do {
      dst = static_cast<cluster::NodeId>(
          rng_.uniform_int(0, cluster_.size() - 1));
    } while (dst == src);
  }
  const double rate = rng_.lognormal(
      std::log(params_.elephant_rate_median_mbps), params_.elephant_rate_sigma);
  const double duration =
      rng_.exponential(1.0 / params_.elephant_mean_duration_s);
  const net::FlowId id = flows_.add(src, dst, rate);
  active_.push_back(ActiveFlow{id, now + duration});
}

void BackgroundTraffic::step(double now, double dt) {
  NLARM_CHECK(dt > 0.0) << "step needs positive dt";

  // Chatter: integrate the on/off state over the step; the uplink sees the
  // time-averaged rate.
  for (cluster::NodeId n = 0; n < cluster_.size(); ++n) {
    auto& chatter = chatter_[static_cast<std::size_t>(n)];
    sim::Rng scratch = rng_.fork(0x10000u + static_cast<std::uint64_t>(n));
    chatter.modulator.step(dt, scratch);
    network_.set_uplink_background_mbps(
        n, chatter.on_rate_mbps * chatter.modulator.last_on_fraction());
  }

  // Expire finished elephants.
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->expires_at <= now) {
      flows_.remove(it->id);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }

  // New arrivals this step.
  const double arrivals_mean = dt / params_.elephant_interarrival_s;
  const auto arrivals = rng_.poisson(arrivals_mean);
  for (std::uint64_t i = 0; i < arrivals; ++i) {
    spawn_elephant(now);
  }
}

}  // namespace nlarm::workload
