#include "workload/trace.h"

#include <algorithm>

#include "util/check.h"
#include "util/csv.h"
#include "util/strings.h"

namespace nlarm::workload {

double TimeSeries::value_at(double time) const {
  NLARM_CHECK(!times.empty()) << "value_at on empty series '" << name << "'";
  NLARM_CHECK(times.size() == values.size()) << "series misaligned";
  // First sample at or after `time`; step-interpolate with the previous one.
  auto it = std::upper_bound(times.begin(), times.end(), time);
  if (it == times.begin()) return values.front();
  const auto idx = static_cast<std::size_t>(it - times.begin()) - 1;
  return values[idx];
}

void TraceRecorder::add_channel(const std::string& name, Sampler sampler) {
  NLARM_CHECK(static_cast<bool>(sampler)) << "empty sampler";
  NLARM_CHECK(sample_times_.empty())
      << "cannot add channels after sampling started";
  for (const Channel& c : channels_) {
    NLARM_CHECK(c.series.name != name) << "duplicate channel '" << name << "'";
  }
  Channel channel;
  channel.series.name = name;
  channel.sampler = std::move(sampler);
  channels_.push_back(std::move(channel));
}

void TraceRecorder::attach(sim::Simulation& sim, double period) {
  NLARM_CHECK(period > 0.0) << "period must be positive";
  handle_ = sim.schedule_every(period, period,
                               [this, &sim]() { sample(sim.now()); });
}

void TraceRecorder::sample(double now) {
  if (!sample_times_.empty()) {
    NLARM_CHECK(now >= sample_times_.back()) << "samples must be ordered";
  }
  sample_times_.push_back(now);
  for (Channel& c : channels_) {
    c.series.times.push_back(now);
    c.series.values.push_back(c.sampler());
  }
}

const TimeSeries& TraceRecorder::series(std::size_t index) const {
  NLARM_CHECK(index < channels_.size()) << "bad channel index " << index;
  return channels_[index].series;
}

const TimeSeries& TraceRecorder::series(const std::string& name) const {
  for (const Channel& c : channels_) {
    if (c.series.name == name) return c.series;
  }
  NLARM_CHECK(false) << "unknown channel '" << name << "'";
}

void TraceRecorder::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  std::vector<std::string> header{"time"};
  for (const Channel& c : channels_) header.push_back(c.series.name);
  writer.write_header(header);
  for (std::size_t i = 0; i < sample_times_.size(); ++i) {
    std::vector<double> row{sample_times_[i]};
    for (const Channel& c : channels_) row.push_back(c.series.values[i]);
    writer.write_row(row);
  }
}

std::vector<TimeSeries> load_trace_csv(std::istream& in) {
  const util::CsvDocument doc = util::read_csv(in);
  NLARM_CHECK(!doc.header.empty() && doc.header[0] == "time")
      << "trace CSV must start with a 'time' column";
  std::vector<TimeSeries> series(doc.header.size() - 1);
  for (std::size_t c = 1; c < doc.header.size(); ++c) {
    series[c - 1].name = doc.header[c];
  }
  for (const auto& row : doc.rows) {
    NLARM_CHECK(row.size() == doc.header.size()) << "ragged trace CSV row";
    const double t = util::parse_double(row[0]);
    for (std::size_t c = 1; c < row.size(); ++c) {
      series[c - 1].times.push_back(t);
      series[c - 1].values.push_back(util::parse_double(row[c]));
    }
  }
  return series;
}

}  // namespace nlarm::workload
