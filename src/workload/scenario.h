// Scenario: wires the background generators to a cluster and a simulation.
//
// A scenario owns one NodeLoadGenerator per node and one BackgroundTraffic
// generator, advances them on a periodic tick, and keeps the ground-truth
// node dynamics (including the derived node data flow rate) up to date.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "sim/simulation.h"
#include "workload/net_flow_gen.h"
#include "workload/node_load_gen.h"

namespace nlarm::workload {

enum class ScenarioKind {
  kQuiet,      ///< nearly idle cluster; allocations barely matter
  kSharedLab,  ///< the paper's shared departmental cluster (default)
  kHotspot,    ///< a third of the nodes chronically busy, heavy server flows
  kHeavy,      ///< everything loaded; the broker should recommend waiting
};

ScenarioKind parse_scenario_kind(const std::string& name);
std::string to_string(ScenarioKind kind);

struct ScenarioOptions {
  ScenarioKind kind = ScenarioKind::kSharedLab;
  double tick_seconds = 2.0;  ///< generator update period
  std::uint64_t seed = 42;
  /// Mean time between failures per node (0 = nodes never fail). Failed
  /// nodes stop responding to pings (LivehostsD notices), kill the daemons
  /// they host (CentralMonitor migrates them) and reboot after
  /// `mean_node_downtime_s` on average.
  double mean_node_uptime_s = 0.0;
  double mean_node_downtime_s = 300.0;
};

class Scenario {
 public:
  /// The scenario references (does not own) cluster/flows/network; all must
  /// outlive it.
  Scenario(cluster::Cluster& cluster, net::FlowSet& flows,
           net::NetworkModel& network, const ScenarioOptions& options);

  /// Registers the periodic tick with the simulation. Call once.
  void attach(sim::Simulation& sim);

  /// Advances all generators by dt at simulated time `now` (attach() does
  /// this automatically; exposed for tests).
  void tick(double now, double dt);

  /// Runs the generators for `seconds` of warm-up without a Simulation
  /// (ticks synchronously); useful to start experiments from a developed
  /// state instead of the all-zeros initial state.
  void warm_up(double seconds);

  const ScenarioOptions& options() const { return options_; }
  const NodeLoadGenerator& node_generator(cluster::NodeId id) const;

  /// Total node failures injected so far.
  int failures_injected() const { return failures_; }

 private:
  cluster::Cluster& cluster_;
  net::FlowSet& flows_;
  net::NetworkModel& network_;
  ScenarioOptions options_;
  void update_failures(double dt);

  std::vector<NodeLoadGenerator> node_gens_;
  std::unique_ptr<BackgroundTraffic> traffic_;
  sim::Rng failure_rng_;
  std::vector<double> downtime_left_;  ///< >0 while a node is down
  int failures_ = 0;
  sim::PeriodicHandle tick_handle_;
  double warmup_clock_ = 0.0;
  bool attached_ = false;
};

/// Generator tuning for each preset.
struct ScenarioTuning {
  double load_flavor = 1.0;     ///< scales node personalities
  TrafficParams traffic;
};
ScenarioTuning tuning_for(ScenarioKind kind);

}  // namespace nlarm::workload
