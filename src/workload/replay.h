// Trace replay: drive a cluster's node dynamics from a recorded trace
// instead of the stochastic generators.
//
// Record a real (or simulated) cluster day once, then replay it under every
// allocation policy — the deterministic analogue of the paper's "run all
// four approaches in sequence for fair evaluation". Channels follow the
// naming scheme make_replay_recorder() produces: load_<i>, util_<i>,
// mem_<i>, flow_<i> per node i.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "net/network_model.h"
#include "sim/simulation.h"
#include "workload/trace.h"

namespace nlarm::workload {

/// Builds a recorder whose channels capture every node's dynamics in the
/// replayable naming scheme. The cluster must outlive the recorder.
TraceRecorder make_replay_recorder(const cluster::Cluster& cluster);

class TraceReplay {
 public:
  /// The replay references (does not own) cluster and network. `series`
  /// must contain load_<i>, util_<i>, mem_<i>, flow_<i> for every node.
  TraceReplay(cluster::Cluster& cluster, net::NetworkModel& network,
              std::vector<TimeSeries> series);

  /// Applies the traced state at time `now` to the cluster (step
  /// interpolation; clamped to physical ranges). The traced node flow also
  /// drives the network model's uplink background so bandwidth queries stay
  /// consistent with the replayed flows.
  void apply(double now);

  /// Registers a periodic apply() with the simulation.
  void attach(sim::Simulation& sim, double tick_seconds = 2.0);

  /// Duration covered by the trace (last sample time).
  double duration() const { return duration_; }

 private:
  const TimeSeries& channel(const std::string& name) const;

  cluster::Cluster& cluster_;
  net::NetworkModel& network_;
  std::vector<TimeSeries> series_;
  // Per-node channel indices, resolved once.
  struct Channels {
    std::size_t load, util, mem, flow;
  };
  std::vector<Channels> channels_;
  double duration_ = 0.0;
  sim::PeriodicHandle tick_;
};

}  // namespace nlarm::workload
