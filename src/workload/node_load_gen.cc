#include "workload/node_load_gen.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nlarm::workload {

NodeLoadGenerator::NodeLoadGenerator(const cluster::NodeSpec& spec,
                                     const NodePersonality& personality,
                                     sim::Rng rng)
    : personality_(personality),
      rng_(rng),
      load_(personality.base_load_mean, /*reversion_rate=*/1.0 / 300.0,
            personality.load_volatility / std::sqrt(150.0),
            personality.base_load_mean),
      spike_(personality.mean_spike_gap_s, personality.mean_spike_len_s,
             /*start_on=*/false, rng_),
      util_extra_(personality.util_base, 1.0 / 600.0,
                  0.08 / std::sqrt(300.0), personality.util_base),
      mem_frac_(personality.mem_frac_mean, 1.0 / 1800.0,
                0.05 / std::sqrt(900.0), personality.mem_frac_mean),
      users_(personality.user_mean) {
  (void)spec;
}

void NodeLoadGenerator::step(double dt, cluster::Node& node) {
  NLARM_CHECK(dt > 0.0) << "step needs positive dt";

  // Spike episodes shift the OU reversion level while active.
  spike_.step(dt, rng_);
  const double spike_level =
      spike_.last_on_fraction() * personality_.spike_magnitude;
  load_.set_mean(personality_.base_load_mean + spike_level);
  const double cpu_load = std::max(0.0, load_.step(dt, rng_));

  // Utilization couples to the runnable queue (busy cores) plus an
  // interactive component independent of batch load.
  const double cores = static_cast<double>(node.spec.core_count);
  const double batch_util = std::min(1.0, cpu_load / cores);
  const double interactive = std::clamp(util_extra_.step(dt, rng_), 0.0, 1.0);
  const double cpu_util = std::clamp(
      batch_util + interactive * (1.0 - batch_util), 0.0, 1.0);

  const double mem_frac = std::clamp(mem_frac_.step(dt, rng_), 0.02, 0.95);

  // Users: birth–death process. Arrival rate chosen so the stationary mean
  // is personality.user_mean with mean session length 45 min.
  const double session_len = 45.0 * 60.0;
  const double arrival_rate = personality_.user_mean / session_len;
  users_ += static_cast<double>(rng_.poisson(arrival_rate * dt));
  // Each active session ends within dt with prob 1-exp(-dt/len).
  const double p_end = 1.0 - std::exp(-dt / session_len);
  double departures = 0.0;
  for (int i = 0; i < static_cast<int>(users_); ++i) {
    if (rng_.chance(p_end)) departures += 1.0;
  }
  users_ = std::max(0.0, users_ - departures);

  node.dyn.cpu_load = cpu_load;
  node.dyn.cpu_util = cpu_util;
  node.dyn.mem_used_gb = mem_frac * node.spec.total_mem_gb;
  node.dyn.users = static_cast<int>(users_);
  node.clamp_dynamics();
}

NodePersonality draw_personality(sim::Rng& rng, double flavor) {
  NLARM_CHECK(flavor >= 0.0) << "negative scenario flavor";
  NodePersonality p;
  // Lognormal base load: most nodes nearly idle, a few chronically busy —
  // the load heterogeneity the allocator exploits.
  p.base_load_mean = flavor * rng.lognormal(std::log(0.3), 0.9);
  p.load_volatility = rng.uniform(0.15, 0.45);
  p.spike_magnitude = rng.uniform(2.0, 10.0);
  p.mean_spike_gap_s = rng.uniform(1.5, 6.0) * 3600.0 / std::max(flavor, 0.05);
  p.mean_spike_len_s = rng.uniform(10.0, 40.0) * 60.0;
  p.util_base = rng.uniform(0.12, 0.32);
  p.mem_frac_mean = rng.uniform(0.15, 0.40);
  p.user_mean = rng.uniform(0.5, 3.0);
  return p;
}

}  // namespace nlarm::workload
