#include "workload/replay.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/strings.h"

namespace nlarm::workload {

TraceRecorder make_replay_recorder(const cluster::Cluster& cluster) {
  TraceRecorder recorder;
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    const cluster::Node* node = &cluster.node(n);
    recorder.add_channel(util::format("load_%d", n),
                         [node] { return node->dyn.cpu_load; });
    recorder.add_channel(util::format("util_%d", n),
                         [node] { return node->dyn.cpu_util; });
    recorder.add_channel(util::format("mem_%d", n),
                         [node] { return node->dyn.mem_used_gb; });
    recorder.add_channel(util::format("flow_%d", n),
                         [node] { return node->dyn.net_flow_mbps; });
  }
  return recorder;
}

TraceReplay::TraceReplay(cluster::Cluster& cluster,
                         net::NetworkModel& network,
                         std::vector<TimeSeries> series)
    : cluster_(cluster), network_(network), series_(std::move(series)) {
  std::map<std::string, std::size_t> by_name;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    NLARM_CHECK(!series_[i].times.empty())
        << "empty trace channel '" << series_[i].name << "'";
    by_name[series_[i].name] = i;
    duration_ = std::max(duration_, series_[i].times.back());
  }
  auto resolve = [&](const std::string& name) {
    const auto it = by_name.find(name);
    NLARM_CHECK(it != by_name.end())
        << "trace is missing channel '" << name
        << "' (not recorded with make_replay_recorder for this cluster?)";
    return it->second;
  };
  channels_.reserve(static_cast<std::size_t>(cluster.size()));
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    Channels ch;
    ch.load = resolve(util::format("load_%d", n));
    ch.util = resolve(util::format("util_%d", n));
    ch.mem = resolve(util::format("mem_%d", n));
    ch.flow = resolve(util::format("flow_%d", n));
    channels_.push_back(ch);
  }
}

void TraceReplay::apply(double now) {
  for (cluster::NodeId n = 0; n < cluster_.size(); ++n) {
    const Channels& ch = channels_[static_cast<std::size_t>(n)];
    cluster::Node& node = cluster_.mutable_node(n);
    node.dyn.cpu_load = series_[ch.load].value_at(now);
    node.dyn.cpu_util = series_[ch.util].value_at(now);
    node.dyn.mem_used_gb = series_[ch.mem].value_at(now);
    const double flow = std::max(0.0, series_[ch.flow].value_at(now));
    node.dyn.net_flow_mbps = flow;
    node.clamp_dynamics();
    network_.set_uplink_background_mbps(n, flow);
  }
}

void TraceReplay::attach(sim::Simulation& sim, double tick_seconds) {
  NLARM_CHECK(tick_seconds > 0.0) << "tick must be positive";
  apply(sim.now());
  tick_ = sim.schedule_every(tick_seconds, tick_seconds,
                             [this, &sim] { apply(sim.now()); });
}

}  // namespace nlarm::workload
