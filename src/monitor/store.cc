#include "monitor/store.h"

#include <atomic>
#include <limits>

#include "obs/catalog.h"
#include "util/check.h"

namespace nlarm::monitor {

namespace {

// Each store stamps snapshots with (store_id << 32) | local_version, so
// snapshots from different stores in one process can never share a version.
std::uint64_t next_store_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MonitorStore::MonitorStore(int node_count)
    : node_count_(node_count),
      store_id_(next_store_id()),
      delta_tracker_(node_count) {
  NLARM_CHECK(node_count > 0) << "store needs at least one node";
  livehosts_.assign(static_cast<std::size_t>(node_count), false);
  node_records_.resize(static_cast<std::size_t>(node_count));
  net_.latency_us = make_matrix(static_cast<std::size_t>(node_count), -1.0);
  net_.latency_5min_us = make_matrix(static_cast<std::size_t>(node_count), -1.0);
  net_.bandwidth_mbps = make_matrix(static_cast<std::size_t>(node_count), -1.0);
  net_.peak_mbps = make_matrix(static_cast<std::size_t>(node_count), -1.0);
  latency_time_ = make_matrix(static_cast<std::size_t>(node_count), -1.0);
  bandwidth_time_ = make_matrix(static_cast<std::size_t>(node_count), -1.0);
}

void MonitorStore::check_node(cluster::NodeId node) const {
  NLARM_CHECK(node >= 0 && node < node_count_) << "bad node id " << node;
}

void MonitorStore::write_livehosts(double now, std::vector<bool> livehosts) {
  NLARM_CHECK(static_cast<int>(livehosts.size()) == node_count_)
      << "livehosts size mismatch";
  // Only a changed vector invalidates incremental consumers; the periodic
  // LivehostsD rewrite of an unchanged view stays a cheap no-op delta.
  if (livehosts != livehosts_) delta_tracker_.mark_livehosts();
  livehosts_ = std::move(livehosts);
  livehosts_time_ = now;
  ++version_;
}

void MonitorStore::write_node_record(double now, const NodeSnapshot& record) {
  check_node(record.spec.id);
  NodeSnapshot copy = record;
  copy.valid = true;
  copy.sample_time = now;
  node_records_[static_cast<std::size_t>(record.spec.id)] = std::move(copy);
  delta_tracker_.mark_node(record.spec.id);
  ++version_;
}

const NodeSnapshot& MonitorStore::node_record(cluster::NodeId node) const {
  check_node(node);
  return node_records_[static_cast<std::size_t>(node)];
}

void MonitorStore::write_latency(double now, cluster::NodeId u,
                                 cluster::NodeId v, double one_min_us,
                                 double five_min_us) {
  check_node(u);
  check_node(v);
  NLARM_CHECK(u != v) << "latency record for a self-pair";
  const auto uu = static_cast<std::size_t>(u);
  const auto vv = static_cast<std::size_t>(v);
  net_.latency_us[uu][vv] = one_min_us;
  net_.latency_5min_us[uu][vv] = five_min_us;
  latency_time_[uu][vv] = now;
  delta_tracker_.mark_pair(u, v);
  ++version_;
}

void MonitorStore::write_bandwidth(double now, cluster::NodeId u,
                                   cluster::NodeId v, double bandwidth_mbps,
                                   double peak_mbps) {
  check_node(u);
  check_node(v);
  NLARM_CHECK(u != v) << "bandwidth record for a self-pair";
  const auto uu = static_cast<std::size_t>(u);
  const auto vv = static_cast<std::size_t>(v);
  net_.bandwidth_mbps[uu][vv] = bandwidth_mbps;
  net_.peak_mbps[uu][vv] = peak_mbps;
  bandwidth_time_[uu][vv] = now;
  delta_tracker_.mark_pair(u, v);
  ++version_;
}

ClusterSnapshot MonitorStore::assemble(double now) const {
  obs::metrics::monitor_snapshots().inc();
  ClusterSnapshot snap;
  snap.time = now;
  snap.version = snapshot_version();
  snap.livehosts = livehosts_;
  snap.nodes = node_records_;
  snap.net = net_;
  return snap;
}

void MonitorStore::restore(const ClusterSnapshot& snapshot) {
  NLARM_CHECK(static_cast<int>(snapshot.nodes.size()) == node_count_)
      << "snapshot has " << snapshot.nodes.size() << " nodes, store expects "
      << node_count_;
  NLARM_CHECK(snapshot.livehosts.size() == snapshot.nodes.size())
      << "snapshot livehosts/nodes size mismatch";
  livehosts_ = snapshot.livehosts;
  livehosts_time_ = snapshot.time;
  node_records_ = snapshot.nodes;
  net_ = snapshot.net;
  if (net_.latency_us.empty()) {
    net_.latency_us = make_matrix(static_cast<std::size_t>(node_count_), -1.0);
    net_.latency_5min_us = make_matrix(static_cast<std::size_t>(node_count_), -1.0);
    net_.bandwidth_mbps = make_matrix(static_cast<std::size_t>(node_count_), -1.0);
    net_.peak_mbps = make_matrix(static_cast<std::size_t>(node_count_), -1.0);
  }
  // The snapshot carries no per-pair write times; credit measured pairs
  // with the assembly time (the freshest defensible claim) and leave
  // never-measured pairs at the "never written" sentinel.
  const auto n = static_cast<std::size_t>(node_count_);
  latency_time_.assign(n, -1.0);
  bandwidth_time_.assign(n, -1.0);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      if (net_.latency_us[u][v] >= 0.0) {
        latency_time_[u][v] = snapshot.time;
      }
      if (net_.bandwidth_mbps[u][v] >= 0.0) {
        bandwidth_time_[u][v] = snapshot.time;
      }
    }
  }
  delta_tracker_.mark_full();
  ++version_;
}

std::uint64_t MonitorStore::snapshot_version() const {
  return (store_id_ << 32) | (version_ & 0xffffffffull);
}

SnapshotDelta MonitorStore::drain_delta() {
  SnapshotDelta delta = delta_tracker_.drain();
  delta.base_version = (store_id_ << 32) | (delta_base_version_ & 0xffffffffull);
  delta.version = snapshot_version();
  delta_base_version_ = version_;
  obs::metrics::monitor_delta_drains().inc();
  obs::metrics::monitor_delta_dirty_nodes().inc(delta.dirty_nodes.size());
  obs::metrics::monitor_delta_dirty_pairs().inc(delta.dirty_pairs.size());
  return delta;
}

double MonitorStore::node_staleness(double now, cluster::NodeId node) const {
  check_node(node);
  const NodeSnapshot& record = node_records_[static_cast<std::size_t>(node)];
  if (!record.valid) return std::numeric_limits<double>::infinity();
  return now - record.sample_time;
}

double MonitorStore::pair_staleness(double now, cluster::NodeId u,
                                    cluster::NodeId v) const {
  check_node(u);
  check_node(v);
  const auto uu = static_cast<std::size_t>(u);
  const auto vv = static_cast<std::size_t>(v);
  const double last =
      std::max(latency_time_[uu][vv], bandwidth_time_[uu][vv]);
  if (last < 0.0) return std::numeric_limits<double>::infinity();
  return now - last;
}

StalenessView MonitorStore::staleness_view(double now) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  StalenessView view;
  view.now = now;
  const auto n = static_cast<std::size_t>(node_count_);
  view.node.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeSnapshot& record = node_records_[i];
    view.node[i] = record.valid ? now - record.sample_time : kInf;
  }
  view.pair.assign(n, kInf);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) {
        view.pair[u][v] = 0.0;
        continue;
      }
      const double last =
          std::max(latency_time_[u][v], bandwidth_time_[u][v]);
      if (last >= 0.0) view.pair[u][v] = now - last;
    }
  }
  return view;
}

}  // namespace nlarm::monitor
