#include "monitor/snapshot_delta.h"

#include <algorithm>

#include "util/check.h"

namespace nlarm::monitor {

void SnapshotDelta::normalize() {
  std::sort(dirty_nodes.begin(), dirty_nodes.end());
  dirty_nodes.erase(std::unique(dirty_nodes.begin(), dirty_nodes.end()),
                    dirty_nodes.end());
  std::sort(dirty_pairs.begin(), dirty_pairs.end());
  dirty_pairs.erase(std::unique(dirty_pairs.begin(), dirty_pairs.end()),
                    dirty_pairs.end());
}

DeltaTracker::DeltaTracker(int node_count) : node_count_(node_count) {
  NLARM_CHECK(node_count > 0) << "delta tracker needs at least one node";
  node_dirty_.assign(static_cast<std::size_t>(node_count), false);
  pair_dirty_.assign(
      static_cast<std::size_t>(node_count) * static_cast<std::size_t>(node_count),
      false);
}

void DeltaTracker::mark_node(cluster::NodeId node) {
  NLARM_CHECK(node >= 0 && node < node_count_) << "bad node id " << node;
  const auto idx = static_cast<std::size_t>(node);
  if (node_dirty_[idx]) return;
  node_dirty_[idx] = true;
  dirty_nodes_.push_back(node);
}

void DeltaTracker::mark_pair(cluster::NodeId u, cluster::NodeId v) {
  NLARM_CHECK(u >= 0 && u < node_count_ && v >= 0 && v < node_count_)
      << "bad pair (" << u << ", " << v << ")";
  NLARM_CHECK(u != v) << "self pair marked dirty";
  const auto lo = static_cast<std::size_t>(std::min(u, v));
  const auto hi = static_cast<std::size_t>(std::max(u, v));
  const std::size_t key = lo * static_cast<std::size_t>(node_count_) + hi;
  if (pair_dirty_[key]) return;
  pair_dirty_[key] = true;
  dirty_pair_keys_.push_back(key);
}

void DeltaTracker::mark_livehosts() { livehosts_changed_ = true; }

void DeltaTracker::mark_full() { full_ = true; }

SnapshotDelta DeltaTracker::drain() {
  SnapshotDelta delta;
  std::sort(dirty_nodes_.begin(), dirty_nodes_.end());
  delta.dirty_nodes = std::move(dirty_nodes_);
  dirty_nodes_ = {};
  for (cluster::NodeId node : delta.dirty_nodes) {
    node_dirty_[static_cast<std::size_t>(node)] = false;
  }

  std::sort(dirty_pair_keys_.begin(), dirty_pair_keys_.end());
  delta.dirty_pairs.reserve(dirty_pair_keys_.size());
  const auto n = static_cast<std::size_t>(node_count_);
  for (std::size_t key : dirty_pair_keys_) {
    pair_dirty_[key] = false;
    delta.dirty_pairs.emplace_back(static_cast<cluster::NodeId>(key / n),
                                   static_cast<cluster::NodeId>(key % n));
  }
  dirty_pair_keys_.clear();

  delta.livehosts_changed = livehosts_changed_;
  delta.full = full_;
  livehosts_changed_ = false;
  full_ = false;
  return delta;
}

}  // namespace nlarm::monitor
