// Snapshot persistence: serialize a ClusterSnapshot to a text stream and
// load it back.
//
// The real deployment's daemons write their records to NFS; dumping the
// assembled snapshot makes the broker's exact input auditable and enables
// offline what-if allocation (nlarm_broker against a file instead of a live
// monitor). The format is line-oriented with sections:
//
//   #nlarm-snapshot v1
//   time <seconds>
//   node <csv row per node: id,hostname,switch,cores,freq,mem,valid,...>
//   live <id> <0|1>
//   lat  <u> <v> <1min> <5min>
//   bw   <u> <v> <mbps> <peak>
#pragma once

#include <iosfwd>
#include <string>

#include "monitor/snapshot.h"

namespace nlarm::monitor {

/// Writes the snapshot; lossless for every field the allocator reads.
void write_snapshot(std::ostream& out, const ClusterSnapshot& snapshot);

/// Parses a snapshot written by write_snapshot. Throws CheckError on any
/// malformed or missing section.
ClusterSnapshot read_snapshot(std::istream& in);

/// Crash-safe file save: serializes to `<path>.tmp`, verifies the stream
/// flushed cleanly, then renames into place — a torn write never replaces a
/// good snapshot. Returns false (leaving any previous file at `path`
/// untouched) when the write failed or a torn write was armed; throws
/// CheckError only when the tmp file cannot be opened at all.
bool save_snapshot_file(const std::string& path,
                        const ClusterSnapshot& snapshot);
ClusterSnapshot load_snapshot_file(const std::string& path);

/// Fault injection: the next save_snapshot_file() call writes a truncated
/// `<path>.tmp`, skips the rename and returns false — the on-disk
/// aftermath of a writer crashing mid-snapshot. Arms stack (n calls tear
/// the next n saves). Thread-safe.
void arm_torn_snapshot_write();

}  // namespace nlarm::monitor
