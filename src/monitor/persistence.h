// Snapshot persistence: serialize a ClusterSnapshot to disk and load it
// back, in either of two formats.
//
// The real deployment's daemons write their records to NFS; dumping the
// assembled snapshot makes the broker's exact input auditable and enables
// offline what-if allocation (nlarm_broker against a file instead of a live
// monitor). Two formats carry the same state:
//
//  - text (`#nlarm-snapshot v1`): line-oriented and greppable —
//      #nlarm-snapshot v1
//      time <seconds>
//      node <csv row per node: id,hostname,switch,cores,freq,mem,valid,...>
//      live <id> <0|1>
//      lat  <u> <v> <1min> <5min>
//      bw   <u> <v> <mbps> <peak>
//  - binary (`#nlarm-snapb v2`, snapshot_codec.h): fixed-width records and
//    raw FlatMatrix blocks with a trailing CRC32; ~10× smaller and orders
//    of magnitude faster to parse at large V.
//
// load_snapshot_file sniffs the leading magic and accepts either format;
// binary files are ingested through a read-only mmap when the platform has
// one (one bulk copy per matrix from the page cache, no intermediate
// buffer), falling back to a buffered read otherwise.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "monitor/snapshot.h"

namespace nlarm::monitor {

enum class SnapshotFormat {
  kText,    ///< `#nlarm-snapshot v1`
  kBinary,  ///< `#nlarm-snapb v2`
};

/// Parses "text"/"binary" (CheckError otherwise) — the CLI flag spelling.
SnapshotFormat parse_snapshot_format(const std::string& name);

/// Writes the text form; lossless for every field the allocator reads.
void write_snapshot(std::ostream& out, const ClusterSnapshot& snapshot);

/// Parses a snapshot written by write_snapshot. Throws CheckError on any
/// malformed or missing section.
ClusterSnapshot read_snapshot(std::istream& in);

/// Parses either format from an in-memory byte span (text parsing without
/// stream overhead; binary without a copy). Format is sniffed from the
/// leading magic line.
ClusterSnapshot read_snapshot_bytes(std::string_view bytes);

/// Crash-safe file save: serializes to `<path>.tmp` (fsynced), then renames
/// into place and fsyncs the containing directory — a torn write never
/// replaces a good snapshot, and a completed save survives a crash of the
/// host right after it returns. Returns false (leaving any previous file at
/// `path` untouched) when the write failed or a torn write was armed.
bool save_snapshot_file(const std::string& path,
                        const ClusterSnapshot& snapshot,
                        SnapshotFormat format = SnapshotFormat::kText);

/// Loads either format (sniffed, not extension-guessed). Binary files go
/// through mmap when available. Throws CheckError when the file cannot be
/// opened or fails validation (including the binary CRC).
ClusterSnapshot load_snapshot_file(const std::string& path);

/// Same, with the mmap fast path forced off (buffered read) — the knob the
/// ingest benchmarks compare against; behavior is identical.
ClusterSnapshot load_snapshot_file(const std::string& path, bool use_mmap);

/// Fault injection: the next save_snapshot_file() call (either format)
/// writes a truncated `<path>.tmp`, skips the rename and returns false —
/// the on-disk aftermath of a writer crashing mid-snapshot. The delta
/// append-log's frame writer consumes the same arms, tearing its next
/// segment instead. Arms stack (n calls tear the next n writes).
/// Thread-safe.
void arm_torn_snapshot_write();

/// Consumes one armed torn write, if any (persistence-internal; exposed for
/// the delta-log writer so every on-disk artifact shares one chaos hook).
bool consume_torn_snapshot_write();

}  // namespace nlarm::monitor
