// The monitoring daemons (§4 of the paper).
//
// Each daemon is a periodic simulation task "running on" a host node. If
// its host dies (or the daemon is killed by failure injection) it stops
// writing; the CentralMonitor notices and relaunches it elsewhere. Daemons
// sample simulator ground truth through the same noisy probes a real
// psutil/ping/MPI-pingpong stack would provide.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "monitor/sparse.h"
#include "monitor/store.h"
#include "net/network_model.h"
#include "sim/simulation.h"
#include "util/stats.h"

namespace nlarm::monitor {

class Daemon {
 public:
  Daemon(std::string name, const cluster::Cluster& cluster,
         cluster::NodeId host, double period_seconds);
  virtual ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Starts (or restarts) the periodic tick on the simulation.
  void launch(sim::Simulation& sim);

  /// Stops the daemon (failure injection or supervised shutdown).
  void kill();

  /// Chaos hook: a stalled daemon keeps its timer and still counts as
  /// running() — so supervision does NOT relaunch it — but skips its tick
  /// work. This is the "wedged process" fault: alive to the supervisor,
  /// silent to the store.
  void set_stalled(bool stalled) { stalled_ = stalled; }
  bool stalled() const { return stalled_; }

  /// True if launched, not killed, and its host is alive.
  bool running() const;

  const std::string& name() const { return name_; }
  cluster::NodeId host() const { return host_; }
  void set_host(cluster::NodeId host);
  double period() const { return period_; }
  std::uint64_t tick_count() const { return ticks_; }
  int launch_count() const { return launches_; }

 protected:
  virtual void tick(double now) = 0;
  sim::Simulation* simulation() const { return sim_; }
  const cluster::Cluster& cluster() const { return cluster_; }

 private:
  void on_timer();

  std::string name_;
  const cluster::Cluster& cluster_;
  cluster::NodeId host_;
  double period_;
  sim::Simulation* sim_ = nullptr;
  sim::PeriodicHandle timer_;
  bool alive_ = false;
  bool stalled_ = false;
  std::uint64_t ticks_ = 0;
  int launches_ = 0;
};

/// Pings every node and writes the livehosts list (paper: run on a few
/// selected nodes at different frequencies for fault tolerance).
class LivehostsD : public Daemon {
 public:
  LivehostsD(std::string name, const cluster::Cluster& cluster,
             cluster::NodeId host, double period_seconds, MonitorStore& store);

 protected:
  void tick(double now) override;

 private:
  MonitorStore& store_;
};

/// Per-node state sampler with 1/5/15-minute running means.
class NodeStateD : public Daemon {
 public:
  /// `target` is the node whose state this daemon reports; the daemon runs
  /// on that node (host == target), as in the paper.
  NodeStateD(std::string name, const cluster::Cluster& cluster,
             cluster::NodeId target, double period_seconds,
             MonitorStore& store, sim::Rng rng, double sample_noise = 0.02);

  cluster::NodeId target() const { return target_; }

 protected:
  void tick(double now) override;

 private:
  double noisy(double value);

  cluster::NodeId target_;
  MonitorStore& store_;
  sim::Rng rng_;
  double sample_noise_;
  util::LoadAverages load_avg_;
  util::LoadAverages util_avg_;
  util::LoadAverages flow_avg_;
  util::LoadAverages mem_avail_avg_;
};

/// Round-robin tournament schedule: n-1 rounds (n even; n rounds with a bye
/// for odd n), each pairing every node with exactly one partner. This is the
/// paper's "n/2 distinct pairs communicate at a time" schedule.
std::vector<std::vector<std::pair<cluster::NodeId, cluster::NodeId>>>
tournament_rounds(int node_count);

/// Measures pairwise P2P metrics in tournament rounds. Base class for
/// LatencyD and BandwidthD.
class PairProbeDaemon : public Daemon {
 public:
  PairProbeDaemon(std::string name, const cluster::Cluster& cluster,
                  cluster::NodeId host, double period_seconds,
                  double round_spacing_seconds,
                  const net::NetworkModel& network, MonitorStore& store,
                  sim::Rng rng);

  /// Switches the daemon to sparse probing: each tick runs ONE tournament
  /// round — the paper's n/2 disjoint pairs, O(V) traffic — advancing a
  /// rotating cursor instead of scheduling every round, feeds each real
  /// measurement into a per-link topology estimator, and then writes
  /// reconstructed values for pairs whose stored record has aged past
  /// `reconstruct_min_age_s` (so store churn also stays O(V) per tick in
  /// steady state). Call before launch().
  void enable_sparse(const cluster::Topology& topology,
                     double reconstruct_min_age_s);
  bool sparse() const { return estimator_ != nullptr; }

  long pairs_measured() const { return pairs_measured_; }
  long pairs_reconstructed() const { return pairs_reconstructed_; }

 protected:
  void tick(double now) override;

  /// Measures one pair (both nodes alive) and writes results to the store.
  virtual void probe_pair(double now, cluster::NodeId u,
                          cluster::NodeId v) = 0;

  /// Sparse mode: writes a reconstructed record for one stale unmeasured
  /// pair. Returns false when the estimator cannot cover it yet.
  virtual bool reconstruct_pair(double now, cluster::NodeId u,
                                cluster::NodeId v);

  const net::NetworkModel& network() const { return network_; }
  MonitorStore& store() { return store_; }
  sim::Rng& rng() { return rng_; }
  SparseNetworkEstimator* estimator() { return estimator_.get(); }

 private:
  void run_round(std::size_t round_index);
  void reconstruct_stale(double now);

  double round_spacing_;
  const net::NetworkModel& network_;
  MonitorStore& store_;
  sim::Rng rng_;
  std::vector<std::vector<std::pair<cluster::NodeId, cluster::NodeId>>>
      rounds_;
  std::unique_ptr<SparseNetworkEstimator> estimator_;
  double reconstruct_min_age_s_ = 0.0;
  std::size_t sparse_cursor_ = 0;
  long pairs_measured_ = 0;
  long pairs_reconstructed_ = 0;
};

/// P2P latency daemon: 1-minute period; maintains last-1min and last-5min
/// running means per pair.
class LatencyD : public PairProbeDaemon {
 public:
  LatencyD(std::string name, const cluster::Cluster& cluster,
           cluster::NodeId host, double period_seconds,
           double round_spacing_seconds, const net::NetworkModel& network,
           MonitorStore& store, sim::Rng rng);

 protected:
  void probe_pair(double now, cluster::NodeId u, cluster::NodeId v) override;
  bool reconstruct_pair(double now, cluster::NodeId u,
                        cluster::NodeId v) override;

 private:
  util::WindowedMean& window(cluster::NodeId u, cluster::NodeId v,
                             bool five_min);

  // Per unordered pair: [u][v] with u < v.
  std::vector<std::vector<util::WindowedMean>> one_min_;
  std::vector<std::vector<util::WindowedMean>> five_min_;
  /// Last 5-minute mean written from a REAL probe, per unordered pair (< 0
  /// = none yet). Sparse reconstructions re-write this value so the
  /// degradation layer's fallback stays anchored to measurements.
  std::vector<std::vector<double>> last_real_five_min_;
};

/// P2P effective-bandwidth daemon: 5-minute period; writes instantaneous
/// measured bandwidth (the paper uses the instantaneous value, §4).
class BandwidthD : public PairProbeDaemon {
 public:
  BandwidthD(std::string name, const cluster::Cluster& cluster,
             cluster::NodeId host, double period_seconds,
             double round_spacing_seconds, const net::NetworkModel& network,
             MonitorStore& store, sim::Rng rng);

 protected:
  void probe_pair(double now, cluster::NodeId u, cluster::NodeId v) override;
  bool reconstruct_pair(double now, cluster::NodeId u,
                        cluster::NodeId v) override;

 private:
  /// Last peak written from a real probe, per unordered pair (< 0 = none).
  std::vector<std::vector<double>> last_real_peak_;
};

}  // namespace nlarm::monitor
