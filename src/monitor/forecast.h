// Time-series forecasting for monitored metrics, after the Network Weather
// Service (Wolski et al., cited in §2): maintain several cheap predictors
// per series, track each one's error, and forecast with whichever predictor
// has been most accurate recently. The allocator can consume forecasts
// instead of instantaneous values (AllocationRequest-level opt-in is wired
// through ForecastingStore below).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "monitor/store.h"

namespace nlarm::monitor {

/// One predictor strategy over a scalar series.
class Predictor {
 public:
  virtual ~Predictor() = default;
  virtual std::string name() const = 0;
  /// Incorporates an observation.
  virtual void observe(double time, double value) = 0;
  /// Predicts the next observation. Undefined before the first observe().
  virtual double predict() const = 0;
};

/// Predicts the last observed value (NWS's LAST).
class LastValuePredictor : public Predictor {
 public:
  std::string name() const override { return "last"; }
  void observe(double time, double value) override;
  double predict() const override { return last_; }

 private:
  double last_ = 0.0;
};

/// Mean of the most recent `window` observations (NWS's sliding mean).
class SlidingMeanPredictor : public Predictor {
 public:
  explicit SlidingMeanPredictor(std::size_t window);
  std::string name() const override { return "sliding_mean"; }
  void observe(double time, double value) override;
  double predict() const override;

 private:
  std::size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

/// Exponentially-weighted moving average.
class EwmaPredictor : public Predictor {
 public:
  explicit EwmaPredictor(double alpha);
  std::string name() const override { return "ewma"; }
  void observe(double time, double value) override;
  double predict() const override { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// First-order autoregressive: x̂ = mean + φ·(x − mean), with φ and mean
/// estimated online.
class Ar1Predictor : public Predictor {
 public:
  std::string name() const override { return "ar1"; }
  void observe(double time, double value) override;
  double predict() const override;

 private:
  double mean_ = 0.0;
  double cov_ = 0.0;   // E[(x_t−μ)(x_{t−1}−μ)] estimate
  double var_ = 0.0;   // E[(x−μ)²] estimate
  double last_ = 0.0;
  std::size_t count_ = 0;
};

/// NWS-style adaptive forecaster: runs all predictors in parallel, scores
/// each by mean absolute error over its recent forecasts, and answers with
/// the current best.
class AdaptiveForecaster {
 public:
  /// Builds the standard predictor bank (last, sliding mean, EWMA, AR(1)).
  AdaptiveForecaster();

  void observe(double time, double value);

  /// Forecast of the next value; falls back to 0 before any observation.
  double forecast() const;

  /// Name of the currently-best predictor (for diagnostics).
  std::string best_predictor() const;

  /// Mean absolute error of the winning predictor so far.
  double best_error() const;

  std::size_t observations() const { return observations_; }

 private:
  struct Entry {
    std::unique_ptr<Predictor> predictor;
    double abs_error_sum = 0.0;
    std::size_t scored = 0;
    bool primed = false;
    double pending_prediction = 0.0;
  };
  std::size_t best_index() const;

  std::vector<Entry> entries_;
  std::size_t observations_ = 0;
};

/// Wraps a MonitorStore with per-node-metric forecasters and produces
/// snapshots whose *instantaneous* fields are replaced by forecasts (the
/// running means stay as recorded). feed() must be called periodically —
/// ResourceMonitor-independent so tests can drive it directly.
class ForecastingStore {
 public:
  explicit ForecastingStore(const MonitorStore& store);

  /// Ingests the store's current records into the forecasters.
  void feed(double now);

  /// Like store.assemble(), but with forecasted cpu_load / cpu_util /
  /// net_flow per node (1-minute means are also re-centred on the
  /// forecast so SAW sees the predicted state).
  ClusterSnapshot assemble_forecast(double now) const;

  const AdaptiveForecaster& load_forecaster(cluster::NodeId node) const;

 private:
  const MonitorStore& store_;
  std::vector<AdaptiveForecaster> load_;
  std::vector<AdaptiveForecaster> util_;
  std::vector<AdaptiveForecaster> flow_;
};

}  // namespace nlarm::monitor
