#include "monitor/persistence.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "monitor/snapshot_codec.h"
#include "obs/catalog.h"
#include "util/binio.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/strings.h"

namespace nlarm::monitor {

namespace {
constexpr const char* kHeader = "#nlarm-snapshot v1";

std::atomic<int> g_torn_writes_armed{0};

/// Observes one load's wall-clock parse time.
class ParseTimer {
 public:
  ParseTimer() : start_(std::chrono::steady_clock::now()) {}
  ~ParseTimer() {
    obs::metrics::snapshot_parse_seconds().observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

void arm_torn_snapshot_write() {
  g_torn_writes_armed.fetch_add(1, std::memory_order_relaxed);
}

bool consume_torn_snapshot_write() {
  int armed = g_torn_writes_armed.load(std::memory_order_relaxed);
  while (armed > 0) {
    if (g_torn_writes_armed.compare_exchange_weak(
            armed, armed - 1, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

SnapshotFormat parse_snapshot_format(const std::string& name) {
  const std::string lowered = util::to_lower(util::trim(name));
  if (lowered == "text") return SnapshotFormat::kText;
  if (lowered == "binary") return SnapshotFormat::kBinary;
  NLARM_CHECK(false) << "unknown snapshot format '" << name
                     << "' (expected text or binary)";
}

void write_snapshot(std::ostream& out, const ClusterSnapshot& snapshot) {
  // Rows are assembled in a reusable buffer and handed to the stream in
  // ~64 KiB chunks: per-field operator<< calls dominated large-V saves.
  std::string buf;
  buf.reserve(1 << 16);
  const auto maybe_flush = [&out, &buf] {
    if (buf.size() >= (1 << 16) - 512) {
      out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  };
  const auto add = [&buf](double v) { util::append_csv_double(buf, v); };

  buf += kHeader;
  buf += "\ntime ";
  add(snapshot.time);
  buf += '\n';
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    const NodeSnapshot& n = snapshot.nodes[i];
    NLARM_CHECK(n.spec.hostname.find(',') == std::string::npos)
        << "hostname with comma cannot be serialized: " << n.spec.hostname;
    buf += "node ";
    buf += std::to_string(n.spec.id);
    buf += ',';
    buf += n.spec.hostname;
    buf += ',';
    buf += std::to_string(n.spec.switch_id);
    buf += ',';
    buf += std::to_string(n.spec.core_count);
    buf += ',';
    add(n.spec.cpu_freq_ghz);
    buf += ',';
    add(n.spec.total_mem_gb);
    buf += ',';
    buf += n.valid ? '1' : '0';
    buf += ',';
    add(n.sample_time);
    buf += ',';
    add(n.cpu_load);
    buf += ',';
    add(n.cpu_util);
    buf += ',';
    add(n.mem_used_gb);
    buf += ',';
    add(n.net_flow_mbps);
    buf += ',';
    buf += std::to_string(n.users);
    for (const RunningMeans* means :
         {&n.cpu_load_avg, &n.cpu_util_avg, &n.net_flow_avg,
          &n.mem_avail_avg}) {
      buf += ',';
      add(means->one_min);
      buf += ',';
      add(means->five_min);
      buf += ',';
      add(means->fifteen_min);
    }
    buf += '\n';
    maybe_flush();
  }
  for (std::size_t i = 0; i < snapshot.livehosts.size(); ++i) {
    buf += "live ";
    buf += std::to_string(i);
    buf += snapshot.livehosts[i] ? " 1\n" : " 0\n";
    maybe_flush();
  }
  const int n = snapshot.net.size();
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      const auto uu = static_cast<std::size_t>(u);
      const auto vv = static_cast<std::size_t>(v);
      if (snapshot.net.latency_us[uu][vv] >= 0.0) {
        buf += "lat ";
        buf += std::to_string(u);
        buf += ' ';
        buf += std::to_string(v);
        buf += ' ';
        add(snapshot.net.latency_us[uu][vv]);
        buf += ' ';
        add(snapshot.net.latency_5min_us[uu][vv]);
        buf += '\n';
      }
      if (snapshot.net.bandwidth_mbps[uu][vv] >= 0.0) {
        buf += "bw ";
        buf += std::to_string(u);
        buf += ' ';
        buf += std::to_string(v);
        buf += ' ';
        add(snapshot.net.bandwidth_mbps[uu][vv]);
        buf += ' ';
        add(snapshot.net.peak_mbps[uu][vv]);
        buf += '\n';
      }
      maybe_flush();
    }
  }
  if (!buf.empty()) {
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
}

namespace {

ClusterSnapshot read_snapshot_text(std::string_view bytes) {
  // Fields are parsed as views straight out of the file bytes; nothing is
  // copied until it lands in the snapshot.
  std::size_t pos = 0;
  const auto next_line = [&bytes, &pos](std::string_view& line) {
    if (pos >= bytes.size()) return false;
    const std::size_t eol = bytes.find('\n', pos);
    if (eol == std::string_view::npos) {
      line = bytes.substr(pos);
      pos = bytes.size();
    } else {
      line = bytes.substr(pos, eol - pos);
      pos = eol + 1;
    }
    return true;
  };

  std::string_view line;
  NLARM_CHECK(next_line(line) && util::trim_view(line) == kHeader)
      << "not an nlarm snapshot (missing '" << kHeader << "')";

  ClusterSnapshot snapshot;
  std::vector<std::pair<int, bool>> livehosts;
  struct PairRecord {
    int u, v;
    double a, b;
  };
  std::vector<PairRecord> latencies;
  std::vector<PairRecord> bandwidths;
  bool have_time = false;

  while (next_line(line)) {
    const std::string_view trimmed = util::trim_view(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto space = trimmed.find(' ');
    NLARM_CHECK(space != std::string_view::npos)
        << "malformed line: " << std::string(trimmed);
    const std::string_view tag = trimmed.substr(0, space);
    const std::string_view body = trimmed.substr(space + 1);
    if (tag == "time") {
      snapshot.time = util::parse_double(body);
      have_time = true;
    } else if (tag == "node") {
      const auto fields = util::split_views(body, ',');
      NLARM_CHECK(fields.size() == 25)
          << "node record has " << fields.size() << " fields, expected 25";
      NodeSnapshot n;
      n.spec.id = static_cast<cluster::NodeId>(util::parse_long(fields[0]));
      n.spec.hostname = std::string(fields[1]);
      n.spec.switch_id =
          static_cast<cluster::SwitchId>(util::parse_long(fields[2]));
      n.spec.core_count = static_cast<int>(util::parse_long(fields[3]));
      n.spec.cpu_freq_ghz = util::parse_double(fields[4]);
      n.spec.total_mem_gb = util::parse_double(fields[5]);
      n.valid = util::parse_long(fields[6]) != 0;
      n.sample_time = util::parse_double(fields[7]);
      n.cpu_load = util::parse_double(fields[8]);
      n.cpu_util = util::parse_double(fields[9]);
      n.mem_used_gb = util::parse_double(fields[10]);
      n.net_flow_mbps = util::parse_double(fields[11]);
      n.users = static_cast<int>(util::parse_long(fields[12]));
      n.cpu_load_avg = {util::parse_double(fields[13]),
                        util::parse_double(fields[14]),
                        util::parse_double(fields[15])};
      n.cpu_util_avg = {util::parse_double(fields[16]),
                        util::parse_double(fields[17]),
                        util::parse_double(fields[18])};
      n.net_flow_avg = {util::parse_double(fields[19]),
                        util::parse_double(fields[20]),
                        util::parse_double(fields[21])};
      n.mem_avail_avg = {util::parse_double(fields[22]),
                         util::parse_double(fields[23]),
                         util::parse_double(fields[24])};
      NLARM_CHECK(n.spec.id == static_cast<cluster::NodeId>(
                                   snapshot.nodes.size()))
          << "node records must be dense and ordered";
      snapshot.nodes.push_back(std::move(n));
    } else if (tag == "live") {
      const auto fields = util::split_views(body, ' ');
      NLARM_CHECK(fields.size() == 2) << "malformed live line";
      livehosts.emplace_back(static_cast<int>(util::parse_long(fields[0])),
                             util::parse_long(fields[1]) != 0);
    } else if (tag == "lat" || tag == "bw") {
      const auto fields = util::split_views(body, ' ');
      NLARM_CHECK(fields.size() == 4)
          << "malformed " << std::string(tag) << " line";
      PairRecord record{static_cast<int>(util::parse_long(fields[0])),
                        static_cast<int>(util::parse_long(fields[1])),
                        util::parse_double(fields[2]),
                        util::parse_double(fields[3])};
      (tag == "lat" ? latencies : bandwidths).push_back(record);
    } else {
      NLARM_CHECK(false) << "unknown snapshot tag '" << std::string(tag)
                         << "'";
    }
  }

  NLARM_CHECK(have_time) << "snapshot missing 'time' line";
  NLARM_CHECK(!snapshot.nodes.empty()) << "snapshot has no nodes";
  const int n = static_cast<int>(snapshot.nodes.size());
  snapshot.livehosts.assign(static_cast<std::size_t>(n), false);
  for (const auto& [id, alive] : livehosts) {
    NLARM_CHECK(id >= 0 && id < n) << "live record out of range";
    snapshot.livehosts[static_cast<std::size_t>(id)] = alive;
  }
  snapshot.net.latency_us = make_matrix(static_cast<std::size_t>(n), -1.0);
  snapshot.net.latency_5min_us = make_matrix(static_cast<std::size_t>(n), -1.0);
  snapshot.net.bandwidth_mbps = make_matrix(static_cast<std::size_t>(n), -1.0);
  snapshot.net.peak_mbps = make_matrix(static_cast<std::size_t>(n), -1.0);
  for (const PairRecord& record : latencies) {
    NLARM_CHECK(record.u >= 0 && record.u < n && record.v >= 0 &&
                record.v < n && record.u != record.v)
        << "lat record out of range";
    snapshot.net.latency_us[static_cast<std::size_t>(record.u)]
                           [static_cast<std::size_t>(record.v)] = record.a;
    snapshot.net
        .latency_5min_us[static_cast<std::size_t>(record.u)]
                        [static_cast<std::size_t>(record.v)] = record.b;
  }
  for (const PairRecord& record : bandwidths) {
    NLARM_CHECK(record.u >= 0 && record.u < n && record.v >= 0 &&
                record.v < n && record.u != record.v)
        << "bw record out of range";
    snapshot.net.bandwidth_mbps[static_cast<std::size_t>(record.u)]
                               [static_cast<std::size_t>(record.v)] =
        record.a;
    snapshot.net.peak_mbps[static_cast<std::size_t>(record.u)]
                          [static_cast<std::size_t>(record.v)] = record.b;
  }
  return snapshot;
}

}  // namespace

ClusterSnapshot read_snapshot(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_snapshot_bytes(buffer.str());
}

ClusterSnapshot read_snapshot_bytes(std::string_view bytes) {
  ParseTimer timer;
  if (is_binary_snapshot(bytes)) {
    return decode_snapshot_binary(bytes);
  }
  return read_snapshot_text(bytes);
}

bool save_snapshot_file(const std::string& path,
                        const ClusterSnapshot& snapshot,
                        SnapshotFormat format) {
  // Serialize fully in memory first: any NLARM_CHECK inside the serializer
  // fires before a byte touches the filesystem.
  std::string bytes;
  if (format == SnapshotFormat::kBinary) {
    encode_snapshot_binary(snapshot, bytes);
  } else {
    std::ostringstream buffer;
    write_snapshot(buffer, snapshot);
    bytes = buffer.str();
  }

  const std::string tmp = path + ".tmp";
  const bool torn = consume_torn_snapshot_write();
  if (torn) {
    // The writer "crashed" mid-write: leave a truncated tmp file behind and
    // never rename. Whatever good snapshot sits at `path` survives.
    bytes.resize(bytes.size() / 2);
    obs::metrics::chaos_torn_snapshot_writes().inc();
  }

  const bool wrote_ok = util::write_file_durable(tmp, bytes);
  if (torn || !wrote_ok) {
    obs::metrics::persistence_snapshot_save_failures().inc();
    NLARM_WARN << "snapshot save to " << path
               << (torn ? " torn by fault injection" : " failed to flush")
               << "; previous file left untouched";
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    obs::metrics::persistence_snapshot_save_failures().inc();
    NLARM_WARN << "snapshot rename " << tmp << " -> " << path << " failed";
    return false;
  }
  // The rename itself lives in the directory's data: without this fsync a
  // crash after return could roll the directory back to the old file.
  if (!util::fsync_parent_dir(path)) {
    NLARM_WARN << "fsync of directory containing " << path << " failed";
  }
  obs::metrics::persistence_snapshot_saves().inc();
  obs::metrics::snapshot_bytes_written().inc(bytes.size());
  return true;
}

ClusterSnapshot load_snapshot_file(const std::string& path) {
  return load_snapshot_file(path, /*use_mmap=*/true);
}

ClusterSnapshot load_snapshot_file(const std::string& path, bool use_mmap) {
  if (use_mmap) {
    util::MappedFile mapped = util::MappedFile::open(path);
    if (mapped.valid()) {
      return read_snapshot_bytes(mapped.view());
    }
    // Fall through: empty file, mmap unsupported, or open raced — the
    // buffered read below produces the authoritative error if any.
  }
  std::string bytes;
  NLARM_CHECK(util::read_file(path, bytes))
      << "cannot open '" << path << "' for reading";
  return read_snapshot_bytes(bytes);
}

}  // namespace nlarm::monitor
