#include "monitor/persistence.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "obs/catalog.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/strings.h"

namespace nlarm::monitor {

namespace {
constexpr const char* kHeader = "#nlarm-snapshot v1";

std::string fmt(double v) { return util::csv_format(v); }

std::atomic<int> g_torn_writes_armed{0};

/// Consumes one armed torn write, if any.
bool consume_torn_write() {
  int armed = g_torn_writes_armed.load(std::memory_order_relaxed);
  while (armed > 0) {
    if (g_torn_writes_armed.compare_exchange_weak(
            armed, armed - 1, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}
}  // namespace

void arm_torn_snapshot_write() {
  g_torn_writes_armed.fetch_add(1, std::memory_order_relaxed);
}

void write_snapshot(std::ostream& out, const ClusterSnapshot& snapshot) {
  out << kHeader << "\n";
  out << "time " << fmt(snapshot.time) << "\n";
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    const NodeSnapshot& n = snapshot.nodes[i];
    NLARM_CHECK(n.spec.hostname.find(',') == std::string::npos)
        << "hostname with comma cannot be serialized: " << n.spec.hostname;
    out << "node " << n.spec.id << ',' << n.spec.hostname
        << ',' << n.spec.switch_id << ',' << n.spec.core_count << ','
        << fmt(n.spec.cpu_freq_ghz) << ',' << fmt(n.spec.total_mem_gb) << ','
        << (n.valid ? 1 : 0) << ',' << fmt(n.sample_time) << ','
        << fmt(n.cpu_load) << ',' << fmt(n.cpu_util) << ','
        << fmt(n.mem_used_gb) << ',' << fmt(n.net_flow_mbps) << ','
        << n.users << ',' << fmt(n.cpu_load_avg.one_min) << ','
        << fmt(n.cpu_load_avg.five_min) << ','
        << fmt(n.cpu_load_avg.fifteen_min) << ','
        << fmt(n.cpu_util_avg.one_min) << ',' << fmt(n.cpu_util_avg.five_min)
        << ',' << fmt(n.cpu_util_avg.fifteen_min) << ','
        << fmt(n.net_flow_avg.one_min) << ',' << fmt(n.net_flow_avg.five_min)
        << ',' << fmt(n.net_flow_avg.fifteen_min) << ','
        << fmt(n.mem_avail_avg.one_min) << ','
        << fmt(n.mem_avail_avg.five_min) << ','
        << fmt(n.mem_avail_avg.fifteen_min) << "\n";
  }
  for (std::size_t i = 0; i < snapshot.livehosts.size(); ++i) {
    out << "live " << i << ' ' << (snapshot.livehosts[i] ? 1 : 0) << "\n";
  }
  const int n = snapshot.net.size();
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      const auto uu = static_cast<std::size_t>(u);
      const auto vv = static_cast<std::size_t>(v);
      if (snapshot.net.latency_us[uu][vv] >= 0.0) {
        out << "lat " << u << ' ' << v << ' '
            << fmt(snapshot.net.latency_us[uu][vv]) << ' '
            << fmt(snapshot.net.latency_5min_us[uu][vv]) << "\n";
      }
      if (snapshot.net.bandwidth_mbps[uu][vv] >= 0.0) {
        out << "bw " << u << ' ' << v << ' '
            << fmt(snapshot.net.bandwidth_mbps[uu][vv]) << ' '
            << fmt(snapshot.net.peak_mbps[uu][vv]) << "\n";
      }
    }
  }
}

ClusterSnapshot read_snapshot(std::istream& in) {
  std::string line;
  NLARM_CHECK(std::getline(in, line) && util::trim(line) == kHeader)
      << "not an nlarm snapshot (missing '" << kHeader << "')";

  ClusterSnapshot snapshot;
  std::vector<std::pair<int, bool>> livehosts;
  struct PairRecord {
    int u, v;
    double a, b;
  };
  std::vector<PairRecord> latencies;
  std::vector<PairRecord> bandwidths;
  bool have_time = false;

  while (std::getline(in, line)) {
    const std::string trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto space = trimmed.find(' ');
    NLARM_CHECK(space != std::string::npos) << "malformed line: " << trimmed;
    const std::string tag = trimmed.substr(0, space);
    const std::string body = trimmed.substr(space + 1);
    if (tag == "time") {
      snapshot.time = util::parse_double(body);
      have_time = true;
    } else if (tag == "node") {
      const auto fields = util::split(body, ',');
      NLARM_CHECK(fields.size() == 25)
          << "node record has " << fields.size() << " fields, expected 25";
      NodeSnapshot n;
      n.spec.id = static_cast<cluster::NodeId>(util::parse_long(fields[0]));
      n.spec.hostname = fields[1];
      n.spec.switch_id =
          static_cast<cluster::SwitchId>(util::parse_long(fields[2]));
      n.spec.core_count = static_cast<int>(util::parse_long(fields[3]));
      n.spec.cpu_freq_ghz = util::parse_double(fields[4]);
      n.spec.total_mem_gb = util::parse_double(fields[5]);
      n.valid = util::parse_long(fields[6]) != 0;
      n.sample_time = util::parse_double(fields[7]);
      n.cpu_load = util::parse_double(fields[8]);
      n.cpu_util = util::parse_double(fields[9]);
      n.mem_used_gb = util::parse_double(fields[10]);
      n.net_flow_mbps = util::parse_double(fields[11]);
      n.users = static_cast<int>(util::parse_long(fields[12]));
      n.cpu_load_avg = {util::parse_double(fields[13]),
                        util::parse_double(fields[14]),
                        util::parse_double(fields[15])};
      n.cpu_util_avg = {util::parse_double(fields[16]),
                        util::parse_double(fields[17]),
                        util::parse_double(fields[18])};
      n.net_flow_avg = {util::parse_double(fields[19]),
                        util::parse_double(fields[20]),
                        util::parse_double(fields[21])};
      n.mem_avail_avg = {util::parse_double(fields[22]),
                         util::parse_double(fields[23]),
                         util::parse_double(fields[24])};
      NLARM_CHECK(n.spec.id == static_cast<cluster::NodeId>(
                                   snapshot.nodes.size()))
          << "node records must be dense and ordered";
      snapshot.nodes.push_back(std::move(n));
    } else if (tag == "live") {
      const auto fields = util::split(body, ' ');
      NLARM_CHECK(fields.size() == 2) << "malformed live line";
      livehosts.emplace_back(static_cast<int>(util::parse_long(fields[0])),
                             util::parse_long(fields[1]) != 0);
    } else if (tag == "lat" || tag == "bw") {
      const auto fields = util::split(body, ' ');
      NLARM_CHECK(fields.size() == 4) << "malformed " << tag << " line";
      PairRecord record{static_cast<int>(util::parse_long(fields[0])),
                        static_cast<int>(util::parse_long(fields[1])),
                        util::parse_double(fields[2]),
                        util::parse_double(fields[3])};
      (tag == "lat" ? latencies : bandwidths).push_back(record);
    } else {
      NLARM_CHECK(false) << "unknown snapshot tag '" << tag << "'";
    }
  }

  NLARM_CHECK(have_time) << "snapshot missing 'time' line";
  NLARM_CHECK(!snapshot.nodes.empty()) << "snapshot has no nodes";
  const int n = static_cast<int>(snapshot.nodes.size());
  snapshot.livehosts.assign(static_cast<std::size_t>(n), false);
  for (const auto& [id, alive] : livehosts) {
    NLARM_CHECK(id >= 0 && id < n) << "live record out of range";
    snapshot.livehosts[static_cast<std::size_t>(id)] = alive;
  }
  snapshot.net.latency_us = make_matrix(n, -1.0);
  snapshot.net.latency_5min_us = make_matrix(n, -1.0);
  snapshot.net.bandwidth_mbps = make_matrix(n, -1.0);
  snapshot.net.peak_mbps = make_matrix(n, -1.0);
  for (const PairRecord& record : latencies) {
    NLARM_CHECK(record.u >= 0 && record.u < n && record.v >= 0 &&
                record.v < n && record.u != record.v)
        << "lat record out of range";
    snapshot.net.latency_us[static_cast<std::size_t>(record.u)]
                           [static_cast<std::size_t>(record.v)] = record.a;
    snapshot.net
        .latency_5min_us[static_cast<std::size_t>(record.u)]
                        [static_cast<std::size_t>(record.v)] = record.b;
  }
  for (const PairRecord& record : bandwidths) {
    NLARM_CHECK(record.u >= 0 && record.u < n && record.v >= 0 &&
                record.v < n && record.u != record.v)
        << "bw record out of range";
    snapshot.net.bandwidth_mbps[static_cast<std::size_t>(record.u)]
                               [static_cast<std::size_t>(record.v)] =
        record.a;
    snapshot.net.peak_mbps[static_cast<std::size_t>(record.u)]
                          [static_cast<std::size_t>(record.v)] = record.b;
  }
  return snapshot;
}

bool save_snapshot_file(const std::string& path,
                        const ClusterSnapshot& snapshot) {
  // Serialize fully in memory first: any NLARM_CHECK inside write_snapshot
  // fires before a byte touches the filesystem.
  std::ostringstream buffer;
  write_snapshot(buffer, snapshot);
  std::string text = buffer.str();

  const std::string tmp = path + ".tmp";
  const bool torn = consume_torn_write();
  if (torn) {
    // The writer "crashed" mid-write: leave a truncated tmp file behind and
    // never rename. Whatever good snapshot sits at `path` survives.
    text.resize(text.size() / 2);
    obs::metrics::chaos_torn_snapshot_writes().inc();
  }

  std::ofstream out(tmp, std::ios::trunc);
  NLARM_CHECK(out.is_open()) << "cannot open '" << tmp << "' for writing";
  out << text;
  out.flush();
  const bool wrote_ok = out.good();
  out.close();

  if (torn || !wrote_ok) {
    obs::metrics::persistence_snapshot_save_failures().inc();
    NLARM_WARN << "snapshot save to " << path
               << (torn ? " torn by fault injection" : " failed to flush")
               << "; previous file left untouched";
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    obs::metrics::persistence_snapshot_save_failures().inc();
    NLARM_WARN << "snapshot rename " << tmp << " -> " << path << " failed";
    return false;
  }
  obs::metrics::persistence_snapshot_saves().inc();
  return true;
}

ClusterSnapshot load_snapshot_file(const std::string& path) {
  std::ifstream in(path);
  NLARM_CHECK(in.is_open()) << "cannot open '" << path << "' for reading";
  return read_snapshot(in);
}

}  // namespace nlarm::monitor
