#include "monitor/snapshot_codec.h"

#include <cstring>

#include "util/binio.h"
#include "util/check.h"

namespace nlarm::monitor {

namespace {

constexpr std::uint32_t kFlagHasPairwise = 1u << 0;
constexpr std::uint32_t kFlagSparsePairwise = 1u << 1;

/// Per-pair sparse record: u32 u · u32 v · f64 lat · f64 lat5 · f64 bw ·
/// f64 peak.
constexpr std::size_t kSparseRecordBytes = 2 * 4 + 4 * sizeof(double);

std::uint64_t f64_bits(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

/// A pairwise section is sparse-eligible when it can be reconstructed from
/// the measured pairs alone: every unmeasured off-diagonal cell holds the
/// exact -1.0 sentinel, diagonals are exactly 0.0, and all four matrices are
/// bit-for-bit symmetric (bit comparison, so symmetric NaN payloads stay
/// eligible and round-trip exactly while asymmetric cells disqualify). On
/// success `measured` is the number of unordered pairs with at least one
/// non-sentinel value.
bool sparse_eligible(const NetSnapshot& net, std::size_t n,
                     std::size_t& measured) {
  const util::FlatMatrix* ms[4] = {&net.latency_us, &net.latency_5min_us,
                                   &net.bandwidth_mbps, &net.peak_mbps};
  const std::uint64_t sentinel = f64_bits(-1.0);
  const std::uint64_t zero = f64_bits(0.0);
  measured = 0;
  for (const util::FlatMatrix* m : ms) {
    if (m->size() != n) return false;
    for (std::size_t i = 0; i < n; ++i) {
      if (f64_bits((*m)[i][i]) != zero) return false;
    }
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      bool any = false;
      for (const util::FlatMatrix* m : ms) {
        const std::uint64_t uv = f64_bits((*m)[u][v]);
        if (uv != f64_bits((*m)[v][u])) return false;
        if (uv != sentinel) any = true;
      }
      if (any) ++measured;
    }
  }
  return true;
}

void encode_sparse_pairwise(std::string& out, const NetSnapshot& net,
                            std::size_t n, std::size_t measured) {
  util::put_u64(out, static_cast<std::uint64_t>(measured));
  const std::uint64_t sentinel = f64_bits(-1.0);
  std::size_t written = 0;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double lat = net.latency_us[u][v];
      const double lat5 = net.latency_5min_us[u][v];
      const double bw = net.bandwidth_mbps[u][v];
      const double peak = net.peak_mbps[u][v];
      if (f64_bits(lat) == sentinel && f64_bits(lat5) == sentinel &&
          f64_bits(bw) == sentinel && f64_bits(peak) == sentinel) {
        continue;
      }
      util::put_u32(out, static_cast<std::uint32_t>(u));
      util::put_u32(out, static_cast<std::uint32_t>(v));
      util::put_f64(out, lat);
      util::put_f64(out, lat5);
      util::put_f64(out, bw);
      util::put_f64(out, peak);
      ++written;
    }
  }
  NLARM_CHECK(written == measured)
      << "sparse pairwise count drifted during encode";
}

void decode_sparse_pairwise(util::ByteReader& reader, NetSnapshot& net,
                            std::size_t n) {
  net.latency_us.assign(n, -1.0);
  net.latency_5min_us.assign(n, -1.0);
  net.bandwidth_mbps.assign(n, -1.0);
  net.peak_mbps.assign(n, -1.0);
  net.latency_us.zero_diagonal();
  net.latency_5min_us.zero_diagonal();
  net.bandwidth_mbps.zero_diagonal();
  net.peak_mbps.zero_diagonal();
  const std::uint64_t count = reader.u64();
  NLARM_CHECK(count <= n * (n - 1) / 2)
      << "sparse pairwise record count " << count << " exceeds " << n
      << "-node pair space";
  for (std::uint64_t r = 0; r < count; ++r) {
    const std::uint32_t u = reader.u32();
    const std::uint32_t v = reader.u32();
    NLARM_CHECK(u < v && v < n)
        << "sparse pairwise record (" << u << "," << v
        << ") out of range or not upper-triangular";
    const double lat = reader.f64();
    const double lat5 = reader.f64();
    const double bw = reader.f64();
    const double peak = reader.f64();
    net.latency_us[u][v] = net.latency_us[v][u] = lat;
    net.latency_5min_us[u][v] = net.latency_5min_us[v][u] = lat5;
    net.bandwidth_mbps[u][v] = net.bandwidth_mbps[v][u] = bw;
    net.peak_mbps[u][v] = net.peak_mbps[v][u] = peak;
  }
}

void require_little_endian() {
  NLARM_CHECK(util::host_is_little_endian())
      << "binary snapshot codec requires a little-endian host";
}

void encode_matrix(std::string& out, const util::FlatMatrix& m,
                   std::size_t n) {
  NLARM_CHECK(m.size() == n) << "pairwise matrix is " << m.size() << "x"
                             << m.size() << ", snapshot has " << n << " nodes";
  out.append(reinterpret_cast<const char*>(m.data()),
             m.value_count() * sizeof(double));
}

void decode_matrix(util::ByteReader& reader, util::FlatMatrix& m,
                   std::size_t n) {
  m.assign(n, 0.0);
  reader.read_into(m.data(), n * n * sizeof(double));
}

void encode_means(std::string& out, const RunningMeans& means) {
  util::put_f64(out, means.one_min);
  util::put_f64(out, means.five_min);
  util::put_f64(out, means.fifteen_min);
}

RunningMeans decode_means(util::ByteReader& reader) {
  RunningMeans means;
  means.one_min = reader.f64();
  means.five_min = reader.f64();
  means.fifteen_min = reader.f64();
  return means;
}

}  // namespace

bool is_binary_snapshot(std::string_view bytes) {
  return bytes.substr(0, kBinarySnapshotMagic.size()) == kBinarySnapshotMagic;
}

namespace codec {

void encode_node(std::string& out, const NodeSnapshot& node) {
  util::put_i32(out, node.spec.id);
  util::put_i32(out, node.spec.switch_id);
  util::put_i32(out, node.spec.core_count);
  util::put_i32(out, node.users);
  util::put_u32(out, node.valid ? 1 : 0);
  util::put_f64(out, node.spec.cpu_freq_ghz);
  util::put_f64(out, node.spec.total_mem_gb);
  util::put_f64(out, node.sample_time);
  util::put_f64(out, node.cpu_load);
  util::put_f64(out, node.cpu_util);
  util::put_f64(out, node.mem_used_gb);
  util::put_f64(out, node.net_flow_mbps);
  encode_means(out, node.cpu_load_avg);
  encode_means(out, node.cpu_util_avg);
  encode_means(out, node.net_flow_avg);
  encode_means(out, node.mem_avail_avg);
  util::put_u32(out, static_cast<std::uint32_t>(node.spec.hostname.size()));
  out.append(node.spec.hostname);
}

NodeSnapshot decode_node(util::ByteReader& reader) {
  NodeSnapshot node;
  node.spec.id = reader.i32();
  node.spec.switch_id = reader.i32();
  node.spec.core_count = reader.i32();
  node.users = reader.i32();
  node.valid = reader.u32() != 0;
  node.spec.cpu_freq_ghz = reader.f64();
  node.spec.total_mem_gb = reader.f64();
  node.sample_time = reader.f64();
  node.cpu_load = reader.f64();
  node.cpu_util = reader.f64();
  node.mem_used_gb = reader.f64();
  node.net_flow_mbps = reader.f64();
  node.cpu_load_avg = decode_means(reader);
  node.cpu_util_avg = decode_means(reader);
  node.net_flow_avg = decode_means(reader);
  node.mem_avail_avg = decode_means(reader);
  const std::uint32_t hostname_len = reader.u32();
  node.spec.hostname = std::string(reader.bytes(hostname_len));
  return node;
}

}  // namespace codec

void encode_snapshot_binary(const ClusterSnapshot& snapshot,
                            std::string& out) {
  require_little_endian();
  const std::size_t n = snapshot.nodes.size();
  NLARM_CHECK(n > 0) << "snapshot has no nodes";
  NLARM_CHECK(snapshot.livehosts.size() == n)
      << "livehosts size " << snapshot.livehosts.size() << " != node count "
      << n;
  const bool has_pairwise = !snapshot.net.latency_us.empty();

  // Tile-sparse pairwise: when the measured pairs are few (a tiled monitor
  // probes O(G²) inter-block pairs, not O(V²)) and the section is losslessly
  // reconstructible, ship only the measured records.
  std::size_t measured = 0;
  bool sparse = has_pairwise && sparse_eligible(snapshot.net, n, measured) &&
                8 + measured * kSparseRecordBytes <
                    4 * n * n * sizeof(double);

  const std::size_t start = out.size();
  // One reservation for the whole artifact: the matrices dominate.
  out.reserve(start + kBinarySnapshotMagic.size() + 24 + n * 256 + n +
              (has_pairwise && !sparse ? 4 * n * n * sizeof(double)
                                       : 8 + measured * kSparseRecordBytes) +
              4);
  out.append(kBinarySnapshotMagic);
  util::put_u32(out, static_cast<std::uint32_t>(n));
  util::put_u32(out, sparse ? kFlagSparsePairwise
                            : (has_pairwise ? kFlagHasPairwise : 0));
  util::put_f64(out, snapshot.time);
  util::put_u64(out, snapshot.version);

  for (std::size_t i = 0; i < n; ++i) {
    const NodeSnapshot& node = snapshot.nodes[i];
    NLARM_CHECK(node.spec.id == static_cast<cluster::NodeId>(i))
        << "node records must be dense and ordered";
    codec::encode_node(out, node);
  }
  for (std::size_t i = 0; i < n; ++i) {
    util::put_u8(out, snapshot.livehosts[i] ? 1 : 0);
  }
  if (sparse) {
    encode_sparse_pairwise(out, snapshot.net, n, measured);
  } else if (has_pairwise) {
    encode_matrix(out, snapshot.net.latency_us, n);
    encode_matrix(out, snapshot.net.latency_5min_us, n);
    encode_matrix(out, snapshot.net.bandwidth_mbps, n);
    encode_matrix(out, snapshot.net.peak_mbps, n);
  }
  const std::uint32_t crc =
      util::crc32(std::string_view(out).substr(start));
  util::put_u32(out, crc);
}

ClusterSnapshot decode_snapshot_binary(std::string_view bytes) {
  require_little_endian();
  NLARM_CHECK(is_binary_snapshot(bytes))
      << "not a binary nlarm snapshot (missing '"
      << std::string(kBinarySnapshotMagic.substr(
             0, kBinarySnapshotMagic.size() - 1))
      << "')";
  NLARM_CHECK(bytes.size() >= kBinarySnapshotMagic.size() + 4)
      << "binary snapshot truncated before header";
  const std::uint32_t stored_crc =
      [&] {
        std::uint32_t v;
        std::memcpy(&v, bytes.data() + bytes.size() - 4, 4);
        return v;
      }();
  const std::uint32_t computed_crc =
      util::crc32(bytes.substr(0, bytes.size() - 4));
  NLARM_CHECK(stored_crc == computed_crc)
      << "binary snapshot CRC mismatch (stored " << stored_crc
      << ", computed " << computed_crc << ") — truncated or corrupt file";

  util::ByteReader reader(bytes.substr(0, bytes.size() - 4));
  reader.skip(kBinarySnapshotMagic.size());
  const std::uint32_t n32 = reader.u32();
  NLARM_CHECK(n32 > 0 && n32 <= (1u << 24))
      << "implausible node count " << n32;
  const std::size_t n = n32;
  const std::uint32_t flags = reader.u32();

  ClusterSnapshot snapshot;
  snapshot.time = reader.f64();
  snapshot.version = reader.u64();
  snapshot.nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeSnapshot node = codec::decode_node(reader);
    NLARM_CHECK(node.spec.id == static_cast<cluster::NodeId>(i))
        << "node records must be dense and ordered";
    snapshot.nodes.push_back(std::move(node));
  }
  snapshot.livehosts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    snapshot.livehosts[i] = reader.u8() != 0;
  }
  if ((flags & kFlagSparsePairwise) != 0) {
    decode_sparse_pairwise(reader, snapshot.net, n);
  } else if ((flags & kFlagHasPairwise) != 0) {
    decode_matrix(reader, snapshot.net.latency_us, n);
    decode_matrix(reader, snapshot.net.latency_5min_us, n);
    decode_matrix(reader, snapshot.net.bandwidth_mbps, n);
    decode_matrix(reader, snapshot.net.peak_mbps, n);
  }
  NLARM_CHECK(reader.remaining() == 0)
      << reader.remaining() << " trailing byte(s) after pairwise section";
  return snapshot;
}

}  // namespace nlarm::monitor
