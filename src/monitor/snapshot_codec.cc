#include "monitor/snapshot_codec.h"

#include <cstring>

#include "util/binio.h"
#include "util/check.h"

namespace nlarm::monitor {

namespace {

constexpr std::uint32_t kFlagHasPairwise = 1u << 0;

void require_little_endian() {
  NLARM_CHECK(util::host_is_little_endian())
      << "binary snapshot codec requires a little-endian host";
}

void encode_matrix(std::string& out, const util::FlatMatrix& m,
                   std::size_t n) {
  NLARM_CHECK(m.size() == n) << "pairwise matrix is " << m.size() << "x"
                             << m.size() << ", snapshot has " << n << " nodes";
  out.append(reinterpret_cast<const char*>(m.data()),
             m.value_count() * sizeof(double));
}

void decode_matrix(util::ByteReader& reader, util::FlatMatrix& m,
                   std::size_t n) {
  m.assign(n, 0.0);
  reader.read_into(m.data(), n * n * sizeof(double));
}

void encode_means(std::string& out, const RunningMeans& means) {
  util::put_f64(out, means.one_min);
  util::put_f64(out, means.five_min);
  util::put_f64(out, means.fifteen_min);
}

RunningMeans decode_means(util::ByteReader& reader) {
  RunningMeans means;
  means.one_min = reader.f64();
  means.five_min = reader.f64();
  means.fifteen_min = reader.f64();
  return means;
}

}  // namespace

bool is_binary_snapshot(std::string_view bytes) {
  return bytes.substr(0, kBinarySnapshotMagic.size()) == kBinarySnapshotMagic;
}

namespace codec {

void encode_node(std::string& out, const NodeSnapshot& node) {
  util::put_i32(out, node.spec.id);
  util::put_i32(out, node.spec.switch_id);
  util::put_i32(out, node.spec.core_count);
  util::put_i32(out, node.users);
  util::put_u32(out, node.valid ? 1 : 0);
  util::put_f64(out, node.spec.cpu_freq_ghz);
  util::put_f64(out, node.spec.total_mem_gb);
  util::put_f64(out, node.sample_time);
  util::put_f64(out, node.cpu_load);
  util::put_f64(out, node.cpu_util);
  util::put_f64(out, node.mem_used_gb);
  util::put_f64(out, node.net_flow_mbps);
  encode_means(out, node.cpu_load_avg);
  encode_means(out, node.cpu_util_avg);
  encode_means(out, node.net_flow_avg);
  encode_means(out, node.mem_avail_avg);
  util::put_u32(out, static_cast<std::uint32_t>(node.spec.hostname.size()));
  out.append(node.spec.hostname);
}

NodeSnapshot decode_node(util::ByteReader& reader) {
  NodeSnapshot node;
  node.spec.id = reader.i32();
  node.spec.switch_id = reader.i32();
  node.spec.core_count = reader.i32();
  node.users = reader.i32();
  node.valid = reader.u32() != 0;
  node.spec.cpu_freq_ghz = reader.f64();
  node.spec.total_mem_gb = reader.f64();
  node.sample_time = reader.f64();
  node.cpu_load = reader.f64();
  node.cpu_util = reader.f64();
  node.mem_used_gb = reader.f64();
  node.net_flow_mbps = reader.f64();
  node.cpu_load_avg = decode_means(reader);
  node.cpu_util_avg = decode_means(reader);
  node.net_flow_avg = decode_means(reader);
  node.mem_avail_avg = decode_means(reader);
  const std::uint32_t hostname_len = reader.u32();
  node.spec.hostname = std::string(reader.bytes(hostname_len));
  return node;
}

}  // namespace codec

void encode_snapshot_binary(const ClusterSnapshot& snapshot,
                            std::string& out) {
  require_little_endian();
  const std::size_t n = snapshot.nodes.size();
  NLARM_CHECK(n > 0) << "snapshot has no nodes";
  NLARM_CHECK(snapshot.livehosts.size() == n)
      << "livehosts size " << snapshot.livehosts.size() << " != node count "
      << n;
  const bool has_pairwise = !snapshot.net.latency_us.empty();

  const std::size_t start = out.size();
  // One reservation for the whole artifact: the matrices dominate.
  out.reserve(start + kBinarySnapshotMagic.size() + 24 + n * 256 + n +
              (has_pairwise ? 4 * n * n * sizeof(double) : 0) + 4);
  out.append(kBinarySnapshotMagic);
  util::put_u32(out, static_cast<std::uint32_t>(n));
  util::put_u32(out, has_pairwise ? kFlagHasPairwise : 0);
  util::put_f64(out, snapshot.time);
  util::put_u64(out, snapshot.version);

  for (std::size_t i = 0; i < n; ++i) {
    const NodeSnapshot& node = snapshot.nodes[i];
    NLARM_CHECK(node.spec.id == static_cast<cluster::NodeId>(i))
        << "node records must be dense and ordered";
    codec::encode_node(out, node);
  }
  for (std::size_t i = 0; i < n; ++i) {
    util::put_u8(out, snapshot.livehosts[i] ? 1 : 0);
  }
  if (has_pairwise) {
    encode_matrix(out, snapshot.net.latency_us, n);
    encode_matrix(out, snapshot.net.latency_5min_us, n);
    encode_matrix(out, snapshot.net.bandwidth_mbps, n);
    encode_matrix(out, snapshot.net.peak_mbps, n);
  }
  const std::uint32_t crc =
      util::crc32(std::string_view(out).substr(start));
  util::put_u32(out, crc);
}

ClusterSnapshot decode_snapshot_binary(std::string_view bytes) {
  require_little_endian();
  NLARM_CHECK(is_binary_snapshot(bytes))
      << "not a binary nlarm snapshot (missing '"
      << std::string(kBinarySnapshotMagic.substr(
             0, kBinarySnapshotMagic.size() - 1))
      << "')";
  NLARM_CHECK(bytes.size() >= kBinarySnapshotMagic.size() + 4)
      << "binary snapshot truncated before header";
  const std::uint32_t stored_crc =
      [&] {
        std::uint32_t v;
        std::memcpy(&v, bytes.data() + bytes.size() - 4, 4);
        return v;
      }();
  const std::uint32_t computed_crc =
      util::crc32(bytes.substr(0, bytes.size() - 4));
  NLARM_CHECK(stored_crc == computed_crc)
      << "binary snapshot CRC mismatch (stored " << stored_crc
      << ", computed " << computed_crc << ") — truncated or corrupt file";

  util::ByteReader reader(bytes.substr(0, bytes.size() - 4));
  reader.skip(kBinarySnapshotMagic.size());
  const std::uint32_t n32 = reader.u32();
  NLARM_CHECK(n32 > 0 && n32 <= (1u << 24))
      << "implausible node count " << n32;
  const std::size_t n = n32;
  const std::uint32_t flags = reader.u32();

  ClusterSnapshot snapshot;
  snapshot.time = reader.f64();
  snapshot.version = reader.u64();
  snapshot.nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeSnapshot node = codec::decode_node(reader);
    NLARM_CHECK(node.spec.id == static_cast<cluster::NodeId>(i))
        << "node records must be dense and ordered";
    snapshot.nodes.push_back(std::move(node));
  }
  snapshot.livehosts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    snapshot.livehosts[i] = reader.u8() != 0;
  }
  if ((flags & kFlagHasPairwise) != 0) {
    decode_matrix(reader, snapshot.net.latency_us, n);
    decode_matrix(reader, snapshot.net.latency_5min_us, n);
    decode_matrix(reader, snapshot.net.bandwidth_mbps, n);
    decode_matrix(reader, snapshot.net.peak_mbps, n);
  }
  NLARM_CHECK(reader.remaining() == 0)
      << reader.remaining() << " trailing byte(s) after pairwise section";
  return snapshot;
}

}  // namespace nlarm::monitor
