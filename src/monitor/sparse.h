// Sparse network estimation: per-link state reconstructed from O(V) probes.
//
// The paper's probe schedule already measures only n/2 disjoint pairs at a
// time, but it still walks every tournament round each period, so the
// traffic (and the store churn) stays O(V²) per period. On a switch-tree
// topology that is redundant: a pair's path cost decomposes over its links
// (uplink → trunks → uplink), and V nodes share only V uplinks plus S-1
// trunks. This estimator maintains per-link latency and bandwidth state
// updated from whichever pairs WERE probed, and synthesizes values for the
// pairs that were not:
//
//   * latency: additive over the path. Each measurement relaxes its path's
//     link terms with a Kaczmarz step (distribute the residual equally over
//     the path), which converges to a consistent per-link decomposition
//     when the underlying costs are tree-additive and tracks drift
//     otherwise. An unmeasured pair's estimate is the sum over its path,
//     available once every link on the path has been touched at least once.
//   * bandwidth: bottleneck (min) over the path. Links start at their
//     LinkSpec capacity; a measurement raises every path link to at least
//     the measured value (the path demonstrably carried it) and eases the
//     current bottleneck link toward the measurement when it came in lower.
//     An unmeasured pair's estimate is the min over its path; the peak is
//     the min of the path's link capacities (exact, by construction).
//
// Reconstruction error is bounded by the consumer, not here: reconstructed
// values are written as the 1-minute instantaneous entries only, so the
// degradation layer's 5-minute-mean fallback (core/degrade.h) stays
// anchored to real measurements and absorbs estimator error exactly the
// way it absorbs stale-probe error.
#pragma once

#include <vector>

#include "cluster/topology.h"

namespace nlarm::monitor {

struct SparseEstimatorOptions {
  /// Kaczmarz step size for latency residuals, in (0, 1]. 1.0 projects the
  /// path constraint exactly; smaller values average over noisy probes. A
  /// link's FIRST observation always takes its full residual share (warm
  /// start), so damping never delays readiness. The default is tuned for
  /// the testbed's 10 % probe sigma: full projection would let each noisy
  /// measurement yank the shared trunk terms around (~35 % worst-case pair
  /// error); 0.25 averages the noise down to ~10 %.
  double latency_gain = 0.25;
  /// EMA factor easing the bottleneck link toward a lower-than-estimated
  /// bandwidth measurement, in (0, 1].
  double bandwidth_gain = 0.5;
};

class SparseNetworkEstimator {
 public:
  explicit SparseNetworkEstimator(const cluster::Topology& topology,
                                  SparseEstimatorOptions options = {});

  /// Folds one real probe into the per-link state. u != v.
  void observe_latency(cluster::NodeId u, cluster::NodeId v,
                       double measured_us);
  void observe_bandwidth(cluster::NodeId u, cluster::NodeId v,
                         double measured_mbps);

  /// True once every link on the pair's path has at least one observation.
  bool latency_ready(cluster::NodeId u, cluster::NodeId v) const;
  bool bandwidth_ready(cluster::NodeId u, cluster::NodeId v) const;

  /// Path-sum / path-min reconstructions. Only meaningful when the
  /// corresponding *_ready() returns true.
  double estimate_latency_us(cluster::NodeId u, cluster::NodeId v) const;
  double estimate_bandwidth_mbps(cluster::NodeId u, cluster::NodeId v) const;

  /// Min link capacity along the path — the exact peak bandwidth of a
  /// contention-free tree path.
  double path_peak_mbps(cluster::NodeId u, cluster::NodeId v) const;

  long latency_observations() const { return latency_observations_; }
  long bandwidth_observations() const { return bandwidth_observations_; }

 private:
  const cluster::Topology& topology_;
  SparseEstimatorOptions options_;
  std::vector<double> link_latency_us_;
  std::vector<int> link_latency_obs_;
  std::vector<double> link_bandwidth_mbps_;
  std::vector<int> link_bandwidth_obs_;
  long latency_observations_ = 0;
  long bandwidth_observations_ = 0;
};

}  // namespace nlarm::monitor
