// ResourceMonitor: facade wiring the store, all daemons and the
// CentralMonitor to a cluster + network + simulation (the "Resource
// Monitor" box of the paper's Figure 3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "monitor/central.h"
#include "monitor/daemons.h"
#include "monitor/store.h"
#include "net/network_model.h"
#include "sim/simulation.h"

namespace nlarm::monitor {

struct MonitorConfig {
  double livehosts_period_s = 5.0;
  /// NodeStateD periods are drawn uniformly from this range per node
  /// ("every 3-10 seconds", §4).
  double nodestate_period_min_s = 3.0;
  double nodestate_period_max_s = 10.0;
  double nodestate_noise = 0.02;
  double latency_period_s = 60.0;    ///< "1 minute for latency"
  double bandwidth_period_s = 300.0; ///< "5 minutes for bandwidth"
  double probe_round_spacing_s = 0.05;
  double supervision_period_s = 10.0;
  int livehosts_daemons = 2;  ///< run on a few selected nodes (§4)
  /// Node records older than this are treated as missing when assembling
  /// snapshots (0 disables the filter). Guards against dead NodeStateDs
  /// serving forever-stale data.
  double max_record_age_s = 120.0;
  /// Sparse probing (monitor/sparse.h): pair daemons measure only one
  /// tournament round — n/2 pairs, O(V) traffic — per period and
  /// reconstruct stale pairs from per-link topology estimates, instead of
  /// walking every round each period (O(V²)).
  bool sparse_probes = false;
  /// Sparse mode only: reconstruct a pair once its stored record is older
  /// than this. Should sit between the probe period and the degradation
  /// layer's pair staleness budget.
  double sparse_reconstruct_min_age_s = 90.0;
  std::uint64_t seed = 0xD43;
};

class ResourceMonitor {
 public:
  ResourceMonitor(const cluster::Cluster& cluster,
                  const net::NetworkModel& network, sim::Simulation& sim,
                  MonitorConfig config = {});

  /// Launches every daemon and the CentralMonitor. Call once.
  void start();

  /// Assembles the allocator-facing snapshot from the store.
  ClusterSnapshot snapshot() const;

  MonitorStore& store() { return store_; }
  const MonitorStore& store() const { return store_; }
  CentralMonitor& central() { return *central_; }

  /// Finds a daemon by name (for failure injection); null if unknown.
  Daemon* find_daemon(const std::string& name);
  std::vector<Daemon*> daemons();

  const MonitorConfig& config() const { return config_; }

 private:
  const cluster::Cluster& cluster_;
  const net::NetworkModel& network_;
  sim::Simulation& sim_;
  MonitorConfig config_;
  MonitorStore store_;
  std::vector<std::unique_ptr<Daemon>> daemons_;
  std::unique_ptr<CentralMonitor> central_;
  bool started_ = false;
};

}  // namespace nlarm::monitor
