// Delta append-log (`.nlarmd`): O(dirty) snapshot persistence between full
// snapshots.
//
// The paper's daemons refresh node records every 3–10 s and pair probes
// every 1–5 min, so consecutive snapshots differ in a small fraction of
// entries — yet a full snapshot file re-writes (and a reader re-parses)
// all ~V² pairwise values every epoch. The log makes the on-disk pipeline
// match the in-memory one (SnapshotDelta → PreparedBuilder): a writer
// appends one frame per drained delta carrying only the dirty node records
// and dirty pair values, and periodically compacts back to a single full
// binary snapshot frame; a reader replays frames into a running
// ClusterSnapshot and hands out coalesced SnapshotDeltas, so a broker
// following the log ingests each epoch at O(dirty) I/O and feeds the
// existing incremental refresh_epoch path.
//
// Frame layout (little-endian):
//   u32 frame magic ("nlmd") · u32 payload length · payload · u32 CRC32
// Payloads:
//   kind 0 (full):  a complete `#nlarm-snapb v2` artifact (snapshot_codec)
//   kind 1 (delta): base_version/version/time stamps, optional livehosts
//                   vector, dirty node records, dirty pair values (both
//                   directions of each unordered pair)
//
// Torn-write behavior: frames are appended with fsync, so a crash (or the
// shared arm_torn_snapshot_write chaos hook) can only corrupt the final
// frame. Readers stop at the first bad frame and retry it on the next
// poll; the writer recovers by compacting — a fresh single-frame log
// written tmp+rename over the damaged one, so a torn tail never shadows
// good state.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "monitor/snapshot.h"
#include "monitor/snapshot_delta.h"

namespace nlarm::monitor {

/// Canonical extension for delta append-logs.
inline constexpr std::string_view kDeltaLogExtension = ".nlarmd";

/// Appends (snapshot, delta) frames to a log file, compacting to a single
/// full-snapshot frame when the delta tail outgrows the policy. Not
/// thread-safe (one writer per log, like one MonitorStore per monitor).
class DeltaLogWriter {
 public:
  struct Options {
    /// Compact once this many delta frames follow the last full frame.
    int compact_after_deltas = 64;
    /// ... or once their cumulative bytes exceed this fraction of the last
    /// full frame's size (whichever trips first).
    double compact_bytes_ratio = 0.5;
  };

  explicit DeltaLogWriter(std::string path)
      : DeltaLogWriter(std::move(path), Options{}) {}
  DeltaLogWriter(std::string path, Options options);

  /// Appends the state as one frame. Writes a full frame when no full
  /// frame exists yet, when the delta requires a full rebuild or does not
  /// chain onto the last appended version, or when the compaction policy
  /// trips; otherwise appends an O(dirty) delta frame. `delta.version`
  /// must match `snapshot.version`. Returns false when the write failed or
  /// a torn write was armed (the next append then re-lays a full log).
  bool append(const ClusterSnapshot& snapshot, const SnapshotDelta& delta);

  /// Compaction entry point: rewrites the log as one full-snapshot frame
  /// via tmp + rename + directory fsync (never corrupts a good log).
  bool write_full(const ClusterSnapshot& snapshot);

  const std::string& path() const { return path_; }
  long frames_appended() const { return frames_; }
  int compactions() const { return compactions_; }

 private:
  std::string path_;
  Options options_;
  bool have_full_ = false;        ///< a good full frame anchors the log
  std::uint64_t tail_version_ = 0;
  std::size_t full_bytes_ = 0;
  std::size_t delta_bytes_since_full_ = 0;
  int deltas_since_full_ = 0;
  long frames_ = 0;
  int compactions_ = 0;
};

/// Replays a delta log into a running ClusterSnapshot. poll() ingests
/// frames appended since the last call, so a broker can follow a live log
/// the way it follows a live MonitorStore.
class DeltaLogReader {
 public:
  explicit DeltaLogReader(std::string path);
  ~DeltaLogReader();
  DeltaLogReader(const DeltaLogReader&) = delete;
  DeltaLogReader& operator=(const DeltaLogReader&) = delete;

  /// Reads any frames appended since the last poll and applies them to the
  /// running state. A shrunken file (writer compacted) resets the cursor
  /// and replays from the start; a torn or CRC-failing tail frame stops
  /// the scan without advancing past it (retried next poll). Returns the
  /// number of frames applied.
  int poll();

  /// Enables the decode-ahead pipeline: a lazily started worker thread
  /// CRC-checks and decodes frame k+1 while poll() applies frame k, so a
  /// multi-frame catch-up overlaps parsing with state mutation instead of
  /// alternating them. Replay semantics (cursor, rescans, torn tails, bad
  /// frames) are identical to the serial path — only wall time changes.
  /// Off by default; disabling stops the worker. The worker is always idle
  /// between polls, so drain_delta()/snapshot() stay single-threaded.
  void set_decode_ahead(bool enabled);
  bool decode_ahead() const { return decode_ahead_; }

  bool have_snapshot() const { return have_state_; }
  const ClusterSnapshot& snapshot() const;

  /// Coalesced dirty sets of every frame applied since the previous drain
  /// (full frames set the `full` flag), stamped with the versions the span
  /// covers — the exact shape MonitorStore::drain_delta() hands out, so
  /// the result feeds ResourceBroker::refresh_epoch unchanged.
  SnapshotDelta drain_delta();

  long frames_applied() const { return frames_applied_; }
  long bad_frames_seen() const { return bad_frames_; }

 private:
  /// A frame parsed off the log but not yet applied to `state_`. Produced
  /// by decode_frame (pure, safe on the decode-ahead thread), consumed by
  /// apply_decoded (mutates state, main thread only).
  struct DecodedFrame {
    std::uint8_t kind = 0;
    ClusterSnapshot full;  ///< kind 0 payload
    // kind 1 payload:
    std::uint64_t base_version = 0;
    std::uint64_t version = 0;
    double time = 0.0;
    std::size_t n = 0;
    bool livehosts_changed = false;
    std::vector<std::uint8_t> livehosts;
    std::vector<NodeSnapshot> nodes;
    struct PairValues {
      cluster::NodeId u = 0;
      cluster::NodeId v = 0;
      double values[8] = {};  ///< lat ×2, lat_5min ×2, bw ×2, peak ×2
    };
    std::vector<PairValues> pairs;
  };

  /// CRC + decode verdict for one frame (inline or from the worker).
  struct DecodeOutcome {
    std::size_t offset = 0;  ///< frame offset, identity within one poll
    bool crc_ok = false;
    bool known_kind = false;   ///< decode_frame accepted the payload kind
    bool decode_error = false; ///< decode threw (malformed payload)
    std::string error;
    DecodedFrame frame;
  };

  /// Pure payload parse: no reader state is touched, so it can run on the
  /// decode-ahead thread. Returns false for an unknown frame kind; throws
  /// util::CheckError on a malformed payload.
  bool decode_frame(std::uint8_t kind, std::string_view payload,
                    DecodedFrame& out) const;
  /// Chain checks + state mutation for a decoded frame (main thread).
  /// Consumes `frame` (moves node records / the full snapshot into state).
  bool apply_decoded(DecodedFrame& frame);
  /// CRC check + decode_frame + error capture, shared by the inline path
  /// and the worker.
  DecodeOutcome decode_outcome(std::size_t offset, std::string_view payload,
                               std::uint32_t stored_crc) const;

  void start_decode_worker();
  void stop_decode_worker();
  void submit_decode(std::size_t offset, std::string_view payload,
                     std::uint32_t stored_crc);
  DecodeOutcome take_decode();
  void drain_decode();
  void decode_worker_main();

  std::string path_;
  std::size_t offset_ = 0;  ///< byte offset of the next unread frame
  /// File size at the previous poll. Appends only ever grow the log, so ANY
  /// observed shrink means the file was replaced (compaction) — even when
  /// the new file is still longer than our cursor and the head frame is
  /// momentarily unidentifiable. Closes the race between the cursor check
  /// and the frame read.
  std::size_t last_size_ = 0;
  /// (payload length << 32) | stored CRC of the log's head frame, used to
  /// detect a compaction that replaced the file without shrinking it.
  std::uint64_t head_id_ = 0;
  bool have_head_id_ = false;
  bool have_state_ = false;
  ClusterSnapshot state_;
  SnapshotDelta pending_;
  std::uint64_t drain_base_version_ = 0;
  long frames_applied_ = 0;
  long bad_frames_ = 0;

  // Decode-ahead pipeline. The job payload is a view into poll()'s mapped
  // file, so every submitted job is drained before poll returns (and
  // before the worker is stopped) — the worker never outlives the bytes.
  bool decode_ahead_ = false;
  std::thread decode_thread_;
  std::mutex decode_mutex_;
  std::condition_variable decode_cv_;
  bool decode_stop_ = false;
  bool job_ready_ = false;      ///< a job is posted, worker not started on it
  bool job_in_flight_ = false;  ///< a job is posted or being decoded
  bool result_ready_ = false;
  std::size_t job_offset_ = 0;
  std::string_view job_payload_;
  std::uint32_t job_crc_ = 0;
  DecodeOutcome decode_result_;
};

/// One-shot convenience: replays the whole log and returns the final
/// state. Throws CheckError when the log holds no usable snapshot.
ClusterSnapshot replay_delta_log(const std::string& path);

}  // namespace nlarm::monitor
