// Delta append-log (`.nlarmd`): O(dirty) snapshot persistence between full
// snapshots.
//
// The paper's daemons refresh node records every 3–10 s and pair probes
// every 1–5 min, so consecutive snapshots differ in a small fraction of
// entries — yet a full snapshot file re-writes (and a reader re-parses)
// all ~V² pairwise values every epoch. The log makes the on-disk pipeline
// match the in-memory one (SnapshotDelta → PreparedBuilder): a writer
// appends one frame per drained delta carrying only the dirty node records
// and dirty pair values, and periodically compacts back to a single full
// binary snapshot frame; a reader replays frames into a running
// ClusterSnapshot and hands out coalesced SnapshotDeltas, so a broker
// following the log ingests each epoch at O(dirty) I/O and feeds the
// existing incremental refresh_epoch path.
//
// Frame layout (little-endian):
//   u32 frame magic ("nlmd") · u32 payload length · payload · u32 CRC32
// Payloads:
//   kind 0 (full):  a complete `#nlarm-snapb v2` artifact (snapshot_codec)
//   kind 1 (delta): base_version/version/time stamps, optional livehosts
//                   vector, dirty node records, dirty pair values (both
//                   directions of each unordered pair)
//
// Torn-write behavior: frames are appended with fsync, so a crash (or the
// shared arm_torn_snapshot_write chaos hook) can only corrupt the final
// frame. Readers stop at the first bad frame and retry it on the next
// poll; the writer recovers by compacting — a fresh single-frame log
// written tmp+rename over the damaged one, so a torn tail never shadows
// good state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "monitor/snapshot.h"
#include "monitor/snapshot_delta.h"

namespace nlarm::monitor {

/// Canonical extension for delta append-logs.
inline constexpr std::string_view kDeltaLogExtension = ".nlarmd";

/// Appends (snapshot, delta) frames to a log file, compacting to a single
/// full-snapshot frame when the delta tail outgrows the policy. Not
/// thread-safe (one writer per log, like one MonitorStore per monitor).
class DeltaLogWriter {
 public:
  struct Options {
    /// Compact once this many delta frames follow the last full frame.
    int compact_after_deltas = 64;
    /// ... or once their cumulative bytes exceed this fraction of the last
    /// full frame's size (whichever trips first).
    double compact_bytes_ratio = 0.5;
  };

  explicit DeltaLogWriter(std::string path)
      : DeltaLogWriter(std::move(path), Options{}) {}
  DeltaLogWriter(std::string path, Options options);

  /// Appends the state as one frame. Writes a full frame when no full
  /// frame exists yet, when the delta requires a full rebuild or does not
  /// chain onto the last appended version, or when the compaction policy
  /// trips; otherwise appends an O(dirty) delta frame. `delta.version`
  /// must match `snapshot.version`. Returns false when the write failed or
  /// a torn write was armed (the next append then re-lays a full log).
  bool append(const ClusterSnapshot& snapshot, const SnapshotDelta& delta);

  /// Compaction entry point: rewrites the log as one full-snapshot frame
  /// via tmp + rename + directory fsync (never corrupts a good log).
  bool write_full(const ClusterSnapshot& snapshot);

  const std::string& path() const { return path_; }
  long frames_appended() const { return frames_; }
  int compactions() const { return compactions_; }

 private:
  std::string path_;
  Options options_;
  bool have_full_ = false;        ///< a good full frame anchors the log
  std::uint64_t tail_version_ = 0;
  std::size_t full_bytes_ = 0;
  std::size_t delta_bytes_since_full_ = 0;
  int deltas_since_full_ = 0;
  long frames_ = 0;
  int compactions_ = 0;
};

/// Replays a delta log into a running ClusterSnapshot. poll() ingests
/// frames appended since the last call, so a broker can follow a live log
/// the way it follows a live MonitorStore.
class DeltaLogReader {
 public:
  explicit DeltaLogReader(std::string path);

  /// Reads any frames appended since the last poll and applies them to the
  /// running state. A shrunken file (writer compacted) resets the cursor
  /// and replays from the start; a torn or CRC-failing tail frame stops
  /// the scan without advancing past it (retried next poll). Returns the
  /// number of frames applied.
  int poll();

  bool have_snapshot() const { return have_state_; }
  const ClusterSnapshot& snapshot() const;

  /// Coalesced dirty sets of every frame applied since the previous drain
  /// (full frames set the `full` flag), stamped with the versions the span
  /// covers — the exact shape MonitorStore::drain_delta() hands out, so
  /// the result feeds ResourceBroker::refresh_epoch unchanged.
  SnapshotDelta drain_delta();

  long frames_applied() const { return frames_applied_; }
  long bad_frames_seen() const { return bad_frames_; }

 private:
  bool apply_frame(std::uint8_t kind, std::string_view payload);

  std::string path_;
  std::size_t offset_ = 0;  ///< byte offset of the next unread frame
  /// File size at the previous poll. Appends only ever grow the log, so ANY
  /// observed shrink means the file was replaced (compaction) — even when
  /// the new file is still longer than our cursor and the head frame is
  /// momentarily unidentifiable. Closes the race between the cursor check
  /// and the frame read.
  std::size_t last_size_ = 0;
  /// (payload length << 32) | stored CRC of the log's head frame, used to
  /// detect a compaction that replaced the file without shrinking it.
  std::uint64_t head_id_ = 0;
  bool have_head_id_ = false;
  bool have_state_ = false;
  ClusterSnapshot state_;
  SnapshotDelta pending_;
  std::uint64_t drain_base_version_ = 0;
  long frames_applied_ = 0;
  long bad_frames_ = 0;
};

/// One-shot convenience: replays the whole log and returns the final
/// state. Throws CheckError when the log holds no usable snapshot.
ClusterSnapshot replay_delta_log(const std::string& path);

}  // namespace nlarm::monitor
