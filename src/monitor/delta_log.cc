#include "monitor/delta_log.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "monitor/persistence.h"
#include "monitor/snapshot_codec.h"
#include "obs/catalog.h"
#include "util/binio.h"
#include "util/check.h"
#include "util/logging.h"

namespace nlarm::monitor {

namespace {

constexpr std::uint32_t kFrameMagic = 0x646d6c6eu;  // "nlmd" little-endian
constexpr std::uint8_t kKindFull = 0;
constexpr std::uint8_t kKindDelta = 1;
constexpr std::uint8_t kDeltaFlagLivehosts = 1u << 0;

/// Wraps a payload in the frame envelope: magic, length, payload, CRC.
std::string make_frame(std::uint8_t kind, std::string_view payload_body) {
  std::string frame;
  frame.reserve(payload_body.size() + 16);
  util::put_u32(frame, kFrameMagic);
  util::put_u32(frame, static_cast<std::uint32_t>(payload_body.size() + 1));
  const std::size_t payload_start = frame.size();
  util::put_u8(frame, kind);
  frame.append(payload_body);
  util::put_u32(frame,
                util::crc32(std::string_view(frame).substr(payload_start)));
  return frame;
}

std::string encode_delta_payload(const ClusterSnapshot& snapshot,
                                 const SnapshotDelta& delta) {
  const std::size_t n = snapshot.nodes.size();
  std::string out;
  out.reserve(64 + delta.dirty_nodes.size() * 256 +
              delta.dirty_pairs.size() * 72 +
              (delta.livehosts_changed ? n : 0));
  util::put_u64(out, delta.base_version);
  util::put_u64(out, delta.version);
  util::put_f64(out, snapshot.time);
  util::put_u32(out, static_cast<std::uint32_t>(n));
  util::put_u8(out, delta.livehosts_changed ? kDeltaFlagLivehosts : 0);
  if (delta.livehosts_changed) {
    for (std::size_t i = 0; i < n; ++i) {
      util::put_u8(out, snapshot.livehosts[i] ? 1 : 0);
    }
  }
  util::put_varint(out, delta.dirty_nodes.size());
  for (const cluster::NodeId node : delta.dirty_nodes) {
    NLARM_CHECK(node >= 0 && static_cast<std::size_t>(node) < n)
        << "dirty node " << node << " out of range";
    codec::encode_node(out, snapshot.nodes[static_cast<std::size_t>(node)]);
  }
  util::put_varint(out, delta.dirty_pairs.size());
  for (const auto& [u, v] : delta.dirty_pairs) {
    NLARM_CHECK(u >= 0 && v >= 0 && static_cast<std::size_t>(u) < n &&
                static_cast<std::size_t>(v) < n && u != v)
        << "dirty pair (" << u << ", " << v << ") out of range";
    const auto uu = static_cast<std::size_t>(u);
    const auto vv = static_cast<std::size_t>(v);
    util::put_varint(out, static_cast<std::uint64_t>(u));
    util::put_varint(out, static_cast<std::uint64_t>(v));
    util::put_f64(out, snapshot.net.latency_us[uu][vv]);
    util::put_f64(out, snapshot.net.latency_us[vv][uu]);
    util::put_f64(out, snapshot.net.latency_5min_us[uu][vv]);
    util::put_f64(out, snapshot.net.latency_5min_us[vv][uu]);
    util::put_f64(out, snapshot.net.bandwidth_mbps[uu][vv]);
    util::put_f64(out, snapshot.net.bandwidth_mbps[vv][uu]);
    util::put_f64(out, snapshot.net.peak_mbps[uu][vv]);
    util::put_f64(out, snapshot.net.peak_mbps[vv][uu]);
  }
  return out;
}

}  // namespace

DeltaLogWriter::DeltaLogWriter(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  NLARM_CHECK(options_.compact_after_deltas > 0)
      << "compact_after_deltas must be positive";
  NLARM_CHECK(options_.compact_bytes_ratio > 0.0)
      << "compact_bytes_ratio must be positive";
}

bool DeltaLogWriter::write_full(const ClusterSnapshot& snapshot) {
  std::string payload;
  encode_snapshot_binary(snapshot, payload);
  std::string frame = make_frame(kKindFull, payload);

  const bool torn = consume_torn_snapshot_write();
  if (torn) {
    frame.resize(frame.size() / 2);
    obs::metrics::chaos_torn_snapshot_writes().inc();
  }

  // Full frames are the compaction path: rewrite the whole log through
  // tmp + rename so a reader never sees a half-replaced file.
  const std::string tmp = path_ + ".tmp";
  const bool wrote_ok = util::write_file_durable(tmp, frame);
  if (torn || !wrote_ok) {
    have_full_ = false;  // force a fresh full frame on the next append
    NLARM_WARN << "delta-log full frame write to " << path_
               << (torn ? " torn by fault injection" : " failed")
               << "; previous log left untouched";
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    have_full_ = false;
    NLARM_WARN << "delta-log rename " << tmp << " -> " << path_ << " failed";
    return false;
  }
  util::fsync_parent_dir(path_);

  have_full_ = true;
  tail_version_ = snapshot.version;
  full_bytes_ = frame.size();
  delta_bytes_since_full_ = 0;
  deltas_since_full_ = 0;
  ++frames_;
  ++compactions_;
  obs::metrics::snapshot_bytes_written().inc(frame.size());
  return true;
}

bool DeltaLogWriter::append(const ClusterSnapshot& snapshot,
                            const SnapshotDelta& delta) {
  NLARM_CHECK(delta.version == snapshot.version)
      << "delta version " << delta.version << " does not stamp snapshot "
      << snapshot.version;
  const bool chains = have_full_ && delta.base_version == tail_version_ &&
                      !delta.requires_full_rebuild();
  const bool compaction_due =
      deltas_since_full_ + 1 > options_.compact_after_deltas ||
      (full_bytes_ > 0 &&
       static_cast<double>(delta_bytes_since_full_) >
           options_.compact_bytes_ratio * static_cast<double>(full_bytes_));
  if (!chains || compaction_due) {
    return write_full(snapshot);
  }

  std::string frame =
      make_frame(kKindDelta, encode_delta_payload(snapshot, delta));

  const bool torn = consume_torn_snapshot_write();
  if (torn) {
    frame.resize(frame.size() / 2);
    obs::metrics::chaos_torn_snapshot_writes().inc();
  }

  const bool wrote_ok = util::append_file_durable(path_, frame);
  if (torn || !wrote_ok) {
    // The log tail may now hold a partial frame. Readers stop there; we
    // recover by laying a fresh full log on the next append.
    have_full_ = false;
    NLARM_WARN << "delta-log append to " << path_
               << (torn ? " torn by fault injection" : " failed")
               << "; log will be compacted on the next append";
    return false;
  }
  tail_version_ = delta.version;
  delta_bytes_since_full_ += frame.size();
  ++deltas_since_full_;
  ++frames_;
  obs::metrics::snapshot_bytes_written().inc(frame.size());
  return true;
}

DeltaLogReader::DeltaLogReader(std::string path) : path_(std::move(path)) {}

DeltaLogReader::~DeltaLogReader() { stop_decode_worker(); }

const ClusterSnapshot& DeltaLogReader::snapshot() const {
  NLARM_CHECK(have_state_) << "delta log '" << path_
                           << "' has not yielded a snapshot yet";
  return state_;
}

bool DeltaLogReader::decode_frame(std::uint8_t kind, std::string_view payload,
                                  DecodedFrame& out) const {
  out.kind = kind;
  if (kind == kKindFull) {
    out.full = decode_snapshot_binary(payload);
    return true;
  }
  if (kind != kKindDelta) {
    NLARM_WARN << "delta log '" << path_ << "': unknown frame kind "
               << static_cast<int>(kind);
    return false;
  }
  util::ByteReader reader(payload);
  out.base_version = reader.u64();
  out.version = reader.u64();
  out.time = reader.f64();
  out.n = static_cast<std::size_t>(reader.u32());
  const std::uint8_t flags = reader.u8();
  out.livehosts_changed = (flags & kDeltaFlagLivehosts) != 0;
  if (out.livehosts_changed) {
    out.livehosts.resize(out.n);
    for (std::size_t i = 0; i < out.n; ++i) out.livehosts[i] = reader.u8();
  }
  const std::uint64_t dirty_nodes = reader.varint();
  for (std::uint64_t i = 0; i < dirty_nodes; ++i) {
    NodeSnapshot node = codec::decode_node(reader);
    NLARM_CHECK(node.spec.id >= 0 &&
                static_cast<std::size_t>(node.spec.id) < out.n)
        << "delta frame node id " << node.spec.id << " out of range";
    out.nodes.push_back(std::move(node));
  }
  const std::uint64_t dirty_pairs = reader.varint();
  for (std::uint64_t i = 0; i < dirty_pairs; ++i) {
    DecodedFrame::PairValues pair;
    pair.u = static_cast<cluster::NodeId>(reader.varint());
    pair.v = static_cast<cluster::NodeId>(reader.varint());
    NLARM_CHECK(pair.u >= 0 && pair.v >= 0 &&
                static_cast<std::size_t>(pair.u) < out.n &&
                static_cast<std::size_t>(pair.v) < out.n && pair.u != pair.v)
        << "delta frame pair (" << pair.u << ", " << pair.v
        << ") out of range";
    for (double& value : pair.values) value = reader.f64();
    out.pairs.push_back(pair);
  }
  NLARM_CHECK(reader.remaining() == 0)
      << reader.remaining() << " trailing byte(s) in delta frame";
  return true;
}

bool DeltaLogReader::apply_decoded(DecodedFrame& frame) {
  if (frame.kind == kKindFull) {
    state_ = std::move(frame.full);
    have_state_ = true;
    pending_.full = true;
    pending_.version = state_.version;
    return true;
  }
  if (!have_state_) {
    // A delta with nothing to apply it to (log started mid-stream); skip
    // it — the writer always lays a full frame first, so this only
    // happens on logs truncated by hand.
    return false;
  }
  if (frame.base_version != state_.version ||
      frame.n != state_.nodes.size()) {
    NLARM_WARN << "delta log '" << path_ << "': frame base "
               << frame.base_version << " does not chain onto state "
               << state_.version;
    return false;
  }
  if (frame.livehosts_changed) {
    for (std::size_t i = 0; i < frame.n; ++i) {
      state_.livehosts[i] = frame.livehosts[i] != 0;
    }
    pending_.livehosts_changed = true;
  }
  for (NodeSnapshot& node : frame.nodes) {
    const auto id = static_cast<std::size_t>(node.spec.id);
    state_.nodes[id] = std::move(node);
    pending_.dirty_nodes.push_back(static_cast<cluster::NodeId>(id));
  }
  for (const DecodedFrame::PairValues& pair : frame.pairs) {
    const auto uu = static_cast<std::size_t>(pair.u);
    const auto vv = static_cast<std::size_t>(pair.v);
    state_.net.latency_us[uu][vv] = pair.values[0];
    state_.net.latency_us[vv][uu] = pair.values[1];
    state_.net.latency_5min_us[uu][vv] = pair.values[2];
    state_.net.latency_5min_us[vv][uu] = pair.values[3];
    state_.net.bandwidth_mbps[uu][vv] = pair.values[4];
    state_.net.bandwidth_mbps[vv][uu] = pair.values[5];
    state_.net.peak_mbps[uu][vv] = pair.values[6];
    state_.net.peak_mbps[vv][uu] = pair.values[7];
    pending_.dirty_pairs.emplace_back(std::min(pair.u, pair.v),
                                      std::max(pair.u, pair.v));
  }
  state_.time = frame.time;
  state_.version = frame.version;
  pending_.version = frame.version;
  return true;
}

DeltaLogReader::DecodeOutcome DeltaLogReader::decode_outcome(
    std::size_t offset, std::string_view payload,
    std::uint32_t stored_crc) const {
  DecodeOutcome out;
  out.offset = offset;
  out.crc_ok = util::crc32(payload) == stored_crc;
  if (!out.crc_ok) return out;
  try {
    out.known_kind = decode_frame(static_cast<std::uint8_t>(payload[0]),
                                  payload.substr(1), out.frame);
  } catch (const util::CheckError& error) {
    out.decode_error = true;
    out.error = error.what();
  }
  return out;
}

void DeltaLogReader::set_decode_ahead(bool enabled) {
  if (enabled == decode_ahead_) return;
  decode_ahead_ = enabled;
  // The worker starts lazily on the next poll; disabling stops it now.
  if (!enabled) stop_decode_worker();
}

void DeltaLogReader::start_decode_worker() {
  if (decode_thread_.joinable()) return;
  decode_stop_ = false;
  decode_thread_ = std::thread([this] { decode_worker_main(); });
}

void DeltaLogReader::stop_decode_worker() {
  if (!decode_thread_.joinable()) return;
  drain_decode();  // never abandon a job whose payload view may die
  {
    std::lock_guard<std::mutex> lock(decode_mutex_);
    decode_stop_ = true;
  }
  decode_cv_.notify_all();
  decode_thread_.join();
  decode_stop_ = false;
}

void DeltaLogReader::submit_decode(std::size_t offset,
                                   std::string_view payload,
                                   std::uint32_t stored_crc) {
  {
    std::lock_guard<std::mutex> lock(decode_mutex_);
    job_offset_ = offset;
    job_payload_ = payload;
    job_crc_ = stored_crc;
    job_ready_ = true;
    job_in_flight_ = true;
  }
  decode_cv_.notify_all();
  obs::metrics::refresh_decode_ahead_depth().set(1.0);
}

DeltaLogReader::DecodeOutcome DeltaLogReader::take_decode() {
  DecodeOutcome out;
  {
    std::unique_lock<std::mutex> lock(decode_mutex_);
    decode_cv_.wait(lock, [this] { return result_ready_; });
    out = std::move(decode_result_);
    decode_result_ = DecodeOutcome{};
    result_ready_ = false;
    job_in_flight_ = false;
  }
  obs::metrics::refresh_decode_ahead_depth().set(0.0);
  obs::metrics::refresh_decode_ahead_frames().inc();
  return out;
}

void DeltaLogReader::drain_decode() {
  {
    std::unique_lock<std::mutex> lock(decode_mutex_);
    if (!job_in_flight_) return;
    decode_cv_.wait(lock, [this] { return result_ready_; });
    decode_result_ = DecodeOutcome{};
    result_ready_ = false;
    job_in_flight_ = false;
  }
  obs::metrics::refresh_decode_ahead_depth().set(0.0);
}

void DeltaLogReader::decode_worker_main() {
  std::unique_lock<std::mutex> lock(decode_mutex_);
  for (;;) {
    decode_cv_.wait(lock, [this] { return decode_stop_ || job_ready_; });
    if (decode_stop_) return;
    const std::size_t offset = job_offset_;
    const std::string_view payload = job_payload_;
    const std::uint32_t crc = job_crc_;
    job_ready_ = false;
    lock.unlock();
    // decode_outcome only reads the payload bytes and const members, so it
    // runs safely while the main thread mutates state_.
    DecodeOutcome out = decode_outcome(offset, payload, crc);
    lock.lock();
    decode_result_ = std::move(out);
    result_ready_ = true;
    decode_cv_.notify_all();
  }
}

int DeltaLogReader::poll() {
  util::MappedFile mapped = util::MappedFile::open(path_);
  std::string buffer;
  std::string_view bytes;
  if (mapped.valid()) {
    bytes = mapped.view();
  } else {
    if (!util::read_file(path_, buffer)) return 0;
    bytes = buffer;
  }

  if (bytes.size() < offset_) {
    // The writer compacted (file shrank): replay from the top. The full
    // frame at the head makes the pending delta a full rebuild anyway.
    offset_ = 0;
    have_head_id_ = false;
  }
  if (bytes.size() < last_size_) {
    // The file shrank relative to the PREVIOUS poll even though our cursor
    // still fits — the writer compacted and then re-appended between our
    // size check and this frame read. Appends never shrink a log, so any
    // size decrease means replacement: the bytes at our cursor belong to a
    // different file generation and must not be replayed as a continuation.
    // (The head-identity check below catches most of these, but cannot
    // when the new head frame is itself torn or still partially written.)
    offset_ = 0;
    have_head_id_ = false;
  }
  last_size_ = bytes.size();

  // A compaction can also replace the log with an equal-or-larger file.
  // Identify the head frame by its length plus its last payload bytes:
  // when that changes between polls, the file we were tailing is gone —
  // replay from the top. The frame-level CRC would NOT work here: a full
  // frame's payload ends with the snapshot codec's own CRC32, and a CRC
  // over any message that ends with its own CRC lands on a constant
  // residue — every full frame stores the same outer CRC. (Integrity is
  // unaffected; only uniqueness is lost.) The trailing payload bytes are
  // the inner CRC itself, which does vary with content.
  if (bytes.size() >= 9) {
    util::ByteReader head(bytes.data(), bytes.size());
    if (head.u32() == kFrameMagic) {
      const std::uint32_t head_len = head.u32();
      if (head_len >= 4 &&
          8 + static_cast<std::size_t>(head_len) + 4 <= bytes.size()) {
        std::uint32_t head_tail;
        std::memcpy(&head_tail, bytes.data() + 8 + head_len - 4, 4);
        const std::uint64_t id =
            (static_cast<std::uint64_t>(head_len) << 32) | head_tail;
        if (have_head_id_ && id != head_id_) offset_ = 0;
        head_id_ = id;
        have_head_id_ = true;
      }
    }
  }

  int applied = 0;
  // A compaction can also replace the log with a *larger* file, leaving
  // our cursor pointing into the middle of unrelated bytes. The first
  // frame of a poll is therefore allowed one bad read: it resets the
  // cursor and replays from the head (whose full frame rebuilds state).
  // Bad frames after a good one in the same poll are real corruption.
  bool may_rescan = offset_ > 0;

  enum class HeadStatus { kOk, kBadMagic, kTorn };
  struct HeaderInfo {
    HeadStatus status = HeadStatus::kTorn;
    std::size_t frame_bytes = 0;
    std::string_view payload;
    std::uint32_t stored_crc = 0;
  };
  auto parse_header = [&bytes](std::size_t offset) {
    HeaderInfo info;
    if (offset + 9 > bytes.size()) return info;  // magic+length+≥1 payload
    util::ByteReader header(bytes.data() + offset, bytes.size() - offset);
    if (header.u32() != kFrameMagic) {
      info.status = HeadStatus::kBadMagic;
      return info;
    }
    const std::uint32_t payload_len = header.u32();
    const std::size_t frame_bytes =
        8 + static_cast<std::size_t>(payload_len) + 4;
    if (payload_len == 0 || offset + frame_bytes > bytes.size()) {
      return info;  // torn tail (writer mid-append or crashed)
    }
    info.status = HeadStatus::kOk;
    info.frame_bytes = frame_bytes;
    info.payload = bytes.substr(offset + 8, payload_len);
    std::memcpy(&info.stored_crc, bytes.data() + offset + 8 + payload_len, 4);
    return info;
  };

  const bool pipelined = decode_ahead_;
  if (pipelined) start_decode_worker();
  bool inflight = false;  ///< the worker holds the frame at inflight_offset
  std::size_t inflight_offset = 0;

  while (offset_ + 9 <= bytes.size()) {
    const HeaderInfo head = parse_header(offset_);
    if (head.status == HeadStatus::kBadMagic) {
      if (inflight) {
        drain_decode();  // stale submission from before a rescan
        inflight = false;
      }
      if (may_rescan) {
        may_rescan = false;
        offset_ = 0;
        continue;
      }
      ++bad_frames_;
      obs::metrics::snapshot_crc_failures().inc();
      NLARM_WARN << "delta log '" << path_ << "': bad frame magic at offset "
                 << offset_ << "; stopping replay";
      break;
    }
    if (head.status == HeadStatus::kTorn) break;  // retried next poll

    DecodeOutcome outcome;
    if (inflight && inflight_offset == offset_) {
      outcome = take_decode();
      inflight = false;
    } else {
      if (inflight) {
        drain_decode();  // submission no longer at the cursor (rescan)
        inflight = false;
      }
      outcome = decode_outcome(offset_, head.payload, head.stored_crc);
    }

    if (!outcome.crc_ok) {
      if (may_rescan) {
        may_rescan = false;
        offset_ = 0;
        continue;
      }
      ++bad_frames_;
      obs::metrics::snapshot_crc_failures().inc();
      NLARM_WARN << "delta log '" << path_ << "': CRC mismatch at offset "
                 << offset_ << "; stopping replay";
      break;
    }
    may_rescan = false;
    if (outcome.decode_error) {
      ++bad_frames_;
      NLARM_WARN << "delta log '" << path_ << "': bad frame at offset "
                 << offset_ << ": " << outcome.error;
      break;
    }

    // Prime the pipeline: hand frame k+1's CRC + decode to the worker
    // before applying frame k, so the two overlap.
    if (pipelined) {
      const std::size_t next = offset_ + head.frame_bytes;
      const HeaderInfo next_head = parse_header(next);
      if (next_head.status == HeadStatus::kOk) {
        submit_decode(next, next_head.payload, next_head.stored_crc);
        inflight = true;
        inflight_offset = next;
      }
    }

    const bool frame_ok =
        outcome.known_kind && apply_decoded(outcome.frame);
    offset_ += head.frame_bytes;
    if (frame_ok) {
      ++applied;
      ++frames_applied_;
    }
  }
  // The worker's payload view dies with this poll's mapping: drain any
  // submission the loop exited past (torn tail, bad frame, end of log).
  if (inflight) drain_decode();
  // Follower-lag telemetry: the cursor vs the file size at this poll is
  // how far behind the log's tail this reader runs.
  obs::metrics::delta_log_tail_bytes().set(static_cast<double>(offset_));
  return applied;
}

SnapshotDelta DeltaLogReader::drain_delta() {
  SnapshotDelta delta = std::move(pending_);
  pending_ = SnapshotDelta{};
  delta.base_version = drain_base_version_;
  if (delta.version == 0 && have_state_) delta.version = state_.version;
  drain_base_version_ = have_state_ ? state_.version : 0;
  delta.normalize();
  return delta;
}

ClusterSnapshot replay_delta_log(const std::string& path) {
  DeltaLogReader reader(path);
  reader.poll();
  NLARM_CHECK(reader.have_snapshot())
      << "delta log '" << path << "' holds no usable snapshot";
  return reader.snapshot();
}

}  // namespace nlarm::monitor
