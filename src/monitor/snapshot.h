// Monitoring snapshots: what the Node Allocator actually sees.
//
// The allocator never reads simulator ground truth; it consumes a
// ClusterSnapshot assembled from what the daemons wrote to the shared
// store — complete with sampling noise, staleness and missing entries.
// For unit tests and idealized baselines, make_ground_truth_snapshot()
// builds the same structure straight from the simulator state.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "net/network_model.h"
#include "util/flat_matrix.h"

namespace nlarm::monitor {

/// The 1/5/15-minute running means NodeStateD maintains (§4).
struct RunningMeans {
  double one_min = 0.0;
  double five_min = 0.0;
  double fifteen_min = 0.0;
};

/// Per-node record written by that node's NodeStateD.
struct NodeSnapshot {
  cluster::NodeSpec spec;     ///< static attributes (queried once)
  double sample_time = -1.0;  ///< when the dynamic values were sampled; <0 = never
  bool valid = false;         ///< record exists in the store

  // Instantaneous dynamic attributes.
  double cpu_load = 0.0;
  double cpu_util = 0.0;
  double mem_used_gb = 0.0;
  double net_flow_mbps = 0.0;
  int users = 0;

  // Running means (Table 1's "1, 5 and 15 min" rows).
  RunningMeans cpu_load_avg;
  RunningMeans cpu_util_avg;
  RunningMeans net_flow_avg;
  RunningMeans mem_avail_avg;

  double mem_available_gb() const {
    return spec.total_mem_gb > mem_used_gb ? spec.total_mem_gb - mem_used_gb
                                           : 0.0;
  }
};

/// Pairwise network state written by LatencyD/BandwidthD.
struct NetSnapshot {
  /// Square row-major matrices indexed by NodeId; diagonal entries are 0. A
  /// value of <0 means "never measured".
  util::FlatMatrix latency_us;        ///< 1-min mean
  util::FlatMatrix latency_5min_us;   ///< 5-min mean
  util::FlatMatrix bandwidth_mbps;    ///< instantaneous
  util::FlatMatrix peak_mbps;         ///< per-pair capacity

  int size() const { return static_cast<int>(latency_us.size()); }
};

struct ClusterSnapshot {
  double time = 0.0;               ///< assembly time
  /// Monotone change counter stamped by the assembling MonitorStore; 0 means
  /// "unversioned" (hand-built snapshots) and disables every memoization
  /// keyed on it. Two snapshots from the same process with equal non-zero
  /// versions carry identical monitored state.
  std::uint64_t version = 0;
  std::vector<bool> livehosts;     ///< LivehostsD's view
  std::vector<NodeSnapshot> nodes;
  NetSnapshot net;

  int size() const { return static_cast<int>(nodes.size()); }

  /// Nodes that are live and have a valid node record.
  std::vector<cluster::NodeId> usable_nodes() const;
};

/// Builds a noise-free snapshot directly from ground truth (running means ==
/// instantaneous values). Used by tests and by the idealized baselines.
ClusterSnapshot make_ground_truth_snapshot(const cluster::Cluster& cluster,
                                           const net::NetworkModel& network,
                                           double now);

/// Allocates an n×n matrix filled with `fill` (diagonal 0).
util::FlatMatrix make_matrix(std::size_t n, double fill);

/// Invalidates node records older than `max_age_seconds` (relative to
/// snapshot.time). A node whose NodeStateD died keeps serving its last
/// record through the store forever; this filter stops the allocator from
/// trusting it. Returns the number of records invalidated.
int apply_staleness_filter(ClusterSnapshot& snapshot,
                           double max_age_seconds);

}  // namespace nlarm::monitor
