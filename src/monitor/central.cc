#include "monitor/central.h"

#include "obs/catalog.h"
#include "util/check.h"
#include "util/logging.h"

namespace nlarm::monitor {

CentralMonitor::CentralMonitor(const cluster::Cluster& cluster,
                               cluster::NodeId master_host,
                               cluster::NodeId slave_host,
                               double supervision_period)
    : cluster_(cluster),
      master_host_(master_host),
      slave_host_(slave_host),
      period_(supervision_period) {
  NLARM_CHECK(master_host >= 0 && master_host < cluster.size())
      << "bad master host";
  NLARM_CHECK(slave_host >= 0 && slave_host < cluster.size())
      << "bad slave host";
  NLARM_CHECK(master_host != slave_host)
      << "master and slave must run on different nodes";
  NLARM_CHECK(supervision_period > 0.0) << "supervision period must be > 0";
}

void CentralMonitor::supervise(Daemon* daemon) {
  NLARM_CHECK(daemon != nullptr) << "null daemon";
  daemons_.push_back(daemon);
}

void CentralMonitor::start(sim::Simulation& sim) {
  sim_ = &sim;
  timer_ = sim.schedule_every(period_, period_,
                              [this]() { supervision_tick(); });
}

void CentralMonitor::fail_master() { master_process_up_ = false; }
void CentralMonitor::fail_slave() { slave_process_up_ = false; }

bool CentralMonitor::master_alive() const {
  return master_process_up_ && cluster_.node(master_host_).dyn.alive;
}

bool CentralMonitor::slave_alive() const {
  return slave_process_up_ && cluster_.node(slave_host_).dyn.alive;
}

cluster::NodeId CentralMonitor::pick_host() const {
  cluster::NodeId fallback = cluster::kInvalidNode;
  for (cluster::NodeId n = 0; n < cluster_.size(); ++n) {
    if (!cluster_.node(n).dyn.alive) continue;
    if (fallback == cluster::kInvalidNode) fallback = n;
    if (n != master_host_ && n != slave_host_) return n;
  }
  return fallback;
}

void CentralMonitor::relaunch_dead_daemons() {
  for (Daemon* daemon : daemons_) {
    if (daemon->running()) continue;
    cluster::NodeId new_host = daemon->host();
    if (!cluster_.node(new_host).dyn.alive) {
      new_host = pick_host();
      if (new_host == cluster::kInvalidNode) continue;  // nothing alive
      daemon->set_host(new_host);
    }
    daemon->launch(*sim_);
    ++relaunches_;
    obs::metrics::monitor_daemon_relaunches().inc();
    NLARM_INFO << "central monitor: relaunched daemon " << daemon->name()
               << " on node " << new_host;
  }
}

void CentralMonitor::supervision_tick() {
  if (abandoned_) return;

  int running = 0;
  for (const Daemon* daemon : daemons_) {
    if (daemon->running()) ++running;
  }
  obs::metrics::monitor_daemons_running().set(static_cast<double>(running));

  if (!master_alive()) {
    if (!slave_alive()) {
      // Simultaneous failure: daemons keep running but are no longer
      // supervised (paper §4).
      abandoned_ = true;
      timer_.cancel();
      obs::metrics::monitor_abandoned().set(1.0);
      NLARM_WARN << "central monitor abandoned: master and slave both dead";
      return;
    }
    // Slave detects the dead master and promotes itself.
    master_host_ = slave_host_;
    master_process_up_ = true;
    ++promotions_;
    obs::metrics::monitor_promotions().inc();
    const cluster::NodeId new_slave = pick_host();
    if (new_slave != cluster::kInvalidNode && new_slave != master_host_) {
      slave_host_ = new_slave;
      slave_process_up_ = true;
    } else {
      slave_process_up_ = false;
    }
    NLARM_INFO << "central monitor: slave promoted to master on node "
               << master_host_ << ", new slave on node " << slave_host_;
  } else if (!slave_alive()) {
    // Master replaces the dead slave.
    const cluster::NodeId new_slave = pick_host();
    if (new_slave != cluster::kInvalidNode && new_slave != master_host_) {
      slave_host_ = new_slave;
      slave_process_up_ = true;
      NLARM_INFO << "central monitor: new slave launched on node "
                 << new_slave;
    }
  }

  relaunch_dead_daemons();
}

}  // namespace nlarm::monitor
