#include "monitor/daemons.h"

#include <algorithm>
#include <utility>

#include "obs/catalog.h"
#include "util/check.h"

namespace nlarm::monitor {

Daemon::Daemon(std::string name, const cluster::Cluster& cluster,
               cluster::NodeId host, double period_seconds)
    : name_(std::move(name)),
      cluster_(cluster),
      host_(host),
      period_(period_seconds) {
  NLARM_CHECK(period_seconds > 0.0) << "daemon period must be positive";
  NLARM_CHECK(host >= 0 && host < cluster.size())
      << "daemon host " << host << " out of range";
}

Daemon::~Daemon() { timer_.cancel(); }

void Daemon::launch(sim::Simulation& sim) {
  timer_.cancel();
  sim_ = &sim;
  alive_ = true;
  stalled_ = false;  // a (re)launched process starts fresh
  ++launches_;
  timer_ = sim.schedule_every(period_, period_, [this]() { on_timer(); });
}

void Daemon::kill() {
  alive_ = false;
  timer_.cancel();
}

bool Daemon::running() const {
  return alive_ && cluster_.node(host_).dyn.alive;
}

void Daemon::set_host(cluster::NodeId host) {
  NLARM_CHECK(host >= 0 && host < cluster_.size()) << "bad host " << host;
  host_ = host;
}

void Daemon::on_timer() {
  if (!alive_) return;
  // A dead host silently stops its daemons; CentralMonitor relaunches them.
  if (!cluster_.node(host_).dyn.alive) {
    kill();
    return;
  }
  // Stalled: the process looks alive (timer keeps firing, running() stays
  // true) but produces nothing — its records age out instead.
  if (stalled_) return;
  ++ticks_;
  obs::metrics::monitor_daemon_ticks().inc();
  tick(sim_->now());
}

LivehostsD::LivehostsD(std::string name, const cluster::Cluster& cluster,
                       cluster::NodeId host, double period_seconds,
                       MonitorStore& store)
    : Daemon(std::move(name), cluster, host, period_seconds), store_(store) {}

void LivehostsD::tick(double now) {
  std::vector<bool> hosts(static_cast<std::size_t>(cluster().size()));
  for (cluster::NodeId n = 0; n < cluster().size(); ++n) {
    hosts[static_cast<std::size_t>(n)] = cluster().node(n).dyn.alive;
  }
  store_.write_livehosts(now, std::move(hosts));
}

NodeStateD::NodeStateD(std::string name, const cluster::Cluster& cluster,
                       cluster::NodeId target, double period_seconds,
                       MonitorStore& store, sim::Rng rng, double sample_noise)
    : Daemon(std::move(name), cluster, target, period_seconds),
      target_(target),
      store_(store),
      rng_(rng),
      sample_noise_(sample_noise) {
  NLARM_CHECK(sample_noise >= 0.0) << "negative sample noise";
}

double NodeStateD::noisy(double value) {
  if (sample_noise_ == 0.0) return value;
  return std::max(0.0, value * rng_.lognormal(0.0, sample_noise_));
}

void NodeStateD::tick(double now) {
  const cluster::Node& node = cluster().node(target_);

  NodeSnapshot record;
  record.spec = node.spec;
  record.cpu_load = noisy(node.dyn.total_load());
  record.cpu_util = std::min(1.0, noisy(node.dyn.cpu_util));
  record.mem_used_gb = std::min(node.spec.total_mem_gb,
                                noisy(node.dyn.mem_used_gb));
  record.net_flow_mbps = noisy(node.dyn.net_flow_mbps);
  record.users = node.dyn.users;

  load_avg_.add(now, record.cpu_load);
  util_avg_.add(now, record.cpu_util);
  flow_avg_.add(now, record.net_flow_mbps);
  mem_avail_avg_.add(now, node.spec.total_mem_gb - record.mem_used_gb);

  record.cpu_load_avg = {load_avg_.one_minute(), load_avg_.five_minutes(),
                         load_avg_.fifteen_minutes()};
  record.cpu_util_avg = {util_avg_.one_minute(), util_avg_.five_minutes(),
                         util_avg_.fifteen_minutes()};
  record.net_flow_avg = {flow_avg_.one_minute(), flow_avg_.five_minutes(),
                         flow_avg_.fifteen_minutes()};
  record.mem_avail_avg = {mem_avail_avg_.one_minute(),
                          mem_avail_avg_.five_minutes(),
                          mem_avail_avg_.fifteen_minutes()};

  store_.write_node_record(now, record);
  obs::metrics::monitor_node_samples().inc();
}

std::vector<std::vector<std::pair<cluster::NodeId, cluster::NodeId>>>
tournament_rounds(int node_count) {
  NLARM_CHECK(node_count >= 2) << "tournament needs >= 2 nodes";
  // Circle method. For odd n, add a dummy; pairs with the dummy are byes.
  const int n = (node_count % 2 == 0) ? node_count : node_count + 1;
  const int dummy = (node_count % 2 == 0) ? -1 : node_count;
  std::vector<int> ring(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ring[static_cast<std::size_t>(i)] = i;

  std::vector<std::vector<std::pair<cluster::NodeId, cluster::NodeId>>> rounds;
  rounds.reserve(static_cast<std::size_t>(n - 1));
  for (int r = 0; r < n - 1; ++r) {
    std::vector<std::pair<cluster::NodeId, cluster::NodeId>> round;
    for (int i = 0; i < n / 2; ++i) {
      const int a = ring[static_cast<std::size_t>(i)];
      const int b = ring[static_cast<std::size_t>(n - 1 - i)];
      if (a == dummy || b == dummy) continue;
      round.emplace_back(static_cast<cluster::NodeId>(std::min(a, b)),
                         static_cast<cluster::NodeId>(std::max(a, b)));
    }
    rounds.push_back(std::move(round));
    // Rotate all but the first element.
    std::rotate(ring.begin() + 1, ring.end() - 1, ring.end());
  }
  return rounds;
}

PairProbeDaemon::PairProbeDaemon(std::string name,
                                 const cluster::Cluster& cluster,
                                 cluster::NodeId host, double period_seconds,
                                 double round_spacing_seconds,
                                 const net::NetworkModel& network,
                                 MonitorStore& store, sim::Rng rng)
    : Daemon(std::move(name), cluster, host, period_seconds),
      round_spacing_(round_spacing_seconds),
      network_(network),
      store_(store),
      rng_(rng),
      rounds_(tournament_rounds(cluster.size())) {
  NLARM_CHECK(round_spacing_seconds >= 0.0) << "negative round spacing";
  NLARM_CHECK(round_spacing_seconds *
                  static_cast<double>(rounds_.size()) <
              period_seconds)
      << "rounds do not fit in the probe period";
}

void PairProbeDaemon::enable_sparse(const cluster::Topology& topology,
                                    double reconstruct_min_age_s) {
  NLARM_CHECK(reconstruct_min_age_s >= 0.0)
      << "negative reconstruction age threshold";
  NLARM_CHECK(topology.node_count() == cluster().size())
      << "sparse topology covers " << topology.node_count() << " nodes, "
      << "cluster has " << cluster().size();
  estimator_ = std::make_unique<SparseNetworkEstimator>(topology);
  reconstruct_min_age_s_ = reconstruct_min_age_s;
}

void PairProbeDaemon::tick(double now) {
  if (estimator_ != nullptr) {
    // Sparse mode: ONE round per period — n/2 probes, O(V) traffic — then
    // synthesize values for whatever the rotating schedule has left stale.
    run_round(sparse_cursor_ % rounds_.size());
    ++sparse_cursor_;
    reconstruct_stale(now);
    obs::metrics::probe_rounds().inc();
    const double total_pairs =
        static_cast<double>(cluster().size()) *
        static_cast<double>(cluster().size() - 1) / 2.0;
    if (total_pairs > 0.0) {
      obs::metrics::probe_traffic_fraction().set(
          static_cast<double>(rounds_.front().size()) / total_pairs);
    }
    return;
  }
  // Round 0 fires now; later rounds are offset so only n/2 pairs measure at
  // a time (the paper's schedule avoids perturbing the network it measures).
  (void)now;
  for (std::size_t r = 0; r < rounds_.size(); ++r) {
    const double offset = round_spacing_ * static_cast<double>(r);
    if (offset == 0.0) {
      run_round(r);
    } else {
      simulation()->schedule_in(offset, [this, r]() {
        if (running()) run_round(r);
      });
    }
  }
}

void PairProbeDaemon::run_round(std::size_t round_index) {
  const double now = simulation()->now();
  for (const auto& [u, v] : rounds_[round_index]) {
    if (!cluster().node(u).dyn.alive || !cluster().node(v).dyn.alive) {
      continue;
    }
    probe_pair(now, u, v);
    obs::metrics::monitor_pair_probes().inc();
    if (estimator_ != nullptr) {
      ++pairs_measured_;
      obs::metrics::probe_pairs_measured().inc();
    }
  }
}

void PairProbeDaemon::reconstruct_stale(double now) {
  const int n = cluster().size();
  for (cluster::NodeId u = 0; u < n; ++u) {
    if (!cluster().node(u).dyn.alive) continue;
    for (cluster::NodeId v = u + 1; v < n; ++v) {
      if (!cluster().node(v).dyn.alive) continue;
      if (store_.pair_staleness(now, u, v) <= reconstruct_min_age_s_) {
        continue;
      }
      if (reconstruct_pair(now, u, v)) {
        ++pairs_reconstructed_;
        obs::metrics::probe_pairs_reconstructed().inc();
      }
    }
  }
}

bool PairProbeDaemon::reconstruct_pair(double now, cluster::NodeId u,
                                       cluster::NodeId v) {
  (void)now;
  (void)u;
  (void)v;
  return false;
}

LatencyD::LatencyD(std::string name, const cluster::Cluster& cluster,
                   cluster::NodeId host, double period_seconds,
                   double round_spacing_seconds,
                   const net::NetworkModel& network, MonitorStore& store,
                   sim::Rng rng)
    : PairProbeDaemon(std::move(name), cluster, host, period_seconds,
                      round_spacing_seconds, network, store, std::move(rng)) {
  const auto n = static_cast<std::size_t>(cluster.size());
  one_min_.reserve(n);
  five_min_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<util::WindowedMean> row1;
    std::vector<util::WindowedMean> row5;
    row1.reserve(n);
    row5.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      row1.emplace_back(60.0);
      row5.emplace_back(300.0);
    }
    one_min_.push_back(std::move(row1));
    five_min_.push_back(std::move(row5));
  }
  last_real_five_min_.assign(n, std::vector<double>(n, -1.0));
}

util::WindowedMean& LatencyD::window(cluster::NodeId u, cluster::NodeId v,
                                     bool five_min) {
  const auto a = static_cast<std::size_t>(std::min(u, v));
  const auto b = static_cast<std::size_t>(std::max(u, v));
  return five_min ? five_min_[a][b] : one_min_[a][b];
}

void LatencyD::probe_pair(double now, cluster::NodeId u, cluster::NodeId v) {
  const double measured = network().measure_latency_us(u, v, rng());
  window(u, v, false).add(now, measured);
  window(u, v, true).add(now, measured);
  const double one = window(u, v, false).value();
  const double five = window(u, v, true).value();
  store().write_latency(now, u, v, one, five);
  store().write_latency(now, v, u, one, five);
  const auto a = static_cast<std::size_t>(std::min(u, v));
  const auto b = static_cast<std::size_t>(std::max(u, v));
  last_real_five_min_[a][b] = five;
  if (auto* est = estimator()) est->observe_latency(u, v, measured);
}

bool LatencyD::reconstruct_pair(double now, cluster::NodeId u,
                                cluster::NodeId v) {
  auto* est = estimator();
  if (est == nullptr || !est->latency_ready(u, v)) return false;
  const double reconstructed = est->estimate_latency_us(u, v);
  // The reconstruction only replaces the 1-minute instantaneous value; the
  // 5-minute entry keeps the last REAL probe's mean, so the degradation
  // layer's stale-pair fallback stays anchored to measurements and absorbs
  // reconstruction error. Before any real probe, the reconstruction is the
  // best 5-minute guess too.
  const auto a = static_cast<std::size_t>(std::min(u, v));
  const auto b = static_cast<std::size_t>(std::max(u, v));
  const double real_five = last_real_five_min_[a][b];
  const double five = real_five >= 0.0 ? real_five : reconstructed;
  store().write_latency(now, u, v, reconstructed, five);
  store().write_latency(now, v, u, reconstructed, five);
  return true;
}

BandwidthD::BandwidthD(std::string name, const cluster::Cluster& cluster,
                       cluster::NodeId host, double period_seconds,
                       double round_spacing_seconds,
                       const net::NetworkModel& network, MonitorStore& store,
                       sim::Rng rng)
    : PairProbeDaemon(std::move(name), cluster, host, period_seconds,
                      round_spacing_seconds, network, store, std::move(rng)) {
  const auto n = static_cast<std::size_t>(cluster.size());
  last_real_peak_.assign(n, std::vector<double>(n, -1.0));
}

void BandwidthD::probe_pair(double now, cluster::NodeId u,
                            cluster::NodeId v) {
  const double measured = network().measure_bandwidth_mbps(u, v, rng());
  const double peak = network().peak_bandwidth_mbps(u, v);
  store().write_bandwidth(now, u, v, measured, peak);
  store().write_bandwidth(now, v, u, measured, peak);
  const auto a = static_cast<std::size_t>(std::min(u, v));
  const auto b = static_cast<std::size_t>(std::max(u, v));
  last_real_peak_[a][b] = peak;
  if (auto* est = estimator()) est->observe_bandwidth(u, v, measured);
}

bool BandwidthD::reconstruct_pair(double now, cluster::NodeId u,
                                  cluster::NodeId v) {
  auto* est = estimator();
  if (est == nullptr || !est->bandwidth_ready(u, v)) return false;
  const double reconstructed = est->estimate_bandwidth_mbps(u, v);
  const auto a = static_cast<std::size_t>(std::min(u, v));
  const auto b = static_cast<std::size_t>(std::max(u, v));
  const double real_peak = last_real_peak_[a][b];
  const double peak = real_peak >= 0.0 ? real_peak : est->path_peak_mbps(u, v);
  store().write_bandwidth(now, u, v, reconstructed, peak);
  store().write_bandwidth(now, v, u, reconstructed, peak);
  return true;
}

}  // namespace nlarm::monitor
