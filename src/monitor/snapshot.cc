#include "monitor/snapshot.h"

#include <algorithm>

#include "obs/catalog.h"
#include "util/check.h"
#include "util/logging.h"

namespace nlarm::monitor {

std::vector<cluster::NodeId> ClusterSnapshot::usable_nodes() const {
  std::vector<cluster::NodeId> usable;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const bool live = i < livehosts.size() && livehosts[i];
    if (live && nodes[i].valid) {
      usable.push_back(static_cast<cluster::NodeId>(i));
    }
  }
  return usable;
}

int apply_staleness_filter(ClusterSnapshot& snapshot,
                           double max_age_seconds) {
  NLARM_CHECK(max_age_seconds > 0.0) << "staleness limit must be positive";
  int invalidated = 0;
  double oldest_valid_age = 0.0;
  for (NodeSnapshot& node : snapshot.nodes) {
    if (!node.valid) continue;
    const double age = snapshot.time - node.sample_time;
    if (age > max_age_seconds) {
      node.valid = false;
      ++invalidated;
    } else {
      oldest_valid_age = std::max(oldest_valid_age, age);
    }
  }
  obs::metrics::monitor_record_age_seconds().set(oldest_valid_age);
  if (invalidated > 0) {
    obs::metrics::monitor_stale_records().inc(
        static_cast<std::uint64_t>(invalidated));
    NLARM_DEBUG << "staleness filter invalidated " << invalidated
                << " node record(s) older than " << max_age_seconds << "s";
  }
  return invalidated;
}

util::FlatMatrix make_matrix(std::size_t n, double fill) {
  util::FlatMatrix m(n, fill);
  m.zero_diagonal();
  return m;
}

ClusterSnapshot make_ground_truth_snapshot(const cluster::Cluster& cluster,
                                           const net::NetworkModel& network,
                                           double now) {
  ClusterSnapshot snap;
  snap.time = now;
  const int n = cluster.size();
  snap.livehosts.resize(static_cast<std::size_t>(n));
  snap.nodes.resize(static_cast<std::size_t>(n));
  for (cluster::NodeId i = 0; i < n; ++i) {
    const cluster::Node& node = cluster.node(i);
    snap.livehosts[static_cast<std::size_t>(i)] = node.dyn.alive;
    NodeSnapshot& ns = snap.nodes[static_cast<std::size_t>(i)];
    ns.spec = node.spec;
    ns.sample_time = now;
    ns.valid = true;
    ns.cpu_load = node.dyn.total_load();
    ns.cpu_util = node.dyn.cpu_util;
    ns.mem_used_gb = node.dyn.mem_used_gb;
    ns.net_flow_mbps = node.dyn.net_flow_mbps;
    ns.users = node.dyn.users;
    const RunningMeans load{node.dyn.total_load(), node.dyn.total_load(),
                            node.dyn.total_load()};
    const RunningMeans util{node.dyn.cpu_util, node.dyn.cpu_util,
                            node.dyn.cpu_util};
    const RunningMeans flow{node.dyn.net_flow_mbps, node.dyn.net_flow_mbps,
                            node.dyn.net_flow_mbps};
    const double avail = node.mem_available_gb();
    const RunningMeans mem{avail, avail, avail};
    ns.cpu_load_avg = load;
    ns.cpu_util_avg = util;
    ns.net_flow_avg = flow;
    ns.mem_avail_avg = mem;
  }
  const auto nn = static_cast<std::size_t>(n);
  snap.net.latency_us = make_matrix(nn, 0.0);
  snap.net.latency_5min_us = make_matrix(nn, 0.0);
  snap.net.bandwidth_mbps = make_matrix(nn, 0.0);
  snap.net.peak_mbps = make_matrix(nn, 0.0);
  for (cluster::NodeId u = 0; u < n; ++u) {
    for (cluster::NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      const auto uu = static_cast<std::size_t>(u);
      const auto vv = static_cast<std::size_t>(v);
      const double lat = network.latency_us(u, v);
      snap.net.latency_us[uu][vv] = lat;
      snap.net.latency_5min_us[uu][vv] = lat;
      snap.net.bandwidth_mbps[uu][vv] = network.available_bandwidth_mbps(u, v);
      snap.net.peak_mbps[uu][vv] = network.peak_bandwidth_mbps(u, v);
    }
  }
  return snap;
}

}  // namespace nlarm::monitor
