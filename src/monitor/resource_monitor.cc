#include "monitor/resource_monitor.h"

#include "util/check.h"
#include "util/strings.h"

namespace nlarm::monitor {

ResourceMonitor::ResourceMonitor(const cluster::Cluster& cluster,
                                 const net::NetworkModel& network,
                                 sim::Simulation& sim, MonitorConfig config)
    : cluster_(cluster),
      network_(network),
      sim_(sim),
      config_(config),
      store_(cluster.size()) {
  NLARM_CHECK(config.nodestate_period_min_s > 0.0 &&
              config.nodestate_period_min_s <= config.nodestate_period_max_s)
      << "bad NodeStateD period range";
  NLARM_CHECK(config.livehosts_daemons >= 1)
      << "need at least one LivehostsD";

  sim::Rng rng(config.seed);

  // LivehostsD replicas on the first few nodes, at staggered frequencies.
  for (int i = 0; i < config.livehosts_daemons; ++i) {
    const auto host = static_cast<cluster::NodeId>(i % cluster.size());
    const double period =
        config.livehosts_period_s * (1.0 + 0.5 * static_cast<double>(i));
    daemons_.push_back(std::make_unique<LivehostsD>(
        util::format("livehosts.%d", i), cluster, host, period, store_));
  }

  // One NodeStateD per node, running on the node it reports.
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    const double period = rng.uniform(config.nodestate_period_min_s,
                                      config.nodestate_period_max_s);
    daemons_.push_back(std::make_unique<NodeStateD>(
        util::format("nodestate.%d", n), cluster, n, period, store_,
        rng.fork(0x5000u + static_cast<std::uint64_t>(n)),
        config.nodestate_noise));
  }

  // Latency and bandwidth probe coordinators.
  auto latencyd = std::make_unique<LatencyD>(
      "latencyd", cluster, /*host=*/0, config.latency_period_s,
      config.probe_round_spacing_s, network, store_, rng.fork("latency"));
  auto bandwidthd = std::make_unique<BandwidthD>(
      "bandwidthd", cluster, /*host=*/std::min(1, cluster.size() - 1),
      config.bandwidth_period_s, config.probe_round_spacing_s, network,
      store_, rng.fork("bandwidth"));
  if (config.sparse_probes) {
    latencyd->enable_sparse(cluster.topology(),
                            config.sparse_reconstruct_min_age_s);
    bandwidthd->enable_sparse(cluster.topology(),
                              config.sparse_reconstruct_min_age_s);
  }
  daemons_.push_back(std::move(latencyd));
  daemons_.push_back(std::move(bandwidthd));

  // Master and slave on distinct nodes.
  const cluster::NodeId master = 0;
  const cluster::NodeId slave =
      static_cast<cluster::NodeId>(cluster.size() > 1 ? 1 : 0);
  NLARM_CHECK(cluster.size() > 1)
      << "CentralMonitor needs at least two nodes for master+slave";
  central_ = std::make_unique<CentralMonitor>(cluster, master, slave,
                                              config.supervision_period_s);
  for (auto& daemon : daemons_) central_->supervise(daemon.get());
}

void ResourceMonitor::start() {
  NLARM_CHECK(!started_) << "monitor already started";
  started_ = true;
  for (auto& daemon : daemons_) daemon->launch(sim_);
  central_->start(sim_);
}

ClusterSnapshot ResourceMonitor::snapshot() const {
  ClusterSnapshot snap = store_.assemble(sim_.now());
  if (config_.max_record_age_s > 0.0) {
    apply_staleness_filter(snap, config_.max_record_age_s);
  }
  return snap;
}

Daemon* ResourceMonitor::find_daemon(const std::string& name) {
  for (auto& daemon : daemons_) {
    if (daemon->name() == name) return daemon.get();
  }
  return nullptr;
}

std::vector<Daemon*> ResourceMonitor::daemons() {
  std::vector<Daemon*> out;
  out.reserve(daemons_.size());
  for (auto& daemon : daemons_) out.push_back(daemon.get());
  return out;
}

}  // namespace nlarm::monitor
