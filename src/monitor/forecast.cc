#include "monitor/forecast.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace nlarm::monitor {

void LastValuePredictor::observe(double time, double value) {
  (void)time;
  last_ = value;
}

SlidingMeanPredictor::SlidingMeanPredictor(std::size_t window)
    : window_(window) {
  NLARM_CHECK(window >= 1) << "window must be at least 1";
}

void SlidingMeanPredictor::observe(double time, double value) {
  (void)time;
  values_.push_back(value);
  sum_ += value;
  if (values_.size() > window_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double SlidingMeanPredictor::predict() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {
  NLARM_CHECK(alpha > 0.0 && alpha <= 1.0) << "EWMA alpha in (0,1]";
}

void EwmaPredictor::observe(double time, double value) {
  (void)time;
  if (!seeded_) {
    value_ = value;
    seeded_ = true;
  } else {
    value_ = alpha_ * value + (1.0 - alpha_) * value_;
  }
}

void Ar1Predictor::observe(double time, double value) {
  (void)time;
  ++count_;
  const double weight = 1.0 / static_cast<double>(std::min<std::size_t>(
                                  count_, 64));  // EW estimates, capped
  if (count_ == 1) {
    mean_ = value;
    last_ = value;
    return;
  }
  const double prev_centered = last_ - mean_;
  mean_ += weight * (value - mean_);
  const double centered = value - mean_;
  cov_ += weight * (centered * prev_centered - cov_);
  var_ += weight * (centered * centered - var_);
  last_ = value;
}

double Ar1Predictor::predict() const {
  if (count_ == 0) return 0.0;
  if (var_ <= 1e-12) return last_;
  const double phi = std::clamp(cov_ / var_, -0.99, 0.99);
  return mean_ + phi * (last_ - mean_);
}

AdaptiveForecaster::AdaptiveForecaster() {
  entries_.push_back(Entry{std::make_unique<LastValuePredictor>()});
  entries_.push_back(Entry{std::make_unique<SlidingMeanPredictor>(10)});
  entries_.push_back(Entry{std::make_unique<EwmaPredictor>(0.3)});
  entries_.push_back(Entry{std::make_unique<Ar1Predictor>()});
}

void AdaptiveForecaster::observe(double time, double value) {
  for (Entry& entry : entries_) {
    // Score the prediction that was standing before this observation.
    if (entry.primed) {
      entry.abs_error_sum += std::abs(entry.pending_prediction - value);
      ++entry.scored;
    }
    entry.predictor->observe(time, value);
    entry.pending_prediction = entry.predictor->predict();
    entry.primed = true;
  }
  ++observations_;
}

std::size_t AdaptiveForecaster::best_index() const {
  std::size_t best = 0;
  double best_error = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    const double error =
        entry.scored > 0
            ? entry.abs_error_sum / static_cast<double>(entry.scored)
            : std::numeric_limits<double>::infinity();
    if (error < best_error) {
      best_error = error;
      best = i;
    }
  }
  return best;
}

double AdaptiveForecaster::forecast() const {
  if (observations_ == 0) return 0.0;
  return entries_[best_index()].pending_prediction;
}

std::string AdaptiveForecaster::best_predictor() const {
  return entries_[best_index()].predictor->name();
}

double AdaptiveForecaster::best_error() const {
  const Entry& entry = entries_[best_index()];
  if (entry.scored == 0) return 0.0;
  return entry.abs_error_sum / static_cast<double>(entry.scored);
}

ForecastingStore::ForecastingStore(const MonitorStore& store)
    : store_(store),
      load_(static_cast<std::size_t>(store.node_count())),
      util_(static_cast<std::size_t>(store.node_count())),
      flow_(static_cast<std::size_t>(store.node_count())) {}

void ForecastingStore::feed(double now) {
  for (cluster::NodeId n = 0; n < store_.node_count(); ++n) {
    const NodeSnapshot& record = store_.node_record(n);
    if (!record.valid) continue;
    const auto idx = static_cast<std::size_t>(n);
    load_[idx].observe(now, record.cpu_load);
    util_[idx].observe(now, record.cpu_util);
    flow_[idx].observe(now, record.net_flow_mbps);
  }
}

ClusterSnapshot ForecastingStore::assemble_forecast(double now) const {
  ClusterSnapshot snap = store_.assemble(now);
  for (std::size_t i = 0; i < snap.nodes.size(); ++i) {
    NodeSnapshot& node = snap.nodes[i];
    if (!node.valid || load_[i].observations() == 0) continue;
    node.cpu_load = std::max(0.0, load_[i].forecast());
    node.cpu_util = std::clamp(util_[i].forecast(), 0.0, 1.0);
    node.net_flow_mbps = std::max(0.0, flow_[i].forecast());
    // Re-centre the freshest running mean on the forecast so Eq. 1 (which
    // reads the means) reflects the predicted near-future state.
    node.cpu_load_avg.one_min = node.cpu_load;
    node.cpu_util_avg.one_min = node.cpu_util;
    node.net_flow_avg.one_min = node.net_flow_mbps;
  }
  return snap;
}

const AdaptiveForecaster& ForecastingStore::load_forecaster(
    cluster::NodeId node) const {
  NLARM_CHECK(node >= 0 && node < store_.node_count()) << "bad node " << node;
  return load_[static_cast<std::size_t>(node)];
}

}  // namespace nlarm::monitor
