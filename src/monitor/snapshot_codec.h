// Binary snapshot codec (`#nlarm-snapb v2`), the compact sibling of the
// text format in persistence.h.
//
// The text format spells every pairwise entry as a formatted `lat`/`bw`
// line — ~2·V² lines, a million at V=1024 — and re-parsing that on every
// broker epoch dominates end-to-end cost once allocation itself is fast.
// v2 stores the same state as fixed-width little-endian records plus the
// four pairwise FlatMatrix blocks verbatim (n² doubles each, diagonal and
// the <0 "never measured" sentinels included), so a loader's pairwise work
// is four bulk copies instead of millions of strtod calls.
//
// Layout (all integers/doubles little-endian):
//
//   magic      "#nlarm-snapb v2\n"             (16 bytes, also the sniffing
//                                               key for format autodetection)
//   header     u32 node_count · u32 flags · f64 time · u64 version
//   nodes      node_count records: fixed numeric part (ids, valid flag,
//              19 f64 dynamic fields) + u32 hostname_len + hostname bytes
//   livehosts  node_count u8 (0|1)
//   pairwise   4 blocks of node_count² f64: latency_us, latency_5min_us,
//              bandwidth_mbps, peak_mbps          (flags bit0 set)
//              OR tile-sparse form (flags bit1 set, bit0 clear): u64 count,
//              then `count` records of u32 u · u32 v (u<v) · f64 latency ·
//              f64 latency_5min · f64 bandwidth · f64 peak — only measured
//              pairs; every omitted cell decodes to the -1.0 sentinel with
//              a 0.0 diagonal. Chosen automatically when the section is
//              symmetric, sentinel-defaulted, and the sparse form is smaller
//              (the tiled monitor's O(G²) probe set, not O(V²)).
//   trailer    u32 CRC32 (IEEE) over every preceding byte
//
// Doubles round-trip bit-exactly (NaN payloads, ±inf, -0.0), hostnames are
// arbitrary bytes (the text format's comma restriction does not apply), and
// any truncation or corruption fails the trailing CRC with a one-line
// CheckError before a single field is trusted.
#pragma once

#include <string>
#include <string_view>

#include "monitor/snapshot.h"

namespace nlarm::util {
class ByteReader;
}

namespace nlarm::monitor {

/// First bytes of a v2 binary snapshot; also what format sniffing keys on.
inline constexpr std::string_view kBinarySnapshotMagic = "#nlarm-snapb v2\n";

/// True when `bytes` starts with the v2 magic.
bool is_binary_snapshot(std::string_view bytes);

/// Appends the complete v2 artifact (magic through CRC trailer) to `out`.
void encode_snapshot_binary(const ClusterSnapshot& snapshot, std::string& out);

/// Parses a v2 artifact. `bytes` may alias an mmap'd file: the decoder
/// reads fields in place and bulk-copies the matrix blocks straight into
/// the snapshot's FlatMatrix storage (no intermediate buffer). Throws
/// CheckError on bad magic, truncation, or CRC mismatch.
ClusterSnapshot decode_snapshot_binary(std::string_view bytes);

namespace codec {

/// One node record, the unit the delta append-log also ships. The encoded
/// form carries the node id, so decode returns a record addressable by id.
void encode_node(std::string& out, const NodeSnapshot& node);
NodeSnapshot decode_node(util::ByteReader& reader);

}  // namespace codec

}  // namespace nlarm::monitor
