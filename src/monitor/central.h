// CentralMonitor: master/slave supervisor for the monitoring daemons.
//
// Paper §4: "We keep one master and one slave instance of Central Monitor to
// avoid single point of failure. If the master process dies, the slave will
// detect that the process is dead [and become] new master and launches a new
// slave on another node. ... If any daemon crashes, it is relaunched on
// appropriate nodes. [If both die] all other daemons will still continue to
// perform their job [but] won't be restarted in case of failure."
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "monitor/daemons.h"
#include "sim/simulation.h"

namespace nlarm::monitor {

class CentralMonitor {
 public:
  CentralMonitor(const cluster::Cluster& cluster, cluster::NodeId master_host,
                 cluster::NodeId slave_host, double supervision_period);

  /// Registers a daemon for supervision. Does not take ownership.
  void supervise(Daemon* daemon);

  /// Starts the supervision loop.
  void start(sim::Simulation& sim);

  /// Failure injection: kills the master / slave supervisor process itself
  /// (not its host node).
  void fail_master();
  void fail_slave();

  cluster::NodeId master_host() const { return master_host_; }
  cluster::NodeId slave_host() const { return slave_host_; }
  bool master_alive() const;
  bool slave_alive() const;

  /// True once both supervisors have died and supervision has stopped.
  bool abandoned() const { return abandoned_; }

  int relaunch_count() const { return relaunches_; }
  int promotion_count() const { return promotions_; }

 private:
  void supervision_tick();
  /// Picks an alive node, preferring ones not already hosting a supervisor.
  cluster::NodeId pick_host() const;
  void relaunch_dead_daemons();

  const cluster::Cluster& cluster_;
  cluster::NodeId master_host_;
  cluster::NodeId slave_host_;
  double period_;
  bool master_process_up_ = true;
  bool slave_process_up_ = true;
  bool abandoned_ = false;
  std::vector<Daemon*> daemons_;
  sim::Simulation* sim_ = nullptr;
  sim::PeriodicHandle timer_;
  int relaunches_ = 0;
  int promotions_ = 0;
};

}  // namespace nlarm::monitor
