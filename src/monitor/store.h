// MonitorStore: the shared-filesystem drop box the daemons write into.
//
// In the paper every daemon writes its records to NFS and the allocator
// reads them back. Here the store is an in-memory key-value structure with
// per-record write timestamps, so consumers can reason about staleness the
// same way an NFS reader would (mtime).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/node.h"
#include "monitor/snapshot.h"
#include "monitor/snapshot_delta.h"

namespace nlarm::monitor {

/// Point-in-time staleness of every record in a store, for degradation
/// consumers (core/degrade.h). Entries are seconds since the record's last
/// refresh, +inf for never-written records.
struct StalenessView {
  double now = 0.0;
  std::vector<double> node;  ///< per-node record age
  util::FlatMatrix pair;     ///< per ordered pair (u,v): age of the freshest
                             ///< latency/bandwidth entry for that direction
};

class MonitorStore {
 public:
  explicit MonitorStore(int node_count);

  int node_count() const { return node_count_; }

  // --- written by LivehostsD ---
  void write_livehosts(double now, std::vector<bool> livehosts);
  const std::vector<bool>& livehosts() const { return livehosts_; }
  double livehosts_time() const { return livehosts_time_; }

  // --- written by NodeStateD (one record per node) ---
  void write_node_record(double now, const NodeSnapshot& record);
  const NodeSnapshot& node_record(cluster::NodeId node) const;

  // --- written by LatencyD / BandwidthD (per ordered pair; symmetric
  //     measurements should be written for both orders) ---
  void write_latency(double now, cluster::NodeId u, cluster::NodeId v,
                     double one_min_us, double five_min_us);
  void write_bandwidth(double now, cluster::NodeId u, cluster::NodeId v,
                       double bandwidth_mbps, double peak_mbps);

  /// Assembles the allocator-facing snapshot from the current records. The
  /// snapshot carries this store's change version, so consumers can tell
  /// "same data as last time" apart from "new data" without diffing.
  ClusterSnapshot assemble(double now) const;

  /// Hydrates every record from a persisted snapshot — the warm-start path
  /// for a store rebuilt from a snapshot file or a replayed delta log.
  /// Record timestamps are reconstructed conservatively (node records keep
  /// their sample_time; measured pairs are stamped with the snapshot's
  /// assembly time), and the delta tracker is marked full so incremental
  /// consumers rebuild once. Node counts must match.
  void restore(const ClusterSnapshot& snapshot);

  /// Bumped on every write; combined with a process-unique store id into the
  /// snapshot version stamp.
  std::uint64_t version() const { return version_; }

  /// The version stamp assemble() would put on a snapshot right now.
  std::uint64_t snapshot_version() const;

  /// Returns the dirty node/pair sets accumulated since the previous drain
  /// (or since construction), stamped with the snapshot-style versions the
  /// delta spans. Call right after assemble(): a consumer whose prepared
  /// state matches `delta.base_version` can then apply the delta to reach
  /// the assembled snapshot's version instead of re-preparing from scratch.
  SnapshotDelta drain_delta();

  /// Seconds since the given node's record was refreshed (inf if never).
  double node_staleness(double now, cluster::NodeId node) const;

  /// Seconds since any latency/bandwidth entry for the pair was refreshed.
  double pair_staleness(double now, cluster::NodeId u,
                        cluster::NodeId v) const;

  /// Materializes node_staleness/pair_staleness for every record at once —
  /// the per-refresh input of the degradation layer. O(V²).
  StalenessView staleness_view(double now) const;

 private:
  void check_node(cluster::NodeId node) const;

  int node_count_;
  std::uint64_t store_id_;       ///< process-unique, from a static counter
  std::uint64_t version_ = 1;    ///< bumped on every write
  std::vector<bool> livehosts_;
  double livehosts_time_ = -1.0;
  std::vector<NodeSnapshot> node_records_;
  NetSnapshot net_;
  util::FlatMatrix latency_time_;
  util::FlatMatrix bandwidth_time_;
  DeltaTracker delta_tracker_;
  std::uint64_t delta_base_version_ = 1;  ///< local version at last drain
};

}  // namespace nlarm::monitor
