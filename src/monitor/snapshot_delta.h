// SnapshotDelta: what changed in the monitored state between two snapshot
// versions.
//
// The paper's daemons refresh node records every 3-10 s and P2P probes every
// 1-5 min, so consecutive snapshots differ in a small fraction of entries.
// Instead of forcing consumers to re-derive O(V²) prepared state per tick,
// the MonitorStore records which node ids and which P2P pairs were written
// and hands the dirty sets out alongside the snapshot. Consumers that track
// state per version (core::PreparedBuilder) re-prepare O(dirty) instead of
// O(V²), falling back to a full rebuild whenever the delta cannot prove
// continuity (version gap, liveness change, ...).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/node.h"

namespace nlarm::monitor {

/// Dirty sets accumulated between two drain points of a MonitorStore.
///
/// `base_version`/`version` are snapshot-style version stamps (store id in
/// the high bits): the delta describes exactly the writes that took the
/// store from `base_version` to `version`. A consumer holding prepared
/// state for `base_version` may apply the delta; any other base requires a
/// full rebuild.
struct SnapshotDelta {
  std::uint64_t base_version = 0;
  std::uint64_t version = 0;

  /// Node ids whose NodeStateD record was rewritten (sorted, unique).
  std::vector<cluster::NodeId> dirty_nodes;
  /// Unordered pairs with a fresh latency or bandwidth measurement, stored
  /// as (min id, max id) and sorted lexicographically (unique).
  std::vector<std::pair<cluster::NodeId, cluster::NodeId>> dirty_pairs;

  /// The livehosts vector was rewritten. The usable-node set may have
  /// changed shape, so incremental consumers must do a full rebuild.
  bool livehosts_changed = false;
  /// Catch-all escape hatch: the producer could not track the change set
  /// (or the tracker overflowed); consumers must do a full rebuild.
  bool full = false;

  bool empty() const {
    return dirty_nodes.empty() && dirty_pairs.empty() && !livehosts_changed &&
           !full;
  }

  /// True when the delta alone cannot justify incremental application.
  bool requires_full_rebuild() const { return full || livehosts_changed; }

  void clear() {
    dirty_nodes.clear();
    dirty_pairs.clear();
    livehosts_changed = false;
    full = false;
  }

  /// Restores the sorted/unique invariant after dirty sets were
  /// accumulated out of order (e.g. coalescing several delta-log frames
  /// into one drain). Idempotent.
  void normalize();
};

/// Accumulates dirty node ids / pairs between drains. Used by MonitorStore;
/// exposed so simulations and tests can build deltas by hand.
class DeltaTracker {
 public:
  explicit DeltaTracker(int node_count);

  void mark_node(cluster::NodeId node);
  void mark_pair(cluster::NodeId u, cluster::NodeId v);
  void mark_livehosts();
  void mark_full();

  /// Moves the accumulated dirty sets out (sorted, deduplicated) and resets
  /// the tracker. Version stamps are the caller's business.
  SnapshotDelta drain();

 private:
  int node_count_;
  std::vector<bool> node_dirty_;
  std::vector<cluster::NodeId> dirty_nodes_;
  /// Pair dedup bitmap over (min*n + max) flat keys; the vector of keys
  /// remembers which bits to clear on drain so repeated drains stay O(dirty).
  std::vector<bool> pair_dirty_;
  std::vector<std::size_t> dirty_pair_keys_;
  bool livehosts_changed_ = false;
  bool full_ = false;
};

}  // namespace nlarm::monitor
