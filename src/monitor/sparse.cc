#include "monitor/sparse.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace nlarm::monitor {

SparseNetworkEstimator::SparseNetworkEstimator(
    const cluster::Topology& topology, SparseEstimatorOptions options)
    : topology_(topology), options_(options) {
  NLARM_CHECK(options.latency_gain > 0.0 && options.latency_gain <= 1.0)
      << "latency_gain must be in (0, 1]";
  NLARM_CHECK(options.bandwidth_gain > 0.0 && options.bandwidth_gain <= 1.0)
      << "bandwidth_gain must be in (0, 1]";
  const auto links = static_cast<std::size_t>(topology.link_count());
  link_latency_us_.assign(links, 0.0);
  link_latency_obs_.assign(links, 0);
  link_bandwidth_mbps_.reserve(links);
  link_bandwidth_obs_.assign(links, 0);
  // Bandwidth links start at their physical capacity — the best possible
  // prior, and exact for the peak reconstruction.
  for (cluster::LinkId id = 0; id < topology.link_count(); ++id) {
    link_bandwidth_mbps_.push_back(topology.link(id).capacity_mbps);
  }
}

void SparseNetworkEstimator::observe_latency(cluster::NodeId u,
                                             cluster::NodeId v,
                                             double measured_us) {
  const std::vector<cluster::LinkId> path = topology_.path_links(u, v);
  if (path.empty()) return;
  double current = 0.0;
  for (const cluster::LinkId link : path) {
    current += link_latency_us_[static_cast<std::size_t>(link)];
  }
  const double share =
      (measured_us - current) / static_cast<double>(path.size());
  for (const cluster::LinkId link : path) {
    const auto i = static_cast<std::size_t>(link);
    // A never-observed link takes its full residual share (warm start, so
    // readiness is not slowed by the damping); afterwards the gain damps
    // each step so probe noise averages out instead of yanking shared
    // links around at every projection.
    const double gain =
        link_latency_obs_[i] == 0 ? 1.0 : options_.latency_gain;
    // Clamp at zero: a per-link latency term can never be negative, and an
    // unclamped step can briefly push early estimates below it.
    link_latency_us_[i] = std::max(0.0, link_latency_us_[i] + gain * share);
    ++link_latency_obs_[i];
  }
  ++latency_observations_;
}

void SparseNetworkEstimator::observe_bandwidth(cluster::NodeId u,
                                               cluster::NodeId v,
                                               double measured_mbps) {
  const std::vector<cluster::LinkId> path = topology_.path_links(u, v);
  if (path.empty()) return;
  double bottleneck = std::numeric_limits<double>::infinity();
  std::size_t argmin = 0;
  for (const cluster::LinkId link : path) {
    const auto i = static_cast<std::size_t>(link);
    if (link_bandwidth_mbps_[i] < bottleneck) {
      bottleneck = link_bandwidth_mbps_[i];
      argmin = i;
    }
  }
  for (const cluster::LinkId link : path) {
    const auto i = static_cast<std::size_t>(link);
    // The path demonstrably carried `measured`, so every link on it can.
    link_bandwidth_mbps_[i] = std::max(link_bandwidth_mbps_[i], measured_mbps);
    ++link_bandwidth_obs_[i];
  }
  if (measured_mbps < bottleneck) {
    // The path under-delivered its estimate: ease the current bottleneck
    // link (the only one the min can pin the blame on) toward reality.
    link_bandwidth_mbps_[argmin] +=
        options_.bandwidth_gain * (measured_mbps - link_bandwidth_mbps_[argmin]);
  }
  ++bandwidth_observations_;
}

bool SparseNetworkEstimator::latency_ready(cluster::NodeId u,
                                           cluster::NodeId v) const {
  for (const cluster::LinkId link : topology_.path_links(u, v)) {
    if (link_latency_obs_[static_cast<std::size_t>(link)] == 0) return false;
  }
  return u != v;
}

bool SparseNetworkEstimator::bandwidth_ready(cluster::NodeId u,
                                             cluster::NodeId v) const {
  for (const cluster::LinkId link : topology_.path_links(u, v)) {
    if (link_bandwidth_obs_[static_cast<std::size_t>(link)] == 0) return false;
  }
  return u != v;
}

double SparseNetworkEstimator::estimate_latency_us(cluster::NodeId u,
                                                   cluster::NodeId v) const {
  double sum = 0.0;
  for (const cluster::LinkId link : topology_.path_links(u, v)) {
    sum += link_latency_us_[static_cast<std::size_t>(link)];
  }
  return sum;
}

double SparseNetworkEstimator::estimate_bandwidth_mbps(
    cluster::NodeId u, cluster::NodeId v) const {
  double min_bw = std::numeric_limits<double>::infinity();
  for (const cluster::LinkId link : topology_.path_links(u, v)) {
    min_bw = std::min(min_bw, link_bandwidth_mbps_[static_cast<std::size_t>(link)]);
  }
  return std::isfinite(min_bw) ? min_bw : 0.0;
}

double SparseNetworkEstimator::path_peak_mbps(cluster::NodeId u,
                                              cluster::NodeId v) const {
  double min_cap = std::numeric_limits<double>::infinity();
  for (const cluster::LinkId link : topology_.path_links(u, v)) {
    min_cap = std::min(min_cap, topology_.link(link).capacity_mbps);
  }
  return std::isfinite(min_cap) ? min_cap : 0.0;
}

}  // namespace nlarm::monitor
