// Ornstein–Uhlenbeck process sampled at irregular intervals.
//
// The workload generators model slowly-varying signals (CPU utilization,
// memory usage, baseline network chatter) as OU processes: mean-reverting
// noise around a configurable level, matching the "fluctuates around a base
// value" behaviour the paper observes in Figures 1 and 2(b).
#pragma once

#include "sim/rng.h"

namespace nlarm::sim {

class OuProcess {
 public:
  /// `mean`: reversion level; `reversion_rate` (1/s): speed of pull toward
  /// the mean; `volatility`: diffusion coefficient; `initial`: starting
  /// value.
  OuProcess(double mean, double reversion_rate, double volatility,
            double initial);

  /// Advances the process by `dt` seconds using the exact discretization
  /// (valid for any step size) and returns the new value.
  double step(double dt, Rng& rng);

  double value() const { return value_; }
  double mean() const { return mean_; }

  /// Moves the reversion level (e.g. when a load burst begins/ends).
  void set_mean(double mean) { mean_ = mean; }

  void set_value(double value) { value_ = value; }

  /// Stationary standard deviation: volatility / sqrt(2·reversion_rate).
  double stationary_stdev() const;

 private:
  double mean_;
  double reversion_rate_;
  double volatility_;
  double value_;
};

}  // namespace nlarm::sim
