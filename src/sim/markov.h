// Two-state (on/off) continuous-time Markov modulator.
//
// Used for bursty behaviour: CPU-load spike episodes (lab sessions,
// assignment deadlines) and on/off network chatter. Exponential holding
// times in each state.
#pragma once

#include "sim/rng.h"

namespace nlarm::sim {

class OnOffModulator {
 public:
  /// `mean_off_seconds` / `mean_on_seconds`: expected holding times.
  /// `start_on`: initial state.
  OnOffModulator(double mean_off_seconds, double mean_on_seconds,
                 bool start_on, Rng& rng);

  /// Advances by dt seconds, possibly crossing several state changes.
  /// Returns the state at the end of the interval.
  bool step(double dt, Rng& rng);

  bool on() const { return on_; }

  /// Fraction of the *last step* spent in the on state (useful when the
  /// sampled quantity should integrate over the step).
  double last_on_fraction() const { return last_on_fraction_; }

  /// Stationary probability of being on.
  double duty_cycle() const;

 private:
  double draw_holding(Rng& rng) const;

  double mean_off_;
  double mean_on_;
  bool on_;
  double time_to_switch_;
  double last_on_fraction_ = 0.0;
};

}  // namespace nlarm::sim
