// Discrete-event queue: a min-heap of (time, sequence, callback).
//
// Ties are broken by insertion order so runs are deterministic. Events can
// be cancelled through handles (used by CentralMonitor when it kills and
// relaunches daemons); cancelled entries are reaped lazily when they reach
// the top of the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace nlarm::sim {

using EventFn = std::function<void()>;

/// Handle to a scheduled event; lets the owner cancel it before it fires.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly or
  /// on a default-constructed handle.
  void cancel();

  /// True if the event is still pending (scheduled, not fired, not
  /// cancelled).
  bool pending() const;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`. `when` must not precede the
  /// time of the last dispatched event (no scheduling into the past).
  EventHandle schedule(double when, EventFn fn);

  /// True if no pending (non-cancelled) events remain.
  bool empty() const;

  /// Number of queued entries. Upper bound: includes cancelled entries that
  /// have not yet been reaped.
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; queue must not be empty.
  double next_time() const;

  /// Pops and runs the earliest pending event. Returns its time.
  /// Queue must not be empty.
  double dispatch_next();

  /// Time of the most recently dispatched event (0 before any dispatch).
  double last_dispatched() const { return last_dispatched_; }

 private:
  struct Entry {
    double time;
    std::uint64_t sequence;
    EventFn fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  /// Pops cancelled entries off the top of the heap.
  void reap_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
  double last_dispatched_ = 0.0;
};

}  // namespace nlarm::sim
