#include "sim/event_queue.h"

#include <utility>

#include "util/check.h"

namespace nlarm::sim {

void EventHandle::cancel() {
  if (state_ && !state_->fired) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->fired && !state_->cancelled;
}

EventHandle EventQueue::schedule(double when, EventFn fn) {
  NLARM_CHECK(when >= last_dispatched_)
      << "cannot schedule at " << when << ", already dispatched up to "
      << last_dispatched_;
  NLARM_CHECK(static_cast<bool>(fn)) << "cannot schedule an empty callback";
  auto state = std::make_shared<EventHandle::State>();
  heap_.push(Entry{when, next_sequence_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

void EventQueue::reap_cancelled() const {
  while (!heap_.empty() && heap_.top().state->cancelled) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  reap_cancelled();
  return heap_.empty();
}

double EventQueue::next_time() const {
  reap_cancelled();
  NLARM_CHECK(!heap_.empty()) << "next_time() on empty queue";
  return heap_.top().time;
}

double EventQueue::dispatch_next() {
  reap_cancelled();
  NLARM_CHECK(!heap_.empty()) << "dispatch_next() on empty queue";
  // priority_queue::top() is const&; move out via const_cast is UB-adjacent,
  // so copy the function handle (cheap relative to event work).
  Entry entry = heap_.top();
  heap_.pop();
  last_dispatched_ = entry.time;
  entry.state->fired = true;
  entry.fn();
  return entry.time;
}

}  // namespace nlarm::sim
