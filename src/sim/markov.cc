#include "sim/markov.h"

#include "util/check.h"

namespace nlarm::sim {

OnOffModulator::OnOffModulator(double mean_off_seconds, double mean_on_seconds,
                               bool start_on, Rng& rng)
    : mean_off_(mean_off_seconds), mean_on_(mean_on_seconds), on_(start_on) {
  NLARM_CHECK(mean_off_seconds > 0.0 && mean_on_seconds > 0.0)
      << "holding times must be positive";
  time_to_switch_ = draw_holding(rng);
}

double OnOffModulator::draw_holding(Rng& rng) const {
  return rng.exponential(1.0 / (on_ ? mean_on_ : mean_off_));
}

bool OnOffModulator::step(double dt, Rng& rng) {
  NLARM_CHECK(dt >= 0.0) << "negative time step";
  double remaining = dt;
  double on_time = 0.0;
  while (remaining > 0.0) {
    if (time_to_switch_ > remaining) {
      if (on_) on_time += remaining;
      time_to_switch_ -= remaining;
      remaining = 0.0;
    } else {
      if (on_) on_time += time_to_switch_;
      remaining -= time_to_switch_;
      on_ = !on_;
      time_to_switch_ = draw_holding(rng);
    }
  }
  last_on_fraction_ = (dt > 0.0) ? on_time / dt : (on_ ? 1.0 : 0.0);
  return on_;
}

double OnOffModulator::duty_cycle() const {
  return mean_on_ / (mean_on_ + mean_off_);
}

}  // namespace nlarm::sim
