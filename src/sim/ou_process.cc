#include "sim/ou_process.h"

#include <cmath>

#include "util/check.h"

namespace nlarm::sim {

OuProcess::OuProcess(double mean, double reversion_rate, double volatility,
                     double initial)
    : mean_(mean),
      reversion_rate_(reversion_rate),
      volatility_(volatility),
      value_(initial) {
  NLARM_CHECK(reversion_rate > 0.0) << "reversion rate must be positive";
  NLARM_CHECK(volatility >= 0.0) << "volatility must be non-negative";
}

double OuProcess::step(double dt, Rng& rng) {
  NLARM_CHECK(dt >= 0.0) << "negative time step " << dt;
  if (dt == 0.0) return value_;
  // Exact transition: X(t+dt) = mu + (X(t)-mu)·e^{-θ dt} + σ_dt·N(0,1)
  // with σ_dt² = σ²/(2θ)·(1 − e^{−2θ dt}).
  const double decay = std::exp(-reversion_rate_ * dt);
  const double noise_stdev =
      volatility_ *
      std::sqrt((1.0 - decay * decay) / (2.0 * reversion_rate_));
  value_ = mean_ + (value_ - mean_) * decay + noise_stdev * rng.normal();
  return value_;
}

double OuProcess::stationary_stdev() const {
  return volatility_ / std::sqrt(2.0 * reversion_rate_);
}

}  // namespace nlarm::sim
