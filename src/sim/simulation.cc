#include "sim/simulation.h"

#include <utility>

#include "obs/catalog.h"
#include "obs/trace.h"
#include "util/check.h"

namespace nlarm::sim {

void PeriodicHandle::cancel() {
  if (!state_) return;
  state_->cancelled = true;
  state_->next_event.cancel();
}

bool PeriodicHandle::active() const { return state_ && !state_->cancelled; }

Simulation::Simulation(std::uint64_t seed)
    : seed_(seed), rng_(seed), fork_root_(seed ^ 0xa5a5a5a5a5a5a5a5ULL) {}

Rng Simulation::fork_rng(const std::string& label) const {
  // Fork from a copy so repeated forks with the same label yield the same
  // stream regardless of how many forks happened before.
  Rng root = fork_root_;
  return root.fork(hash_label(label) ^ seed_);
}

EventHandle Simulation::schedule_in(double delay, EventFn fn) {
  NLARM_CHECK(delay >= 0.0) << "negative delay " << delay;
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulation::schedule_at(double when, EventFn fn) {
  NLARM_CHECK(when >= now_) << "cannot schedule in the past: " << when
                            << " < " << now_;
  return queue_.schedule(when, std::move(fn));
}

PeriodicHandle Simulation::schedule_every(double period, double initial_delay,
                                          std::function<void()> fn) {
  NLARM_CHECK(period > 0.0) << "period must be positive, got " << period;
  NLARM_CHECK(initial_delay >= 0.0) << "negative initial delay";
  auto state = std::make_shared<PeriodicHandle::State>();
  auto self = state;
  state->next_event = schedule_in(initial_delay, [this, self, period, fn]() {
    fire_periodic(self, period, fn);
  });
  return PeriodicHandle(std::move(state));
}

void Simulation::fire_periodic(std::shared_ptr<PeriodicHandle::State> state,
                               double period, std::function<void()> fn) {
  if (state->cancelled) return;
  fn();
  if (state->cancelled) return;  // fn may have cancelled the task
  auto self = state;
  state->next_event = schedule_in(period, [this, self, period, fn]() {
    fire_periodic(self, period, fn);
  });
}

void Simulation::run_until(double until) {
  NLARM_CHECK(until >= now_) << "run_until target " << until
                             << " is in the past (now " << now_ << ")";
  const double sim_start = now_;
  const std::uint64_t dispatched_before = dispatched_;
  const double wall_start = obs::trace_clock_seconds();
  while (!queue_.empty() && queue_.next_time() <= until) {
    // Advance the clock *before* running the event so callbacks observe the
    // correct now() and can schedule relative to it.
    now_ = queue_.next_time();
    queue_.dispatch_next();
    ++dispatched_;
  }
  now_ = until;
  const double wall_seconds = obs::trace_clock_seconds() - wall_start;
  obs::metrics::sim_events().inc(dispatched_ - dispatched_before);
  if (wall_seconds > 0.0 && until > sim_start) {
    obs::metrics::sim_time_ratio().set((until - sim_start) / wall_seconds);
  }
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  queue_.dispatch_next();
  ++dispatched_;
  obs::metrics::sim_events().inc();
  return true;
}

}  // namespace nlarm::sim
