// Deterministic random number generation for the simulator.
//
// xoshiro256** seeded via SplitMix64. Every stochastic component (each node's
// load generator, the flow generator, each daemon's jitter, ...) forks its
// own stream from a root seed, so a single seed reproduces an entire
// multi-day cluster simulation bit-for-bit regardless of the order in which
// components draw numbers.
#pragma once

#include <cstdint>
#include <string>

namespace nlarm::sim {

/// SplitMix64: used to expand seeds and to hash stream names.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 2^256−1 period.
class Rng {
 public:
  /// Seeds all 256 bits from the 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal (Box–Muller, no caching so streams stay independent of
  /// call parity).
  double normal();
  double normal(double mean, double stdev);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Forks an independent child stream. The child is derived from this
  /// stream's state and a label hash, so sibling forks with different labels
  /// are decorrelated and reproducible.
  Rng fork(const std::string& label);
  Rng fork(std::uint64_t label);

  /// Fisher–Yates shuffle of a contiguous range.
  template <typename T>
  void shuffle(T* data, std::size_t count) {
    for (std::size_t i = count; i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(data[i - 1], data[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

/// FNV-1a hash of a string, for naming RNG streams.
std::uint64_t hash_label(const std::string& label);

}  // namespace nlarm::sim
