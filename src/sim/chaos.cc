#include "sim/chaos.h"

#include <algorithm>
#include <cmath>

#include "obs/catalog.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/strings.h"

namespace nlarm::sim {

const char* to_string(ChaosEvent::Kind kind) {
  switch (kind) {
    case ChaosEvent::Kind::kStallDaemons:
      return "stall";
    case ChaosEvent::Kind::kFlapNode:
      return "flap";
    case ChaosEvent::Kind::kKillMaster:
      return "kill:master";
    case ChaosEvent::Kind::kKillSlave:
      return "kill:slave";
    case ChaosEvent::Kind::kKillLeader:
      return "kill:leader";
    case ChaosEvent::Kind::kTearSnapshot:
      return "tear:snapshot";
    case ChaosEvent::Kind::kClockSkew:
      return "skew";
  }
  return "?";
}

namespace {

/// Splits "<t>" or "<t>+<dur>" after the '@'.
void parse_when(const std::string& text, ChaosEvent& event,
                const std::string& entry) {
  const auto plus = text.find('+');
  if (plus == std::string::npos) {
    event.time = util::parse_double(util::trim(text));
  } else {
    event.time = util::parse_double(util::trim(text.substr(0, plus)));
    event.duration = util::parse_double(util::trim(text.substr(plus + 1)));
    NLARM_CHECK(event.duration > 0.0)
        << "chaos entry '" << entry << "': duration must be positive";
  }
  NLARM_CHECK(event.time >= 0.0)
      << "chaos entry '" << entry << "': time must be >= 0";
}

}  // namespace

ChaosSpec ChaosSpec::parse(const std::string& text) {
  ChaosSpec spec;
  for (const std::string& raw : util::split(text, ';')) {
    const std::string entry = util::trim(raw);
    if (entry.empty()) continue;

    if (util::starts_with(entry, "seed=")) {
      spec.seed = static_cast<std::uint64_t>(
          util::parse_long(util::trim(entry.substr(5))));
      continue;
    }

    const auto at = entry.find('@');
    NLARM_CHECK(at != std::string::npos)
        << "chaos entry '" << entry << "': missing '@<time>'";
    const std::string head = util::trim(entry.substr(0, at));
    const std::vector<std::string> parts = util::split(head, ':');
    NLARM_CHECK(!parts.empty() && !parts[0].empty())
        << "chaos entry '" << entry << "': missing event kind";
    const std::string kind = util::to_lower(parts[0]);

    ChaosEvent event;
    parse_when(entry.substr(at + 1), event, entry);

    if (kind == "stall") {
      NLARM_CHECK(parts.size() == 3)
          << "chaos entry '" << entry
          << "': expected stall:<selector>:<amount>@<t>+<dur>";
      event.kind = ChaosEvent::Kind::kStallDaemons;
      event.selector = util::trim(parts[1]);
      NLARM_CHECK(!event.selector.empty())
          << "chaos entry '" << entry << "': empty daemon selector";
      const std::string amount = util::trim(parts[2]);
      event.amount = util::parse_double(amount);
      event.amount_is_count = amount.find('.') == std::string::npos;
      if (event.amount_is_count) {
        NLARM_CHECK(event.amount >= 1.0)
            << "chaos entry '" << entry << "': stall count must be >= 1";
      } else {
        NLARM_CHECK(event.amount > 0.0 && event.amount <= 1.0)
            << "chaos entry '" << entry
            << "': stall fraction must be in (0, 1]";
      }
      NLARM_CHECK(event.duration > 0.0)
          << "chaos entry '" << entry << "': stall needs '+<duration>'";
    } else if (kind == "flap") {
      NLARM_CHECK(parts.size() == 2)
          << "chaos entry '" << entry << "': expected flap:<node>@<t>+<dur>";
      event.kind = ChaosEvent::Kind::kFlapNode;
      const std::string target = util::to_lower(util::trim(parts[1]));
      if (target == "random") {
        event.node = -1;
      } else {
        event.node = static_cast<int>(util::parse_long(target));
        NLARM_CHECK(event.node >= 0)
            << "chaos entry '" << entry << "': negative node id";
      }
      NLARM_CHECK(event.duration > 0.0)
          << "chaos entry '" << entry << "': flap needs '+<duration>'";
    } else if (kind == "kill") {
      NLARM_CHECK(parts.size() == 2)
          << "chaos entry '" << entry
          << "': expected kill:master@<t>, kill:slave@<t> or kill:leader@<t>";
      const std::string who = util::to_lower(util::trim(parts[1]));
      if (who == "master") {
        event.kind = ChaosEvent::Kind::kKillMaster;
      } else if (who == "slave") {
        event.kind = ChaosEvent::Kind::kKillSlave;
      } else if (who == "leader") {
        event.kind = ChaosEvent::Kind::kKillLeader;
      } else {
        NLARM_CHECK(false) << "chaos entry '" << entry
                           << "': kill target must be master, slave or leader";
      }
    } else if (kind == "tear") {
      NLARM_CHECK(parts.size() == 2 &&
                  util::to_lower(util::trim(parts[1])) == "snapshot")
          << "chaos entry '" << entry << "': expected tear:snapshot@<t>";
      event.kind = ChaosEvent::Kind::kTearSnapshot;
    } else if (kind == "skew") {
      NLARM_CHECK(parts.size() == 2)
          << "chaos entry '" << entry << "': expected skew:<seconds>@<t>";
      event.kind = ChaosEvent::Kind::kClockSkew;
      event.amount = util::parse_double(util::trim(parts[1]));
      NLARM_CHECK(event.amount != 0.0)
          << "chaos entry '" << entry << "': zero skew is a no-op";
    } else {
      NLARM_CHECK(false) << "chaos entry '" << entry
                         << "': unknown event kind '" << kind << "'";
    }
    spec.events.push_back(std::move(event));
  }
  std::stable_sort(spec.events.begin(), spec.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.time < b.time;
                   });
  return spec;
}

ChaosEngine::ChaosEngine(ChaosSpec spec, Simulation& sim, ChaosHooks hooks)
    : spec_(std::move(spec)), sim_(sim), hooks_(std::move(hooks)),
      rng_(spec_.seed) {}

void ChaosEngine::arm() {
  NLARM_CHECK(!armed_) << "chaos engine armed twice";
  armed_ = true;
  const double base = sim_.now();
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    sim_.schedule_at(base + spec_.events[i].time, [this, i]() { fire(i); });
  }
}

void ChaosEngine::fire(std::size_t index) {
  const ChaosEvent& event = spec_.events[index];
  obs::metrics::chaos_events().inc();
  NLARM_INFO << "chaos: " << to_string(event.kind) << " at t="
             << sim_.now();
  // Each event forks its own stream keyed by schedule position, so a hook's
  // internal draws never shift the victims picked by later events.
  Rng event_rng = rng_.fork(static_cast<std::uint64_t>(index));
  switch (event.kind) {
    case ChaosEvent::Kind::kStallDaemons:
      if (hooks_.stall_daemons) hooks_.stall_daemons(event, event_rng);
      break;
    case ChaosEvent::Kind::kFlapNode:
      if (hooks_.flap_node) hooks_.flap_node(event, event_rng);
      break;
    case ChaosEvent::Kind::kKillMaster:
      if (hooks_.kill_master) hooks_.kill_master(event);
      break;
    case ChaosEvent::Kind::kKillSlave:
      if (hooks_.kill_slave) hooks_.kill_slave(event);
      break;
    case ChaosEvent::Kind::kKillLeader:
      if (hooks_.kill_leader) hooks_.kill_leader(event);
      break;
    case ChaosEvent::Kind::kTearSnapshot:
      if (hooks_.tear_snapshot) hooks_.tear_snapshot(event);
      break;
    case ChaosEvent::Kind::kClockSkew:
      if (hooks_.clock_skew) hooks_.clock_skew(event);
      break;
  }
  fired_.push_back(event);
}

}  // namespace nlarm::sim
