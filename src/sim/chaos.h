// Deterministic fault injection driven through the simulation clock.
//
// A ChaosSpec is a seeded schedule of faults — daemon stalls, node flaps,
// supervisor kills, torn snapshot writes, clock skew — parsed from a compact
// text DSL (the --chaos-spec flag of nlarm_broker). The ChaosEngine turns
// the schedule into simulation events and dispatches each one to a
// ChaosHooks callback; what a fault *means* (which daemon object to stall,
// which cluster node to flap) is wired by the harness layer (exp/), keeping
// sim/ free of monitor/ dependencies.
//
// Spec grammar (entries separated by ';', whitespace ignored):
//
//   seed=<u64>                      RNG seed for random victim selection
//   stall:<selector>:<amount>@<t>+<dur>
//                                   stall daemons whose name starts with
//                                   <selector> (e.g. nodestate, latencyd);
//                                   <amount> is a fraction (0.1) or a count
//                                   (3); stalled daemons stay "alive" but
//                                   stop refreshing for <dur> seconds
//   flap:<node>@<t>+<dur>           kill node <node> ("random" = seeded
//                                   pick) at t, revive it at t+dur
//   kill:master@<t>                 kill the master supervisor process
//   kill:slave@<t>                  kill the slave supervisor process
//   kill:leader@<t>                 kill the leader broker mid-compaction
//                                   (its in-flight delta-log full frame is
//                                   torn; followers must promote)
//   tear:snapshot@<t>               arm a torn (truncated, unrenamed) write
//                                   for the next snapshot save
//   skew:<seconds>@<t>              add <seconds> (may be negative) to the
//                                   consumers' staleness clock
//
// Times are relative to arm(): the engine schedules each event at
// sim.now() + t, so one spec replays against any warm-up length.
// Example: "seed=7; stall:nodestate:0.1@30+120; tear:snapshot@60".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/simulation.h"

namespace nlarm::sim {

struct ChaosEvent {
  enum class Kind {
    kStallDaemons,
    kFlapNode,
    kKillMaster,
    kKillSlave,
    kKillLeader,
    kTearSnapshot,
    kClockSkew,
  };

  Kind kind = Kind::kStallDaemons;
  double time = 0.0;      ///< seconds after arm()
  double duration = 0.0;  ///< stall / flap length
  double amount = 0.0;    ///< stall fraction/count; skew seconds
  bool amount_is_count = false;  ///< stall amount was an integer count
  int node = -1;                 ///< flap target; -1 = seeded random pick
  std::string selector;          ///< daemon-name prefix for stalls
};

const char* to_string(ChaosEvent::Kind kind);

struct ChaosSpec {
  std::uint64_t seed = 0x5eedULL;
  std::vector<ChaosEvent> events;  ///< sorted by time, stable on ties

  bool empty() const { return events.empty(); }

  /// Parses the DSL above. Throws CheckError naming the offending entry.
  static ChaosSpec parse(const std::string& text);
};

/// The harness-provided meaning of each fault. Each callback receives the
/// event; victim-selection randomness comes from the forked Rng so the
/// schedule replays bit-for-bit. Unset hooks turn their events into no-ops
/// (still counted as fired).
struct ChaosHooks {
  std::function<void(const ChaosEvent&, Rng&)> stall_daemons;
  std::function<void(const ChaosEvent&, Rng&)> flap_node;
  std::function<void(const ChaosEvent&)> kill_master;
  std::function<void(const ChaosEvent&)> kill_slave;
  std::function<void(const ChaosEvent&)> kill_leader;
  std::function<void(const ChaosEvent&)> tear_snapshot;
  std::function<void(const ChaosEvent&)> clock_skew;
};

/// Schedules a ChaosSpec on a Simulation and dispatches fired events to the
/// hooks. Owns nothing but the schedule; must outlive the simulation run.
class ChaosEngine {
 public:
  ChaosEngine(ChaosSpec spec, Simulation& sim, ChaosHooks hooks);

  /// Schedules every event at sim.now() + event.time. Call once.
  void arm();

  const ChaosSpec& spec() const { return spec_; }

  /// Events dispatched so far, in firing order.
  const std::vector<ChaosEvent>& fired() const { return fired_; }

 private:
  void fire(std::size_t index);

  ChaosSpec spec_;
  Simulation& sim_;
  ChaosHooks hooks_;
  Rng rng_;
  std::vector<ChaosEvent> fired_;
  bool armed_ = false;
};

}  // namespace nlarm::sim
