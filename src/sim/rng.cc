#include "sim/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace nlarm::sim {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 expander(seed);
  for (auto& word : state_) word = expander.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits → double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  NLARM_CHECK(lo <= hi) << "uniform bounds reversed: " << lo << " > " << hi;
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  NLARM_CHECK(lo <= hi) << "uniform_int bounds reversed";
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t value;
  do {
    value = next_u64();
  } while (value >= limit);
  return lo + static_cast<std::int64_t>(value % span);
}

double Rng::normal() {
  // Box–Muller with u1 bounded away from 0.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stdev) {
  NLARM_CHECK(stdev >= 0.0) << "negative stdev " << stdev;
  return mean + stdev * normal();
}

double Rng::exponential(double rate) {
  NLARM_CHECK(rate > 0.0) << "exponential rate must be positive, got " << rate;
  double u;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  NLARM_CHECK(mean >= 0.0) << "poisson mean must be non-negative";
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  const double sample = normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double probability) {
  NLARM_CHECK(probability >= 0.0 && probability <= 1.0)
      << "probability " << probability << " out of [0,1]";
  return uniform() < probability;
}

Rng Rng::fork(const std::string& label) { return fork(hash_label(label)); }

Rng Rng::fork(std::uint64_t label) {
  // Mix our own next output with the label so distinct labels and distinct
  // parent states both decorrelate the child.
  SplitMix64 mixer(next_u64() ^ (label * 0x9e3779b97f4a7c15ULL));
  return Rng(mixer.next());
}

std::uint64_t hash_label(const std::string& label) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : label) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace nlarm::sim
