// The simulation engine: a clock plus an event queue plus periodic tasks.
//
// Everything in nlarm that "runs" — background-load generators, monitoring
// daemons, MPI job execution — is driven by this engine. Simulated time is
// in seconds (double).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace nlarm::sim {

/// Handle to a periodic task; cancelling stops future firings.
class PeriodicHandle {
 public:
  PeriodicHandle() = default;
  void cancel();
  bool active() const;

 private:
  friend class Simulation;
  struct State {
    bool cancelled = false;
    EventHandle next_event;
  };
  explicit PeriodicHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 42);

  /// Current simulated time in seconds.
  double now() const { return now_; }

  /// Root RNG; components should fork labelled streams from it rather than
  /// drawing directly, so adding a component does not shift others' draws.
  Rng& rng() { return rng_; }

  /// Forks a labelled RNG stream from the dedicated fork root. Streams with
  /// the same label and seed are identical across runs and independent of
  /// the number or order of other forks.
  Rng fork_rng(const std::string& label) const;

  /// Schedules a one-shot callback after `delay` seconds (>= 0).
  EventHandle schedule_in(double delay, EventFn fn);

  /// Schedules a one-shot callback at absolute time `when` (>= now()).
  EventHandle schedule_at(double when, EventFn fn);

  /// Schedules `fn(now)` every `period` seconds, first firing after
  /// `initial_delay`. The callback runs until cancelled.
  PeriodicHandle schedule_every(double period, double initial_delay,
                                std::function<void()> fn);

  /// Runs events until the queue is empty or `until` is reached. The clock
  /// is advanced to `until` even if the queue drains earlier.
  void run_until(double until);

  /// Runs a single event if one is pending; returns false if the queue is
  /// empty.
  bool step();

  /// Number of events dispatched so far.
  std::uint64_t events_dispatched() const { return dispatched_; }

  std::uint64_t seed() const { return seed_; }

 private:
  void fire_periodic(std::shared_ptr<PeriodicHandle::State> state,
                     double period, std::function<void()> fn);

  std::uint64_t seed_;
  double now_ = 0.0;
  EventQueue queue_;
  Rng rng_;
  mutable Rng fork_root_;
  std::uint64_t dispatched_ = 0;
};

}  // namespace nlarm::sim
