#include "exp/chaos_harness.h"

#include <algorithm>
#include <cmath>

#include "monitor/persistence.h"
#include "obs/catalog.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/strings.h"

namespace nlarm::exp {

ChaosHarness::ChaosHarness(sim::ChaosSpec spec, sim::Simulation& sim,
                           cluster::Cluster& cluster,
                           monitor::ResourceMonitor& monitor)
    : sim_(sim), cluster_(cluster), monitor_(monitor) {
  sim::ChaosHooks hooks;
  hooks.stall_daemons = [this](const sim::ChaosEvent& e, sim::Rng& rng) {
    stall_daemons(e, rng);
  };
  hooks.flap_node = [this](const sim::ChaosEvent& e, sim::Rng& rng) {
    flap_node(e, rng);
  };
  hooks.kill_master = [this](const sim::ChaosEvent&) {
    obs::metrics::chaos_supervisor_kills().inc();
    NLARM_WARN << "chaos: killing master supervisor";
    monitor_.central().fail_master();
  };
  hooks.kill_slave = [this](const sim::ChaosEvent&) {
    obs::metrics::chaos_supervisor_kills().inc();
    NLARM_WARN << "chaos: killing slave supervisor";
    monitor_.central().fail_slave();
  };
  hooks.kill_leader = [this](const sim::ChaosEvent&) {
    obs::metrics::chaos_leader_kills().inc();
    NLARM_WARN << "chaos: killing leader broker mid-compaction (its "
                  "in-flight delta-log full frame is torn)";
    // The leader "dies during a compaction": its next full-frame write is
    // torn, and whatever the caller registered stops the append loop.
    monitor::arm_torn_snapshot_write();
    if (kill_leader_action_) kill_leader_action_();
  };
  hooks.tear_snapshot = [](const sim::ChaosEvent&) {
    NLARM_WARN << "chaos: arming a torn write for the next snapshot save";
    monitor::arm_torn_snapshot_write();
  };
  hooks.clock_skew = [this](const sim::ChaosEvent& e) {
    clock_skew_ += e.amount;
    obs::metrics::chaos_clock_skew_seconds().set(clock_skew_);
    NLARM_WARN << "chaos: clock skew now " << clock_skew_ << " s";
  };
  engine_ = std::make_unique<sim::ChaosEngine>(std::move(spec), sim,
                                              std::move(hooks));
}

void ChaosHarness::stall_daemons(const sim::ChaosEvent& event,
                                 sim::Rng& rng) {
  std::vector<monitor::Daemon*> matching;
  for (monitor::Daemon* daemon : monitor_.daemons()) {
    if (util::starts_with(daemon->name(), event.selector) &&
        !daemon->stalled()) {
      matching.push_back(daemon);
    }
  }
  std::size_t count;
  if (event.amount_is_count) {
    count = std::min(matching.size(),
                     static_cast<std::size_t>(event.amount));
  } else {
    // Fractional amounts round up so "0.1 of 8 daemons" stalls one, not
    // zero — a schedule entry always does something when victims exist.
    count = std::min(
        matching.size(),
        static_cast<std::size_t>(std::ceil(
            event.amount * static_cast<double>(matching.size()))));
  }
  // Seeded Fisher–Yates prefix: the first `count` entries are the victims.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(matching.size()) - 1));
    std::swap(matching[i], matching[j]);
  }
  for (std::size_t i = 0; i < count; ++i) {
    monitor::Daemon* daemon = matching[i];
    daemon->set_stalled(true);
    obs::metrics::chaos_daemon_stalls().inc();
    NLARM_WARN << "chaos: stalled " << daemon->name() << " for "
               << event.duration << " s";
    sim_.schedule_in(event.duration, [daemon] {
      // The daemon may have been relaunched (fresh, unstalled) meanwhile;
      // clearing the flag is idempotent either way.
      daemon->set_stalled(false);
    });
  }
}

void ChaosHarness::flap_node(const sim::ChaosEvent& event, sim::Rng& rng) {
  cluster::NodeId target = static_cast<cluster::NodeId>(event.node);
  if (event.node < 0) {
    const std::vector<cluster::NodeId> alive = cluster_.alive_nodes();
    if (alive.empty()) {
      NLARM_WARN << "chaos: flap requested but no node is alive";
      return;
    }
    target = alive[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(alive.size()) - 1))];
  }
  NLARM_CHECK(target >= 0 && target < cluster_.size())
      << "chaos flap target " << target << " outside the cluster";
  obs::metrics::chaos_node_flaps().inc();
  NLARM_WARN << "chaos: node " << target << " down for " << event.duration
             << " s";
  cluster_.mutable_node(target).dyn.alive = false;
  cluster::Cluster* cluster = &cluster_;
  sim_.schedule_in(event.duration, [cluster, target] {
    cluster->mutable_node(target).dyn.alive = true;
    NLARM_WARN << "chaos: node " << target << " back up";
  });
}

}  // namespace nlarm::exp
