// ChaosHarness: binds a sim::ChaosEngine's abstract fault events to a
// concrete testbed — daemon objects, cluster nodes, the supervisor pair and
// the snapshot persistence layer. This is the layer that knows what a
// "stall" or a "flap" means; sim/chaos.h only knows when one happens.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "monitor/resource_monitor.h"
#include "sim/chaos.h"
#include "sim/simulation.h"

namespace nlarm::exp {

class ChaosHarness {
 public:
  /// Borrows everything; the testbed must outlive the harness.
  ChaosHarness(sim::ChaosSpec spec, sim::Simulation& sim,
               cluster::Cluster& cluster, monitor::ResourceMonitor& monitor);

  /// Schedules the spec's events at sim.now() + t. Call once, after the
  /// monitor has started (typically post-warmup).
  void arm() { engine_->arm(); }

  const sim::ChaosEngine& engine() const { return *engine_; }

  /// Accumulated clock skew injected so far (seconds, may be negative).
  /// Consumers add this to `now` when computing staleness views.
  double clock_skew() const { return clock_skew_; }

  /// Binds the kill:leader event to the testbed's leader broker (die with
  /// the in-flight delta-log compaction torn). The harness itself only
  /// arms the torn write and counts the kill; the caller-supplied action
  /// stops the leader's append/refresh loop. Set before arm().
  void on_kill_leader(std::function<void()> action) {
    kill_leader_action_ = std::move(action);
  }

 private:
  void stall_daemons(const sim::ChaosEvent& event, sim::Rng& rng);
  void flap_node(const sim::ChaosEvent& event, sim::Rng& rng);

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  monitor::ResourceMonitor& monitor_;
  double clock_skew_ = 0.0;
  std::function<void()> kill_leader_action_;
  std::unique_ptr<sim::ChaosEngine> engine_;
};

}  // namespace nlarm::exp
