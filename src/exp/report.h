// Reporting helpers for the figure/table harnesses: gain tables with
// paper-vs-measured columns and simple shape checks.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/experiment.h"

namespace nlarm::exp {

/// One row of a Table-2/Table-3-style gains table.
struct GainRow {
  std::string baseline;  ///< "Random" / "Sequential" / "Load-Aware"
  GainStats measured;
  /// The paper's reported avg/median/max (fractions, e.g. 0.499).
  double paper_average = 0.0;
  double paper_median = 0.0;
  double paper_max = 0.0;
};

/// Prints the gains table with measured and paper columns side by side.
void print_gain_table(std::ostream& out, const std::string& title,
                      const std::vector<GainRow>& rows);

/// A single named shape check: pass/fail plus the observed value. Benches
/// collect these so the harness output documents which qualitative paper
/// findings reproduce.
struct ShapeCheck {
  std::string description;
  bool passed = false;
  std::string detail;
};

void print_shape_checks(std::ostream& out,
                        const std::vector<ShapeCheck>& checks);

/// Convenience constructor.
ShapeCheck check(const std::string& description, bool passed,
                 const std::string& detail = "");

/// Mean execution-time table for a sweep: one row per problem size, one
/// column per policy.
void print_time_table(std::ostream& out, const std::string& title,
                      const std::string& row_label,
                      const std::vector<double>& row_values,
                      const std::vector<ComparisonResult>& results);

}  // namespace nlarm::exp
