// Experiment harness: builds a complete simulated testbed (cluster +
// background workload + monitor) and runs the paper's policy-comparison
// protocol — "we ran all four approaches in sequence for fair evaluation,
// and repeated this 5 times to account for network variability" (§5.1).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/allocator.h"
#include "core/baselines.h"
#include "monitor/resource_monitor.h"
#include "mpisim/runtime.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "sim/simulation.h"
#include "workload/scenario.h"

namespace nlarm::exp {

/// One self-contained simulated world. Non-copyable/movable; create via
/// make().
class Testbed {
 public:
  struct Options {
    workload::ScenarioKind scenario = workload::ScenarioKind::kSharedLab;
    std::uint64_t seed = 42;
    cluster::IitkClusterOptions cluster;
    monitor::MonitorConfig monitor;
    mpisim::RuntimeOptions runtime;
    /// Simulated seconds to run before the experiment starts, so running
    /// means and probe matrices are populated.
    double warmup_seconds = 1500.0;
  };

  static std::unique_ptr<Testbed> make(const Options& options);

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  cluster::Cluster& cluster() { return *cluster_; }
  net::NetworkModel& network() { return *network_; }
  net::FlowSet& flows() { return flows_; }
  sim::Simulation& sim() { return *sim_; }
  workload::Scenario& scenario() { return *scenario_; }
  monitor::ResourceMonitor& monitor() { return *monitor_; }
  mpisim::MpiRuntime& runtime() { return *runtime_; }
  const Options& options() const { return options_; }

  /// Current allocator-facing snapshot (from the monitor store).
  monitor::ClusterSnapshot snapshot() const { return monitor_->snapshot(); }

 private:
  explicit Testbed(const Options& options);

  Options options_;
  std::unique_ptr<cluster::Cluster> cluster_;
  net::FlowSet flows_;
  std::unique_ptr<net::NetworkModel> network_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<workload::Scenario> scenario_;
  std::unique_ptr<monitor::ResourceMonitor> monitor_;
  std::unique_ptr<mpisim::MpiRuntime> runtime_;
};

/// The four policies of §5, in the paper's comparison order.
enum class Policy { kRandom = 0, kSequential, kLoadAware, kNetworkLoadAware };
inline constexpr int kPolicyCount = 4;
std::string to_string(Policy policy);

/// One policy's run of one job instance.
struct PolicyRun {
  Policy policy = Policy::kRandom;
  core::Allocation allocation;
  mpisim::ExecutionResult execution;
  /// Ground-truth mean CPU load per logical core over the allocated nodes
  /// at allocation time (Figure 5's metric).
  double load_per_core = 0.0;
};

struct ComparisonConfig {
  /// Builds the application profile for the requested rank count.
  std::function<mpisim::AppProfile(int nranks)> make_app;
  int nprocs = 32;
  int ppn = 4;  ///< the paper uses 4 processes/node throughout
  core::JobWeights job;  ///< α/β
  core::ComputeLoadWeights compute_weights;
  core::NetworkLoadWeights network_weights;
  int repetitions = 5;
  double gap_seconds = 20.0;  ///< simulated idle time between runs
  std::uint64_t allocator_seed = 7;
};

struct ComparisonResult {
  /// runs[policy][repetition]
  std::vector<std::vector<PolicyRun>> runs;

  std::vector<double> times(Policy policy) const;
  std::vector<double> loads_per_core(Policy policy) const;
  double mean_time(Policy policy) const;
};

/// Runs all four policies in sequence on the testbed, `repetitions` times.
ComparisonResult run_policy_comparison(Testbed& testbed,
                                       const ComparisonConfig& config);

/// Paired gain of the network-and-load-aware policy over `other`:
/// (t_other − t_ours) / t_other per (config, repetition) pair.
struct GainStats {
  double average = 0.0;
  double median = 0.0;
  double max = 0.0;
  std::size_t samples = 0;
};
GainStats gains_over(const std::vector<double>& ours,
                     const std::vector<double>& other);

/// Pools paired gains across many comparisons (e.g. a whole Figure-4 sweep)
/// into one Table-2-style row.
GainStats pooled_gains(const std::vector<ComparisonResult>& results,
                       Policy other);

/// Ground-truth mean CPU load per logical core over a node set.
double ground_truth_load_per_core(const cluster::Cluster& cluster,
                                  const std::vector<cluster::NodeId>& nodes);

}  // namespace nlarm::exp
