#include "exp/experiment.h"

#include <algorithm>

#include "mpisim/placement.h"
#include "util/check.h"
#include "util/stats.h"

namespace nlarm::exp {

Testbed::Testbed(const Options& options) : options_(options) {
  cluster_ = std::make_unique<cluster::Cluster>(
      cluster::make_iitk_cluster(options.cluster));
  network_ = std::make_unique<net::NetworkModel>(*cluster_, flows_);
  sim_ = std::make_unique<sim::Simulation>(options.seed);
  workload::ScenarioOptions scenario_options;
  scenario_options.kind = options.scenario;
  scenario_options.seed = options.seed ^ 0x5ce9a210ULL;
  scenario_ = std::make_unique<workload::Scenario>(*cluster_, flows_,
                                                   *network_,
                                                   scenario_options);
  monitor::MonitorConfig monitor_config = options.monitor;
  monitor_config.seed ^= options.seed;
  monitor_ = std::make_unique<monitor::ResourceMonitor>(
      *cluster_, *network_, *sim_, monitor_config);
  runtime_ =
      std::make_unique<mpisim::MpiRuntime>(*cluster_, *network_,
                                           options.runtime);
}

std::unique_ptr<Testbed> Testbed::make(const Options& options) {
  NLARM_CHECK(options.warmup_seconds >= 0.0) << "negative warm-up";
  std::unique_ptr<Testbed> testbed(new Testbed(options));
  testbed->scenario_->attach(*testbed->sim_);
  testbed->monitor_->start();
  testbed->sim_->run_until(options.warmup_seconds);
  return testbed;
}

std::string to_string(Policy policy) {
  switch (policy) {
    case Policy::kRandom:
      return "random";
    case Policy::kSequential:
      return "sequential";
    case Policy::kLoadAware:
      return "load-aware";
    case Policy::kNetworkLoadAware:
      return "network-load-aware";
  }
  return "?";
}

std::vector<double> ComparisonResult::times(Policy policy) const {
  const auto& policy_runs = runs[static_cast<std::size_t>(policy)];
  std::vector<double> out;
  out.reserve(policy_runs.size());
  for (const PolicyRun& run : policy_runs) {
    out.push_back(run.execution.total_s);
  }
  return out;
}

std::vector<double> ComparisonResult::loads_per_core(Policy policy) const {
  const auto& policy_runs = runs[static_cast<std::size_t>(policy)];
  std::vector<double> out;
  out.reserve(policy_runs.size());
  for (const PolicyRun& run : policy_runs) {
    out.push_back(run.load_per_core);
  }
  return out;
}

double ComparisonResult::mean_time(Policy policy) const {
  const std::vector<double> t = times(policy);
  return util::mean(t);
}

double ground_truth_load_per_core(const cluster::Cluster& cluster,
                                  const std::vector<cluster::NodeId>& nodes) {
  if (nodes.empty()) return 0.0;
  double sum = 0.0;
  for (cluster::NodeId id : nodes) {
    const cluster::Node& node = cluster.node(id);
    sum += node.dyn.total_load() / static_cast<double>(node.spec.core_count);
  }
  return sum / static_cast<double>(nodes.size());
}

ComparisonResult run_policy_comparison(Testbed& testbed,
                                       const ComparisonConfig& config) {
  NLARM_CHECK(static_cast<bool>(config.make_app)) << "missing app factory";
  NLARM_CHECK(config.repetitions >= 1) << "need at least one repetition";

  core::AllocationRequest request;
  request.nprocs = config.nprocs;
  request.ppn = config.ppn;
  request.job = config.job;
  request.compute_weights = config.compute_weights;
  request.network_weights = config.network_weights;
  request.validate();

  core::RandomAllocator random_alloc(config.allocator_seed);
  core::SequentialAllocator sequential_alloc(config.allocator_seed ^ 0x9e37ULL);
  core::LoadAwareAllocator load_aware_alloc;
  core::NetworkLoadAwareAllocator network_aware_alloc;
  core::Allocator* allocators[kPolicyCount] = {
      &random_alloc, &sequential_alloc, &load_aware_alloc,
      &network_aware_alloc};

  const mpisim::AppProfile app = config.make_app(config.nprocs);

  ComparisonResult result;
  result.runs.resize(kPolicyCount);
  for (int rep = 0; rep < config.repetitions; ++rep) {
    for (int p = 0; p < kPolicyCount; ++p) {
      const monitor::ClusterSnapshot snapshot = testbed.snapshot();
      PolicyRun run;
      run.policy = static_cast<Policy>(p);
      run.allocation = allocators[p]->allocate(snapshot, request);
      run.load_per_core =
          ground_truth_load_per_core(testbed.cluster(), run.allocation.nodes);
      const mpisim::Placement placement =
          mpisim::Placement::from_allocation(run.allocation);
      run.execution = testbed.runtime().run(testbed.sim(), app, placement);
      result.runs[static_cast<std::size_t>(p)].push_back(std::move(run));
      // Idle gap between runs so the background decorrelates a little.
      testbed.sim().run_until(testbed.sim().now() + config.gap_seconds);
    }
  }
  return result;
}

GainStats gains_over(const std::vector<double>& ours,
                     const std::vector<double>& other) {
  NLARM_CHECK(ours.size() == other.size()) << "unpaired gain vectors";
  std::vector<double> gains;
  gains.reserve(ours.size());
  for (std::size_t i = 0; i < ours.size(); ++i) {
    NLARM_CHECK(other[i] > 0.0) << "non-positive baseline time";
    gains.push_back((other[i] - ours[i]) / other[i]);
  }
  GainStats stats;
  stats.samples = gains.size();
  stats.average = util::mean(gains);
  stats.median = util::median(gains);
  stats.max = util::max_value(gains);
  return stats;
}

GainStats pooled_gains(const std::vector<ComparisonResult>& results,
                       Policy other) {
  std::vector<double> ours_all;
  std::vector<double> other_all;
  for (const ComparisonResult& result : results) {
    const std::vector<double> ours = result.times(Policy::kNetworkLoadAware);
    const std::vector<double> theirs = result.times(other);
    ours_all.insert(ours_all.end(), ours.begin(), ours.end());
    other_all.insert(other_all.end(), theirs.begin(), theirs.end());
  }
  return gains_over(ours_all, other_all);
}

}  // namespace nlarm::exp
