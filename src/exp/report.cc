#include "exp/report.h"

#include <ostream>

#include "util/check.h"
#include "util/strings.h"
#include "util/table.h"

namespace nlarm::exp {

void print_gain_table(std::ostream& out, const std::string& title,
                      const std::vector<GainRow>& rows) {
  out << title << "\n";
  util::TextTable table({"Allocation Policy", "Avg Gain", "Median Gain",
                         "Max Gain", "Paper Avg", "Paper Median",
                         "Paper Max", "Samples"});
  for (const GainRow& row : rows) {
    table.add_row({row.baseline,
                   util::format("%.1f%%", row.measured.average * 100.0),
                   util::format("%.1f%%", row.measured.median * 100.0),
                   util::format("%.1f%%", row.measured.max * 100.0),
                   util::format("%.1f%%", row.paper_average * 100.0),
                   util::format("%.1f%%", row.paper_median * 100.0),
                   util::format("%.1f%%", row.paper_max * 100.0),
                   util::format("%zu", row.measured.samples)});
  }
  table.print(out);
  out << "\n";
}

ShapeCheck check(const std::string& description, bool passed,
                 const std::string& detail) {
  return ShapeCheck{description, passed, detail};
}

void print_shape_checks(std::ostream& out,
                        const std::vector<ShapeCheck>& checks) {
  int passed = 0;
  out << "Shape checks (paper findings that should reproduce):\n";
  for (const ShapeCheck& c : checks) {
    out << "  [" << (c.passed ? "PASS" : "FAIL") << "] " << c.description;
    if (!c.detail.empty()) out << " — " << c.detail;
    out << "\n";
    if (c.passed) ++passed;
  }
  out << util::format("  %d/%zu shape checks passed\n\n", passed,
                      checks.size());
}

void print_time_table(std::ostream& out, const std::string& title,
                      const std::string& row_label,
                      const std::vector<double>& row_values,
                      const std::vector<ComparisonResult>& results) {
  NLARM_CHECK(row_values.size() == results.size())
      << "row values and results mismatch";
  out << title << "\n";
  util::TextTable table({row_label, "random", "sequential", "load-aware",
                         "network-load-aware"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.add_row(util::format("%g", row_values[i]),
                  {results[i].mean_time(Policy::kRandom),
                   results[i].mean_time(Policy::kSequential),
                   results[i].mean_time(Policy::kLoadAware),
                   results[i].mean_time(Policy::kNetworkLoadAware)});
  }
  table.print(out);
  out << "(mean execution seconds over repetitions)\n\n";
}

}  // namespace nlarm::exp
