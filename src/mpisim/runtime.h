// MpiRuntime: executes an AppProfile on a Placement.
//
// Two modes:
//  * estimate()  — price the whole run under frozen current conditions;
//  * run()       — co-simulate: execute the job in chunks, advancing the
//    discrete-event simulation between chunks so background load and
//    traffic evolve *during* the run. This produces the run-to-run variance
//    the paper quantifies with coefficients of variation (§5.1–5.2).
#pragma once

#include "cluster/cluster.h"
#include "mpisim/cost_model.h"
#include "net/network_model.h"
#include "sim/simulation.h"

namespace nlarm::mpisim {

struct ExecutionResult {
  double total_s = 0.0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  int iterations = 0;

  double comm_fraction() const {
    return total_s > 0.0 ? comm_s / total_s : 0.0;
  }
};

struct RuntimeOptions {
  CostModelOptions cost;
  /// run() re-prices conditions after each chunk of iterations; more chunks
  /// = finer sensitivity to background churn, more work.
  int chunks = 25;
};

class MpiRuntime {
 public:
  MpiRuntime(const cluster::Cluster& cluster, const net::NetworkModel& network,
             RuntimeOptions options = {});

  /// Whole-run estimate under frozen conditions.
  ExecutionResult estimate(const AppProfile& app,
                           const Placement& placement) const;

  /// Co-simulated run: advances `sim` by the job's execution time, sampling
  /// fresh conditions between chunks. The scenario attached to `sim` keeps
  /// mutating the cluster during the run.
  ExecutionResult run(sim::Simulation& sim, const AppProfile& app,
                      const Placement& placement) const;

  /// Like run(), but the job also leaves a footprint while executing: its
  /// ranks appear in the nodes' job_load and its inter-node traffic joins
  /// the flow set — so the monitor and any concurrently-brokered jobs see
  /// this one (the paper's Figure-5 load readings include running MPI
  /// ranks). The footprint is lifted while pricing the job's own phases
  /// (the cost model already accounts for its ranks) and removed at the
  /// end. `cluster` and `flows` must be the ones this runtime was built
  /// over.
  ExecutionResult run_with_footprint(sim::Simulation& sim,
                                     const AppProfile& app,
                                     const Placement& placement,
                                     cluster::Cluster& cluster,
                                     net::FlowSet& flows) const;

  const CostModel& cost_model() const { return cost_model_; }

 private:
  CostModel cost_model_;
  RuntimeOptions options_;
};

}  // namespace nlarm::mpisim
