// Application profiles: the iteration structure an MPI proxy app presents
// to the execution simulator.
//
// A profile is a list of phases executed by every rank each iteration:
// compute (flops), 3-D halo exchange (bytes per face), or allreduce
// (message bytes). miniMD and miniFE (src/apps) are expressed in exactly
// these terms.
#pragma once

#include <array>
#include <string>
#include <variant>
#include <vector>

namespace nlarm::mpisim {

struct ComputePhase {
  double flops_per_rank = 0.0;
};

/// Nearest-neighbor halo exchange over the rank grid (6 faces in 3-D).
struct HaloPhase {
  double bytes_per_face = 0.0;
  bool periodic = true;  ///< wrap at grid boundaries (miniMD yes, miniFE no)
};

/// Recursive-doubling allreduce across all ranks.
struct AllreducePhase {
  double bytes = 8.0;
};

/// Binomial-tree broadcast from rank 0.
struct BroadcastPhase {
  double bytes = 0.0;
};

/// Binomial-tree reduce to rank 0.
struct ReducePhase {
  double bytes = 0.0;
};

/// Personalized all-to-all: every rank sends `bytes_per_pair` to every
/// other rank (the transpose step of distributed FFTs — the most
/// bisection-bandwidth-hungry MPI pattern).
struct AlltoallPhase {
  double bytes_per_pair = 0.0;
};

using Phase = std::variant<ComputePhase, HaloPhase, AllreducePhase,
                           BroadcastPhase, ReducePhase, AlltoallPhase>;

struct AppProfile {
  std::string name;
  int nranks = 1;
  int iterations = 1;
  /// 3-D decomposition of ranks: grid[0]*grid[1]*grid[2] == nranks.
  std::array<int, 3> grid = {1, 1, 1};
  std::vector<Phase> phases;  ///< executed once per iteration

  void validate() const;
};

/// Factors `n` into the most cubic 3-D grid (px ≤ py ≤ pz, px·py·pz = n).
std::array<int, 3> balanced_grid_3d(int n);

}  // namespace nlarm::mpisim
