// Job profiling for weight selection.
//
// §5 of the paper: "One may set these weights by profiling an application
// and decide the relative weights on the basis of the computation and
// communication times"; §6 lists enhancing profiling tools as future work.
// The profiler prices one run of the app on a reference placement, splits
// compute vs communication time, inspects the message-size mix, and derives
// all three weight sets of the allocator.
#pragma once

#include "core/weights.h"
#include "mpisim/runtime.h"

namespace nlarm::mpisim {

struct JobProfileReport {
  double total_s = 0.0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  double comm_fraction = 0.0;
  /// Mean bytes per point-to-point message across the app's comm phases.
  double mean_message_bytes = 0.0;

  core::JobWeights job_weights;               ///< α = 1 − comm fraction
  core::ComputeLoadWeights compute_weights;   ///< profile-matched Eq. 1 set
  core::NetworkLoadWeights network_weights;   ///< latency vs bandwidth mix
};

class JobProfiler {
 public:
  /// Messages below this are considered latency-bound (§3.2.2: "extensive
  /// communications, but the communication volume is low").
  static constexpr double kSmallMessageBytes = 16.0 * 1024.0;

  JobProfiler(const cluster::Cluster& cluster,
              const net::NetworkModel& network,
              RuntimeOptions options = {});

  /// Profiles the app on the given placement under frozen current
  /// conditions and derives weights.
  JobProfileReport profile(const AppProfile& app,
                           const Placement& placement) const;

 private:
  MpiRuntime runtime_;
};

/// Mean P2P message size implied by an app profile (halo faces and
/// allreduce payloads, weighted by message count per iteration).
double mean_message_bytes(const AppProfile& app);

}  // namespace nlarm::mpisim
