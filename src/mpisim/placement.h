// Placement: which cluster node each MPI rank runs on.
#pragma once

#include <vector>

#include "cluster/node.h"
#include "core/allocator.h"

namespace nlarm::mpisim {

class Placement {
 public:
  /// rank_nodes[r] = node of rank r.
  explicit Placement(std::vector<cluster::NodeId> rank_nodes);

  /// Block placement from an allocation: node i hosts its procs_per_node[i]
  /// consecutive ranks (MPI machinefile semantics).
  static Placement from_allocation(const core::Allocation& allocation);

  /// Round-robin (cyclic) placement: ranks are dealt one at a time across
  /// the allocation's nodes (mpirun --map-by node). Spreads consecutive
  /// ranks — and therefore halo neighbors — across nodes, which usually
  /// hurts nearest-neighbor apps; exposed so that effect can be measured.
  static Placement round_robin_from_allocation(
      const core::Allocation& allocation);

  int nranks() const { return static_cast<int>(rank_nodes_.size()); }
  cluster::NodeId node_of(int rank) const;

  /// Distinct nodes used, in first-appearance order.
  const std::vector<cluster::NodeId>& nodes() const { return nodes_; }

  /// Number of ranks placed on a node (0 if unused).
  int ranks_on(cluster::NodeId node) const;

 private:
  std::vector<cluster::NodeId> rank_nodes_;
  std::vector<cluster::NodeId> nodes_;
  std::vector<int> counts_;  // parallel to nodes_
};

}  // namespace nlarm::mpisim
