// Job footprint: the load a running MPI job itself imprints on the world.
//
// The paper's monitor measures *everything* on a node — including MPI jobs
// already brokered onto it (its Figure 5 load readings include the running
// ranks). A JobFootprint applies the job's own CPU load (one runnable
// process per rank) and its inter-node traffic (estimated from the app's
// per-iteration communication volume) to the cluster and flow set, so that
// concurrent jobs and the monitoring pipeline see each other.
//
// RAII: the footprint is removed on destruction (or explicit remove()).
// While pricing the job's own iterations the footprint must be lifted —
// the cost model already accounts for the job's ranks separately — which
// MpiRuntime::run_with_footprint handles automatically.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "mpisim/app_profile.h"
#include "mpisim/placement.h"
#include "net/flows.h"

namespace nlarm::mpisim {

/// Estimated off-node traffic of one iteration, as directed node-pair
/// byte counts.
struct PairTraffic {
  cluster::NodeId src = cluster::kInvalidNode;
  cluster::NodeId dst = cluster::kInvalidNode;
  double bytes_per_iteration = 0.0;
};

/// Sums the app's per-iteration inter-node traffic over the placement
/// (halo faces, allreduce rounds, broadcast/reduce trees, alltoall).
std::vector<PairTraffic> estimate_pair_traffic(const AppProfile& app,
                                               const Placement& placement);

class JobFootprint {
 public:
  JobFootprint() = default;
  /// Applies the footprint immediately. `iteration_seconds` converts the
  /// traffic estimate into flow rates; pass the current per-iteration time.
  JobFootprint(cluster::Cluster& cluster, net::FlowSet& flows,
               const AppProfile& app, const Placement& placement,
               double iteration_seconds);
  ~JobFootprint();

  JobFootprint(const JobFootprint&) = delete;
  JobFootprint& operator=(const JobFootprint&) = delete;
  JobFootprint(JobFootprint&& other) noexcept;
  JobFootprint& operator=(JobFootprint&& other) noexcept;

  /// Temporarily lifts / re-applies the footprint (used while pricing the
  /// job's own phases).
  void suspend();
  void resume();

  /// Permanently removes the footprint.
  void remove();

  bool active() const { return applied_; }

 private:
  void apply();

  cluster::Cluster* cluster_ = nullptr;
  net::FlowSet* flows_ = nullptr;
  std::vector<std::pair<cluster::NodeId, double>> load_additions_;
  std::vector<PairTraffic> traffic_;
  double iteration_seconds_ = 0.0;
  std::vector<net::FlowId> flow_ids_;
  bool applied_ = false;
};

}  // namespace nlarm::mpisim
