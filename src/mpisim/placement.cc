#include "mpisim/placement.h"

#include <algorithm>

#include "util/check.h"

namespace nlarm::mpisim {

Placement::Placement(std::vector<cluster::NodeId> rank_nodes)
    : rank_nodes_(std::move(rank_nodes)) {
  NLARM_CHECK(!rank_nodes_.empty()) << "placement needs at least one rank";
  for (cluster::NodeId node : rank_nodes_) {
    NLARM_CHECK(node >= 0) << "invalid node in placement";
    auto it = std::find(nodes_.begin(), nodes_.end(), node);
    if (it == nodes_.end()) {
      nodes_.push_back(node);
      counts_.push_back(1);
    } else {
      counts_[static_cast<std::size_t>(it - nodes_.begin())] += 1;
    }
  }
}

Placement Placement::from_allocation(const core::Allocation& allocation) {
  NLARM_CHECK(allocation.nodes.size() == allocation.procs_per_node.size())
      << "malformed allocation";
  std::vector<cluster::NodeId> rank_nodes;
  rank_nodes.reserve(static_cast<std::size_t>(allocation.total_procs));
  for (std::size_t i = 0; i < allocation.nodes.size(); ++i) {
    for (int p = 0; p < allocation.procs_per_node[i]; ++p) {
      rank_nodes.push_back(allocation.nodes[i]);
    }
  }
  return Placement(std::move(rank_nodes));
}

Placement Placement::round_robin_from_allocation(
    const core::Allocation& allocation) {
  NLARM_CHECK(allocation.nodes.size() == allocation.procs_per_node.size())
      << "malformed allocation";
  std::vector<int> remaining = allocation.procs_per_node;
  std::vector<cluster::NodeId> rank_nodes;
  rank_nodes.reserve(static_cast<std::size_t>(allocation.total_procs));
  std::size_t cursor = 0;
  while (rank_nodes.size() <
         static_cast<std::size_t>(allocation.total_procs)) {
    if (remaining[cursor] > 0) {
      rank_nodes.push_back(allocation.nodes[cursor]);
      remaining[cursor] -= 1;
    }
    cursor = (cursor + 1) % allocation.nodes.size();
  }
  return Placement(std::move(rank_nodes));
}

cluster::NodeId Placement::node_of(int rank) const {
  NLARM_CHECK(rank >= 0 && rank < nranks()) << "bad rank " << rank;
  return rank_nodes_[static_cast<std::size_t>(rank)];
}

int Placement::ranks_on(cluster::NodeId node) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == node) return counts_[i];
  }
  return 0;
}

}  // namespace nlarm::mpisim
