#include "mpisim/footprint.h"

#include <cmath>
#include <map>

#include "util/check.h"

namespace nlarm::mpisim {

namespace {

/// Rank-grid neighbor helper (duplicated shape of the cost model's private
/// traversal; kept simple and local).
int grid_neighbor(int rank, const std::array<int, 3>& grid, int dim, int dir,
                  bool periodic) {
  int coords[3] = {rank % grid[0], (rank / grid[0]) % grid[1],
                   rank / (grid[0] * grid[1])};
  const int extent = grid[static_cast<std::size_t>(dim)];
  int next = coords[dim] + dir;
  if (next < 0 || next >= extent) {
    if (!periodic || extent == 1) return -1;
    next = (next + extent) % extent;
  }
  if (next == coords[dim]) return -1;
  coords[dim] = next;
  return coords[0] + grid[0] * (coords[1] + grid[1] * coords[2]);
}

}  // namespace

std::vector<PairTraffic> estimate_pair_traffic(const AppProfile& app,
                                               const Placement& placement) {
  app.validate();
  NLARM_CHECK(placement.nranks() == app.nranks) << "placement mismatch";
  std::map<std::pair<cluster::NodeId, cluster::NodeId>, double> bytes;
  auto add = [&](int rank_a, int rank_b, double b) {
    const cluster::NodeId u = placement.node_of(rank_a);
    const cluster::NodeId v = placement.node_of(rank_b);
    if (u == v) return;  // intra-node traffic never reaches the network
    bytes[{u, v}] += b;
  };

  for (const Phase& phase : app.phases) {
    if (const auto* halo = std::get_if<HaloPhase>(&phase)) {
      for (int rank = 0; rank < app.nranks; ++rank) {
        for (int dim = 0; dim < 3; ++dim) {
          for (int dir : {-1, +1}) {
            const int nb =
                grid_neighbor(rank, app.grid, dim, dir, halo->periodic);
            if (nb >= 0) add(rank, nb, halo->bytes_per_face);
          }
        }
      }
    } else if (const auto* ar = std::get_if<AllreducePhase>(&phase)) {
      for (int bit = 1; bit < app.nranks; bit <<= 1) {
        for (int rank = 0; rank < app.nranks; ++rank) {
          const int partner = rank ^ bit;
          if (partner < app.nranks && partner > rank) {
            add(rank, partner, ar->bytes);
            add(partner, rank, ar->bytes);
          }
        }
      }
    } else if (const auto* bcast = std::get_if<BroadcastPhase>(&phase)) {
      for (int bit = 1; bit < app.nranks; bit <<= 1) {
        for (int rank = 0; rank < bit && rank + bit < app.nranks; ++rank) {
          add(rank, rank + bit, bcast->bytes);
        }
      }
    } else if (const auto* reduce = std::get_if<ReducePhase>(&phase)) {
      for (int bit = 1; bit < app.nranks; bit <<= 1) {
        for (int rank = 0; rank < bit && rank + bit < app.nranks; ++rank) {
          add(rank + bit, rank, reduce->bytes);
        }
      }
    } else if (const auto* a2a = std::get_if<AlltoallPhase>(&phase)) {
      for (int rank = 0; rank < app.nranks; ++rank) {
        for (int partner = 0; partner < app.nranks; ++partner) {
          if (partner != rank) add(rank, partner, a2a->bytes_per_pair);
        }
      }
    }
  }

  std::vector<PairTraffic> traffic;
  traffic.reserve(bytes.size());
  for (const auto& [pair, b] : bytes) {
    traffic.push_back(PairTraffic{pair.first, pair.second, b});
  }
  return traffic;
}

JobFootprint::JobFootprint(cluster::Cluster& cluster, net::FlowSet& flows,
                           const AppProfile& app, const Placement& placement,
                           double iteration_seconds)
    : cluster_(&cluster),
      flows_(&flows),
      traffic_(estimate_pair_traffic(app, placement)),
      iteration_seconds_(iteration_seconds) {
  NLARM_CHECK(iteration_seconds > 0.0) << "iteration time must be positive";
  for (cluster::NodeId node : placement.nodes()) {
    load_additions_.emplace_back(
        node, static_cast<double>(placement.ranks_on(node)));
  }
  apply();
}

JobFootprint::~JobFootprint() { remove(); }

JobFootprint::JobFootprint(JobFootprint&& other) noexcept {
  *this = std::move(other);
}

JobFootprint& JobFootprint::operator=(JobFootprint&& other) noexcept {
  if (this == &other) return *this;
  remove();
  cluster_ = other.cluster_;
  flows_ = other.flows_;
  load_additions_ = std::move(other.load_additions_);
  traffic_ = std::move(other.traffic_);
  iteration_seconds_ = other.iteration_seconds_;
  flow_ids_ = std::move(other.flow_ids_);
  applied_ = other.applied_;
  other.applied_ = false;
  other.cluster_ = nullptr;
  other.flows_ = nullptr;
  return *this;
}

void JobFootprint::apply() {
  NLARM_CHECK(!applied_) << "footprint already applied";
  for (const auto& [node, ranks] : load_additions_) {
    cluster_->mutable_node(node).dyn.job_load += ranks;
  }
  flow_ids_.clear();
  for (const PairTraffic& t : traffic_) {
    const double mbps =
        t.bytes_per_iteration / iteration_seconds_ * 8.0 / 1e6;
    if (mbps <= 0.0) continue;
    flow_ids_.push_back(flows_->add(t.src, t.dst, mbps));
  }
  applied_ = true;
}

void JobFootprint::suspend() {
  if (!applied_) return;
  for (const auto& [node, ranks] : load_additions_) {
    cluster::Node& n = cluster_->mutable_node(node);
    n.dyn.job_load = std::max(0.0, n.dyn.job_load - ranks);
  }
  for (net::FlowId id : flow_ids_) flows_->remove(id);
  flow_ids_.clear();
  applied_ = false;
}

void JobFootprint::resume() {
  if (applied_ || cluster_ == nullptr) return;
  apply();
}

void JobFootprint::remove() {
  suspend();
  cluster_ = nullptr;
  flows_ = nullptr;
}

}  // namespace nlarm::mpisim
