#include "mpisim/profiler.h"

#include <cmath>

#include "util/check.h"

namespace nlarm::mpisim {

JobProfiler::JobProfiler(const cluster::Cluster& cluster,
                         const net::NetworkModel& network,
                         RuntimeOptions options)
    : runtime_(cluster, network, options) {}

double mean_message_bytes(const AppProfile& app) {
  double bytes = 0.0;
  double messages = 0.0;
  for (const Phase& phase : app.phases) {
    if (const auto* halo = std::get_if<HaloPhase>(&phase)) {
      // Up to 6 face messages per rank per iteration.
      const double count = 6.0 * app.nranks;
      bytes += halo->bytes_per_face * count;
      messages += count;
    } else if (const auto* ar = std::get_if<AllreducePhase>(&phase)) {
      const double rounds =
          app.nranks > 1 ? std::ceil(std::log2(app.nranks)) : 0.0;
      const double count = rounds * app.nranks;
      bytes += ar->bytes * count;
      messages += count;
    } else if (const auto* bcast = std::get_if<BroadcastPhase>(&phase)) {
      const double count = std::max(0, app.nranks - 1);
      bytes += bcast->bytes * count;
      messages += count;
    } else if (const auto* reduce = std::get_if<ReducePhase>(&phase)) {
      const double count = std::max(0, app.nranks - 1);
      bytes += reduce->bytes * count;
      messages += count;
    } else if (const auto* a2a = std::get_if<AlltoallPhase>(&phase)) {
      const double count =
          static_cast<double>(app.nranks) * std::max(0, app.nranks - 1);
      bytes += a2a->bytes_per_pair * count;
      messages += count;
    }
  }
  return messages > 0.0 ? bytes / messages : 0.0;
}

JobProfileReport JobProfiler::profile(const AppProfile& app,
                                      const Placement& placement) const {
  app.validate();
  const ExecutionResult run = runtime_.estimate(app, placement);

  JobProfileReport report;
  report.total_s = run.total_s;
  report.compute_s = run.compute_s;
  report.comm_s = run.comm_s;
  report.comm_fraction = run.comm_fraction();
  report.mean_message_bytes = mean_message_bytes(app);

  // α/β directly from the time split (clamped so neither is ever zero —
  // the allocator should never be fully blind to one dimension).
  const double beta = std::clamp(report.comm_fraction, 0.05, 0.95);
  report.job_weights = core::JobWeights{1.0 - beta, beta};

  // Eq. 1 weight profile by dominant resource.
  if (report.comm_fraction > 0.6) {
    report.compute_weights = core::ComputeLoadWeights::network_intensive();
  } else if (report.comm_fraction < 0.3) {
    report.compute_weights = core::ComputeLoadWeights::compute_intensive();
  } else {
    report.compute_weights = core::ComputeLoadWeights::paper_defaults();
  }

  // Eq. 2 split by message-size mix (§3.2.2's guidance).
  if (report.mean_message_bytes > 0.0 &&
      report.mean_message_bytes < kSmallMessageBytes) {
    report.network_weights = core::NetworkLoadWeights::latency_sensitive();
  } else if (report.mean_message_bytes >= kSmallMessageBytes) {
    report.network_weights = core::NetworkLoadWeights::bandwidth_sensitive();
  } else {
    report.network_weights = core::NetworkLoadWeights::paper_defaults();
  }
  return report;
}

}  // namespace nlarm::mpisim
