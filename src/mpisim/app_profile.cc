#include "mpisim/app_profile.h"

#include <cmath>

#include "util/check.h"

namespace nlarm::mpisim {

void AppProfile::validate() const {
  NLARM_CHECK(nranks > 0) << "profile needs at least one rank";
  NLARM_CHECK(iterations > 0) << "profile needs at least one iteration";
  NLARM_CHECK(grid[0] > 0 && grid[1] > 0 && grid[2] > 0)
      << "grid dimensions must be positive";
  NLARM_CHECK(grid[0] * grid[1] * grid[2] == nranks)
      << "grid " << grid[0] << "x" << grid[1] << "x" << grid[2]
      << " does not cover " << nranks << " ranks";
  NLARM_CHECK(!phases.empty()) << "profile has no phases";
}

std::array<int, 3> balanced_grid_3d(int n) {
  NLARM_CHECK(n > 0) << "cannot factor non-positive rank count";
  // Pick px as the largest divisor ≤ cbrt(n), then py likewise for n/px.
  int px = 1;
  const int cbrt = static_cast<int>(std::cbrt(static_cast<double>(n)) + 0.5);
  for (int d = std::min(n, cbrt + 1); d >= 1; --d) {
    if (n % d == 0 && d <= cbrt + 1) {
      px = d;
      break;
    }
  }
  const int rest = n / px;
  int py = 1;
  const int sqrt_rest =
      static_cast<int>(std::sqrt(static_cast<double>(rest)) + 0.5);
  for (int d = std::min(rest, sqrt_rest + 1); d >= 1; --d) {
    if (rest % d == 0) {
      py = d;
      break;
    }
  }
  const int pz = rest / py;
  std::array<int, 3> grid = {px, py, pz};
  // Order ascending for a canonical result.
  if (grid[0] > grid[1]) std::swap(grid[0], grid[1]);
  if (grid[1] > grid[2]) std::swap(grid[1], grid[2]);
  if (grid[0] > grid[1]) std::swap(grid[0], grid[1]);
  return grid;
}

}  // namespace nlarm::mpisim
