// The α–β communication/computation cost model.
//
// Prices one iteration of an AppProfile on a Placement under the *current*
// cluster and network conditions:
//
//  * compute — rank flops / (clock × flops-per-cycle × CPU share). The CPU
//    share on a node with C cores, background load L and p placed ranks is
//    min(1, C / (p + L)): the time-sharing coupling that makes loaded nodes
//    slow the whole bulk-synchronous job.
//  * point-to-point — latency + bytes / (available bandwidth / concurrency),
//    where concurrency accounts for the sender's other ranks sharing its
//    uplink.
//  * halo — per rank, the 6 face exchanges with an overlap factor;
//    iteration phase time is the max over ranks (BSP barrier).
//  * allreduce — recursive doubling; each round costs the slowest pair.
#pragma once

#include "cluster/cluster.h"
#include "mpisim/app_profile.h"
#include "mpisim/placement.h"
#include "net/network_model.h"

namespace nlarm::mpisim {

struct CostModelOptions {
  double flops_per_cycle = 4.0;       ///< per-core SIMD throughput factor
  double intranode_latency_us = 0.6;  ///< shared-memory transport
  double intranode_bandwidth_mbps = 48000.0;  ///< ~6 GB/s memory-bus copy
  /// Fraction of a rank's face exchanges that overlap each other (0 = fully
  /// serialized sends, 1 = perfect overlap → max of faces).
  double halo_overlap = 0.5;
  /// Interference from background processes *below* full core
  /// subscription: cache pollution, memory-bandwidth contention and
  /// scheduler jitter slow a bulk-synchronous rank by
  /// (1 + coeff × background_load_per_core) even when spare cores exist.
  /// This is the mechanism that makes the paper's moderately-loaded nodes
  /// (0.3–1.3 load/core, Fig. 5 / Table 4) cost 2–6× on execution time.
  double interference_coeff = 2.5;
  /// Loaded endpoints also delay MPI progress (rendezvous handshakes,
  /// unexpected-message handling): one-way latency is inflated by
  /// (1 + coeff × (load_per_core_src + load_per_core_dst)).
  double progress_latency_coeff = 0.5;
};

/// Per-iteration time split.
struct IterationCost {
  double compute_s = 0.0;
  double comm_s = 0.0;
  double total() const { return compute_s + comm_s; }
};

class CostModel {
 public:
  CostModel(const cluster::Cluster& cluster, const net::NetworkModel& network,
            CostModelOptions options = {});

  /// Time for one rank-to-rank message of `bytes` bytes. `concurrency` ≥ 1
  /// divides the available bandwidth (other ranks on the same node sending
  /// simultaneously).
  double p2p_time_s(cluster::NodeId src, cluster::NodeId dst, double bytes,
                    double concurrency = 1.0) const;

  /// Compute time of `flops` on one rank placed on `node`, given the node's
  /// current background load and the job's own rank count on it.
  double compute_time_s(cluster::NodeId node, double flops,
                        int job_ranks_on_node) const;

  /// Bulk-synchronous time of one phase under current conditions.
  double phase_time_s(const Phase& phase, const AppProfile& app,
                      const Placement& placement) const;

  /// One full iteration (all phases).
  IterationCost iteration_cost(const AppProfile& app,
                               const Placement& placement) const;

  const CostModelOptions& options() const { return options_; }

 private:
  double halo_time_s(const HaloPhase& halo, const AppProfile& app,
                     const Placement& placement) const;
  double allreduce_time_s(const AllreducePhase& ar,
                          const Placement& placement) const;
  /// Binomial-tree dissemination cost (broadcast and reduce share it).
  double tree_time_s(double bytes, const Placement& placement) const;
  double alltoall_time_s(const AlltoallPhase& a2a,
                         const Placement& placement) const;

  const cluster::Cluster& cluster_;
  const net::NetworkModel& network_;
  CostModelOptions options_;
};

}  // namespace nlarm::mpisim
