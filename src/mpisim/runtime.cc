#include "mpisim/runtime.h"

#include <algorithm>

#include "mpisim/footprint.h"
#include "util/check.h"

namespace nlarm::mpisim {

MpiRuntime::MpiRuntime(const cluster::Cluster& cluster,
                       const net::NetworkModel& network,
                       RuntimeOptions options)
    : cost_model_(cluster, network, options.cost), options_(options) {
  NLARM_CHECK(options.chunks >= 1) << "need at least one chunk";
}

ExecutionResult MpiRuntime::estimate(const AppProfile& app,
                                     const Placement& placement) const {
  const IterationCost per_iter = cost_model_.iteration_cost(app, placement);
  ExecutionResult result;
  result.iterations = app.iterations;
  result.compute_s = per_iter.compute_s * app.iterations;
  result.comm_s = per_iter.comm_s * app.iterations;
  result.total_s = result.compute_s + result.comm_s;
  return result;
}

ExecutionResult MpiRuntime::run(sim::Simulation& sim, const AppProfile& app,
                                const Placement& placement) const {
  app.validate();
  ExecutionResult result;
  result.iterations = app.iterations;

  const int chunks = std::min(options_.chunks, app.iterations);
  int done = 0;
  for (int c = 0; c < chunks; ++c) {
    const int remaining_chunks = chunks - c;
    const int iters =
        (app.iterations - done + remaining_chunks - 1) / remaining_chunks;
    const IterationCost per_iter =
        cost_model_.iteration_cost(app, placement);
    const double chunk_time = per_iter.total() * iters;
    result.compute_s += per_iter.compute_s * iters;
    result.comm_s += per_iter.comm_s * iters;
    done += iters;
    // Let the background world move on while the job runs.
    sim.run_until(sim.now() + chunk_time);
  }
  NLARM_CHECK(done == app.iterations) << "chunking lost iterations";
  result.total_s = result.compute_s + result.comm_s;
  return result;
}

ExecutionResult MpiRuntime::run_with_footprint(sim::Simulation& sim,
                                               const AppProfile& app,
                                               const Placement& placement,
                                               cluster::Cluster& cluster,
                                               net::FlowSet& flows) const {
  app.validate();
  ExecutionResult result;
  result.iterations = app.iterations;

  // Seed the footprint's flow rates from a frozen estimate; refreshed each
  // chunk once the live per-iteration time is known.
  const IterationCost seed = cost_model_.iteration_cost(app, placement);
  JobFootprint footprint(cluster, flows, app, placement,
                         std::max(seed.total(), 1e-9));

  const int chunks = std::min(options_.chunks, app.iterations);
  int done = 0;
  for (int c = 0; c < chunks; ++c) {
    const int remaining_chunks = chunks - c;
    const int iters =
        (app.iterations - done + remaining_chunks - 1) / remaining_chunks;
    // Price with the footprint lifted: the cost model adds this job's ranks
    // itself, and the job's own flows must not appear as competition.
    footprint.suspend();
    const IterationCost per_iter = cost_model_.iteration_cost(app, placement);
    footprint.resume();
    const double chunk_time = per_iter.total() * iters;
    result.compute_s += per_iter.compute_s * iters;
    result.comm_s += per_iter.comm_s * iters;
    done += iters;
    sim.run_until(sim.now() + chunk_time);
  }
  NLARM_CHECK(done == app.iterations) << "chunking lost iterations";
  result.total_s = result.compute_s + result.comm_s;
  return result;
}

}  // namespace nlarm::mpisim
