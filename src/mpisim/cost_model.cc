#include "mpisim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nlarm::mpisim {

namespace {

/// Rank index ↔ 3-D grid coordinates (x fastest, like MPI_Cart_create with
/// default ordering).
struct GridCoord {
  int x, y, z;
};

GridCoord coord_of(int rank, const std::array<int, 3>& grid) {
  GridCoord c;
  c.x = rank % grid[0];
  c.y = (rank / grid[0]) % grid[1];
  c.z = rank / (grid[0] * grid[1]);
  return c;
}

int rank_of(GridCoord c, const std::array<int, 3>& grid) {
  return c.x + grid[0] * (c.y + grid[1] * c.z);
}

/// Neighbor in dimension `dim` (0..2), direction ±1. Returns -1 when the
/// boundary is open (non-periodic edge).
int neighbor_rank(int rank, const std::array<int, 3>& grid, int dim, int dir,
                  bool periodic) {
  GridCoord c = coord_of(rank, grid);
  int* axis = dim == 0 ? &c.x : dim == 1 ? &c.y : &c.z;
  const int extent = grid[static_cast<std::size_t>(dim)];
  int next = *axis + dir;
  if (next < 0 || next >= extent) {
    if (!periodic || extent == 1) return -1;
    next = (next + extent) % extent;
  }
  if (next == *axis) return -1;  // extent 1: neighbor is self
  *axis = next;
  return rank_of(c, grid);
}

}  // namespace

CostModel::CostModel(const cluster::Cluster& cluster,
                     const net::NetworkModel& network,
                     CostModelOptions options)
    : cluster_(cluster), network_(network), options_(options) {
  NLARM_CHECK(options.flops_per_cycle > 0.0) << "flops/cycle must be > 0";
  NLARM_CHECK(options.halo_overlap >= 0.0 && options.halo_overlap <= 1.0)
      << "halo overlap must be in [0,1]";
}

double CostModel::p2p_time_s(cluster::NodeId src, cluster::NodeId dst,
                             double bytes, double concurrency) const {
  NLARM_CHECK(bytes >= 0.0) << "negative message size";
  NLARM_CHECK(concurrency >= 1.0) << "concurrency must be >= 1";
  double latency_us;
  double bandwidth_mbps;
  if (src == dst) {
    latency_us = options_.intranode_latency_us;
    bandwidth_mbps = options_.intranode_bandwidth_mbps;
  } else {
    latency_us = network_.latency_us(src, dst);
    bandwidth_mbps = network_.available_bandwidth_mbps(src, dst);
    // Progress-engine starvation on loaded endpoints.
    const cluster::Node& s = cluster_.node(src);
    const cluster::Node& d = cluster_.node(dst);
    const double load_pc = s.dyn.total_load() / s.spec.core_count +
                           d.dyn.total_load() / d.spec.core_count;
    latency_us *= 1.0 + options_.progress_latency_coeff * load_pc;
  }
  const double bw_bytes_per_s = bandwidth_mbps / concurrency * 1e6 / 8.0;
  return latency_us * 1e-6 + bytes / bw_bytes_per_s;
}

double CostModel::compute_time_s(cluster::NodeId node, double flops,
                                 int job_ranks_on_node) const {
  NLARM_CHECK(flops >= 0.0) << "negative flops";
  NLARM_CHECK(job_ranks_on_node >= 1) << "rank count must be >= 1";
  const cluster::Node& n = cluster_.node(node);
  const double cores = static_cast<double>(n.spec.core_count);
  const double demand =
      static_cast<double>(job_ranks_on_node) + n.dyn.total_load();
  // Machine-repair time sharing: each runnable process gets an equal core
  // share once the node is oversubscribed...
  const double share = std::min(1.0, cores / std::max(demand, 1.0));
  // ...and below that, background processes still interfere (caches,
  // memory bandwidth, scheduler jitter) in proportion to load per core.
  const double interference =
      1.0 + options_.interference_coeff * (n.dyn.total_load() / cores);
  const double rate = n.spec.cpu_freq_ghz * 1e9 * options_.flops_per_cycle *
                      share / interference;
  return flops / rate;
}

double CostModel::halo_time_s(const HaloPhase& halo, const AppProfile& app,
                              const Placement& placement) const {
  double worst = 0.0;
  for (int rank = 0; rank < app.nranks; ++rank) {
    const cluster::NodeId src = placement.node_of(rank);
    // The sender's uplink is shared by all its node's ranks exchanging
    // off-node faces in the same phase.
    const double concurrency =
        std::max(1, placement.ranks_on(src));
    double sum = 0.0;
    double max_single = 0.0;
    for (int dim = 0; dim < 3; ++dim) {
      for (int dir : {-1, +1}) {
        const int nb =
            neighbor_rank(rank, app.grid, dim, dir, halo.periodic);
        if (nb < 0) continue;
        const cluster::NodeId dst = placement.node_of(nb);
        const double t = p2p_time_s(src, dst, halo.bytes_per_face,
                                    src == dst ? 1.0 : concurrency);
        sum += t;
        max_single = std::max(max_single, t);
      }
    }
    // Interpolate between fully-serialized (sum) and fully-overlapped
    // (max of any single exchange) per the overlap factor.
    const double rank_time =
        sum * (1.0 - options_.halo_overlap) + max_single * options_.halo_overlap;
    worst = std::max(worst, rank_time);
  }
  return worst;
}

double CostModel::allreduce_time_s(const AllreducePhase& ar,
                                   const Placement& placement) const {
  const int p = placement.nranks();
  if (p == 1) return 0.0;
  double total = 0.0;
  for (int bit = 1; bit < p; bit <<= 1) {
    double round_worst = 0.0;
    for (int rank = 0; rank < p; ++rank) {
      const int partner = rank ^ bit;
      if (partner >= p || partner < rank) continue;  // count each pair once
      const double t = p2p_time_s(placement.node_of(rank),
                                  placement.node_of(partner), ar.bytes);
      round_worst = std::max(round_worst, t);
    }
    total += round_worst;
  }
  return total;
}

double CostModel::tree_time_s(double bytes, const Placement& placement) const {
  // Binomial tree: in round k, ranks 0..2^k−1 each send to rank +2^k; the
  // round costs its slowest pair.
  const int p = placement.nranks();
  if (p == 1) return 0.0;
  double total = 0.0;
  for (int bit = 1; bit < p; bit <<= 1) {
    double round_worst = 0.0;
    for (int rank = 0; rank < bit && rank + bit < p; ++rank) {
      round_worst = std::max(
          round_worst, p2p_time_s(placement.node_of(rank),
                                  placement.node_of(rank + bit), bytes));
    }
    total += round_worst;
  }
  return total;
}

double CostModel::alltoall_time_s(const AlltoallPhase& a2a,
                                  const Placement& placement) const {
  // Every rank exchanges a personalized message with every other rank;
  // messages from one node share its uplink (concurrency = its rank count)
  // and the rank's own P−1 sends partially overlap like halo faces.
  const int p = placement.nranks();
  if (p == 1) return 0.0;
  double worst = 0.0;
  for (int rank = 0; rank < p; ++rank) {
    const cluster::NodeId src = placement.node_of(rank);
    const double concurrency = std::max(1, placement.ranks_on(src));
    double sum = 0.0;
    double max_single = 0.0;
    for (int partner = 0; partner < p; ++partner) {
      if (partner == rank) continue;
      const cluster::NodeId dst = placement.node_of(partner);
      const double t = p2p_time_s(src, dst, a2a.bytes_per_pair,
                                  src == dst ? 1.0 : concurrency);
      sum += t;
      max_single = std::max(max_single, t);
    }
    const double rank_time = sum * (1.0 - options_.halo_overlap) +
                             max_single * options_.halo_overlap;
    worst = std::max(worst, rank_time);
  }
  return worst;
}

double CostModel::phase_time_s(const Phase& phase, const AppProfile& app,
                               const Placement& placement) const {
  if (const auto* compute = std::get_if<ComputePhase>(&phase)) {
    // BSP: the slowest rank gates the iteration.
    double worst = 0.0;
    for (cluster::NodeId node : placement.nodes()) {
      worst = std::max(worst,
                       compute_time_s(node, compute->flops_per_rank,
                                      placement.ranks_on(node)));
    }
    return worst;
  }
  if (const auto* halo = std::get_if<HaloPhase>(&phase)) {
    return halo_time_s(*halo, app, placement);
  }
  if (const auto* ar = std::get_if<AllreducePhase>(&phase)) {
    return allreduce_time_s(*ar, placement);
  }
  if (const auto* bcast = std::get_if<BroadcastPhase>(&phase)) {
    return tree_time_s(bcast->bytes, placement);
  }
  if (const auto* reduce = std::get_if<ReducePhase>(&phase)) {
    return tree_time_s(reduce->bytes, placement);
  }
  const auto& a2a = std::get<AlltoallPhase>(phase);
  return alltoall_time_s(a2a, placement);
}

IterationCost CostModel::iteration_cost(const AppProfile& app,
                                        const Placement& placement) const {
  app.validate();
  NLARM_CHECK(placement.nranks() == app.nranks)
      << "placement has " << placement.nranks() << " ranks, app wants "
      << app.nranks;
  IterationCost cost;
  for (const Phase& phase : app.phases) {
    const double t = phase_time_s(phase, app, placement);
    if (std::holds_alternative<ComputePhase>(phase)) {
      cost.compute_s += t;
    } else {
      cost.comm_s += t;
    }
  }
  return cost;
}

}  // namespace nlarm::mpisim
