#include "net/flows.h"

#include "util/check.h"

namespace nlarm::net {

FlowId FlowSet::add(cluster::NodeId src, cluster::NodeId dst,
                    double rate_mbps) {
  NLARM_CHECK(src != dst) << "flow endpoints must differ";
  NLARM_CHECK(rate_mbps >= 0.0) << "negative flow rate " << rate_mbps;
  const FlowId id = next_id_++;
  flows_.emplace(id, Flow{id, src, dst, rate_mbps});
  ++revision_;
  return id;
}

bool FlowSet::remove(FlowId id) {
  const bool erased = flows_.erase(id) > 0;
  if (erased) ++revision_;
  return erased;
}

void FlowSet::set_rate(FlowId id, double rate_mbps) {
  NLARM_CHECK(rate_mbps >= 0.0) << "negative flow rate";
  auto it = flows_.find(id);
  NLARM_CHECK(it != flows_.end()) << "unknown flow id " << id;
  it->second.rate_mbps = rate_mbps;
  ++revision_;
}

double FlowSet::node_rate_mbps(cluster::NodeId node) const {
  double total = 0.0;
  for (const auto& [id, flow] : flows_) {
    if (flow.src == node || flow.dst == node) total += flow.rate_mbps;
  }
  return total;
}

}  // namespace nlarm::net
