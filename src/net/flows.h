// Background network flows.
//
// The paper attributes P2P bandwidth fluctuation to "shared network switches
// and links with various network-intensive jobs running on these and other
// nodes" (§1). We model that traffic as a set of point-to-point flows, each
// with an offered rate; the network model folds them into per-link load.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/node.h"

namespace nlarm::net {

using FlowId = std::int64_t;

struct Flow {
  FlowId id = -1;
  cluster::NodeId src = cluster::kInvalidNode;
  cluster::NodeId dst = cluster::kInvalidNode;
  double rate_mbps = 0.0;  ///< offered rate
};

/// Mutable registry of active background flows.
class FlowSet {
 public:
  /// Adds a flow and returns its id.
  FlowId add(cluster::NodeId src, cluster::NodeId dst, double rate_mbps);

  /// Removes a flow; returns false if the id is unknown (already expired).
  bool remove(FlowId id);

  /// Changes the offered rate of an existing flow.
  void set_rate(FlowId id, double rate_mbps);

  std::size_t size() const { return flows_.size(); }

  /// Iteration in id order (deterministic).
  const std::map<FlowId, Flow>& flows() const { return flows_; }

  /// Sum of offered rates of flows with `node` as an endpoint.
  double node_rate_mbps(cluster::NodeId node) const;

  /// Monotonically-increasing revision counter; bumped by every mutation.
  /// The network model uses it to invalidate its per-link load cache.
  std::uint64_t revision() const { return revision_; }

 private:
  std::map<FlowId, Flow> flows_;
  FlowId next_id_ = 0;
  std::uint64_t revision_ = 0;
};

}  // namespace nlarm::net
