#include "net/network_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nlarm::net {

NetworkModel::NetworkModel(const cluster::Cluster& cluster,
                           const FlowSet& flows, NetworkModelOptions options)
    : cluster_(cluster),
      flows_(flows),
      options_(options),
      uplink_background_(static_cast<std::size_t>(cluster.size()), 0.0) {
  NLARM_CHECK(options_.fair_share_floor > 0.0 &&
              options_.fair_share_floor < 1.0)
      << "fair share floor must be in (0,1)";
}

void NetworkModel::set_uplink_background_mbps(cluster::NodeId node,
                                              double mbps) {
  NLARM_CHECK(node >= 0 && node < cluster_.size()) << "bad node " << node;
  NLARM_CHECK(mbps >= 0.0) << "negative background rate";
  uplink_background_[node] = mbps;
  ++background_revision_;
}

double NetworkModel::uplink_background_mbps(cluster::NodeId node) const {
  NLARM_CHECK(node >= 0 && node < cluster_.size()) << "bad node " << node;
  return uplink_background_[node];
}

void NetworkModel::refresh_cache() const {
  if (cached_flow_revision_ == flows_.revision() &&
      cached_background_revision_ == background_revision_) {
    return;
  }
  const auto& topo = cluster_.topology();
  link_offered_cache_.assign(static_cast<std::size_t>(topo.link_count()), 0.0);
  // Uplink chatter.
  for (cluster::NodeId n = 0; n < cluster_.size(); ++n) {
    link_offered_cache_[static_cast<std::size_t>(n)] = uplink_background_[n];
  }
  // Pairwise flows load every link on their path.
  for (const auto& [id, flow] : flows_.flows()) {
    for (cluster::LinkId link : topo.path_links(flow.src, flow.dst)) {
      link_offered_cache_[static_cast<std::size_t>(link)] += flow.rate_mbps;
    }
  }
  cached_flow_revision_ = flows_.revision();
  cached_background_revision_ = background_revision_;
}

double NetworkModel::link_offered_mbps(cluster::LinkId link) const {
  refresh_cache();
  NLARM_CHECK(link >= 0 &&
              link < static_cast<cluster::LinkId>(link_offered_cache_.size()))
      << "bad link id " << link;
  return link_offered_cache_[static_cast<std::size_t>(link)];
}

double NetworkModel::link_utilization(cluster::LinkId link) const {
  const double capacity = cluster_.topology().link(link).capacity_mbps;
  return link_offered_mbps(link) / capacity;
}

double NetworkModel::peak_bandwidth_mbps(cluster::NodeId u,
                                         cluster::NodeId v) const {
  NLARM_CHECK(u != v) << "peak bandwidth of a node with itself";
  const auto& topo = cluster_.topology();
  double peak = std::numeric_limits<double>::infinity();
  for (cluster::LinkId link : topo.path_links(u, v)) {
    peak = std::min(peak, topo.link(link).capacity_mbps);
  }
  return peak;
}

double NetworkModel::available_bandwidth_mbps(cluster::NodeId u,
                                              cluster::NodeId v) const {
  NLARM_CHECK(u != v) << "bandwidth of a node with itself";
  refresh_cache();
  const auto& topo = cluster_.topology();
  double available = std::numeric_limits<double>::infinity();
  for (cluster::LinkId link : topo.path_links(u, v)) {
    const double capacity = topo.link(link).capacity_mbps;
    const double residual =
        capacity - link_offered_cache_[static_cast<std::size_t>(link)];
    // A new stream competes with existing traffic; even on a saturated link
    // TCP fairness yields it at least a floor share.
    const double share = std::max(residual, capacity * options_.fair_share_floor);
    available = std::min(available, share);
  }
  return available;
}

double NetworkModel::latency_us(cluster::NodeId u, cluster::NodeId v) const {
  NLARM_CHECK(u != v) << "latency of a node with itself";
  refresh_cache();
  const auto& topo = cluster_.topology();
  double latency = options_.endpoint_latency_us;
  latency += options_.per_switch_latency_us * topo.hops(u, v);
  for (cluster::LinkId link : topo.path_links(u, v)) {
    const double rho = std::min(link_utilization(link), 0.99);
    latency += options_.max_queue_us * std::pow(rho, options_.queue_exponent);
  }
  return latency;
}

double NetworkModel::measure_bandwidth_mbps(cluster::NodeId u,
                                            cluster::NodeId v,
                                            sim::Rng& rng) const {
  const double truth = available_bandwidth_mbps(u, v);
  const double noisy =
      truth * rng.lognormal(0.0, options_.bandwidth_probe_sigma);
  const double peak = peak_bandwidth_mbps(u, v);
  return std::clamp(noisy, peak * options_.fair_share_floor * 0.5, peak);
}

double NetworkModel::measure_latency_us(cluster::NodeId u, cluster::NodeId v,
                                        sim::Rng& rng) const {
  const double truth = latency_us(u, v);
  return truth * rng.lognormal(0.0, options_.latency_probe_sigma);
}

double NetworkModel::node_flow_mbps(cluster::NodeId node) const {
  NLARM_CHECK(node >= 0 && node < cluster_.size()) << "bad node " << node;
  return uplink_background_[node] + flows_.node_rate_mbps(node);
}

}  // namespace nlarm::net
