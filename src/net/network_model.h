// Network performance model.
//
// Maps topology + background flows + per-node chatter onto the quantities
// the paper's BandwidthD/LatencyD daemons measure and the MPI cost model
// consumes:
//
//  * available P2P bandwidth  — min residual capacity over the path links,
//    with a fair-share floor (a new TCP stream always extracts some share
//    of a saturated link);
//  * P2P latency — endpoint software cost + per-switch forwarding cost +
//    convex queueing delay that grows with link utilization.
//
// Both have *measurement* variants that add probe noise; the daemons use
// those, the simulator's ground truth uses the exact ones.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "net/flows.h"
#include "sim/rng.h"

namespace nlarm::net {

struct NetworkModelOptions {
  /// Fraction of link capacity a new stream can always claim on a saturated
  /// link (TCP fair-share floor).
  double fair_share_floor = 0.05;
  /// One-way endpoint (NIC + software stack) latency, microseconds.
  double endpoint_latency_us = 35.0;
  /// Forwarding latency per switch on the path, microseconds. Sized so the
  /// 1–4 hop spread matches the paper's observed 80–550 µs latency range.
  double per_switch_latency_us = 40.0;
  /// Maximum queueing delay contributed by one fully-loaded link, µs.
  double max_queue_us = 500.0;
  /// Queueing delay grows as utilization^queue_exponent.
  double queue_exponent = 3.0;
  /// Multiplicative lognormal noise (sigma) applied by probes.
  double bandwidth_probe_sigma = 0.03;
  double latency_probe_sigma = 0.10;
};

class NetworkModel {
 public:
  /// The model references (does not own) the cluster and flow set; both must
  /// outlive it.
  NetworkModel(const cluster::Cluster& cluster, const FlowSet& flows,
               NetworkModelOptions options = {});

  /// Extra offered load on a node's uplink not captured by pairwise flows
  /// (local chatter: video streams, package downloads, NFS, ...). Set by
  /// the workload generator.
  void set_uplink_background_mbps(cluster::NodeId node, double mbps);
  double uplink_background_mbps(cluster::NodeId node) const;

  /// Offered load on a link from flows + chatter, Mbit/s.
  double link_offered_mbps(cluster::LinkId link) const;

  /// Utilization in [0, 1+): offered / capacity (may exceed 1 when
  /// oversubscribed).
  double link_utilization(cluster::LinkId link) const;

  /// Path capacity with an idle network (min capacity over links), Mbit/s.
  double peak_bandwidth_mbps(cluster::NodeId u, cluster::NodeId v) const;

  /// Ground-truth available bandwidth for a new stream u→v, Mbit/s.
  double available_bandwidth_mbps(cluster::NodeId u, cluster::NodeId v) const;

  /// Ground-truth one-way latency u→v, microseconds.
  double latency_us(cluster::NodeId u, cluster::NodeId v) const;

  /// What an iperf-like probe would report (adds probe noise).
  double measure_bandwidth_mbps(cluster::NodeId u, cluster::NodeId v,
                                sim::Rng& rng) const;

  /// What a ping-pong probe would report (adds probe noise).
  double measure_latency_us(cluster::NodeId u, cluster::NodeId v,
                            sim::Rng& rng) const;

  /// Ground-truth node data flow rate (rx+tx through the uplink), Mbit/s —
  /// what psutil's network counters would derive.
  double node_flow_mbps(cluster::NodeId node) const;

  const NetworkModelOptions& options() const { return options_; }
  const cluster::Cluster& cluster() const { return cluster_; }

 private:
  void refresh_cache() const;

  const cluster::Cluster& cluster_;
  const FlowSet& flows_;
  NetworkModelOptions options_;
  std::vector<double> uplink_background_;

  // Per-link offered load cache, keyed by (flow revision, background
  // revision).
  mutable std::vector<double> link_offered_cache_;
  mutable std::uint64_t cached_flow_revision_ = ~0ULL;
  mutable std::uint64_t background_revision_ = 0;
  mutable std::uint64_t cached_background_revision_ = ~0ULL;
};

}  // namespace nlarm::net
