// Tiled (blocked) view of a symmetric pair matrix.
//
// The flat V×V FlatMatrix stops scaling past a few thousand nodes: the
// dense pair state alone is O(V²) doubles, and every consumer walk touches
// all of it. The tiled representation splits the working set into G
// topology blocks (one per switch/rack, or fixed-size shards) and keys all
// pair state on the G(G+1)/2 unordered block *tiles*. Aggregates live per
// tile — O(G²) total — and the dense values of a tile are only ever
// materialized on demand, for the blocks an allocation actually chose.
//
// BlockPartition is the positional partition (position → block, block →
// member positions); TiledMatrix is the lazy dense-tile cache on top of it.
// Both are plain data: thread safety is the owner's business (the published
// TiledPairState in core/prepared.h wraps the cache in a mutex).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace nlarm::util {

/// Partition of positions 0..n-1 into contiguous-by-label blocks. Blocks
/// are ordered by ascending label (switch id), members of a block by
/// ascending position.
class BlockPartition {
 public:
  BlockPartition() = default;

  /// One block per distinct label; labels[i] is position i's label.
  static BlockPartition from_labels(std::span<const std::int32_t> labels);

  /// Fixed-size sharding: positions [0, block_size) form block 0, and so
  /// on. Labels are the block indices. block_size 0 = one single block.
  static BlockPartition fixed(std::size_t n, std::size_t block_size);

  std::size_t position_count() const { return block_of_.size(); }
  std::size_t block_count() const { return members_offset_.empty()
                                        ? 0
                                        : members_offset_.size() - 1; }

  std::size_t block_of(std::size_t pos) const { return block_of_[pos]; }
  /// Index of `pos` within its block's member list.
  std::size_t rank_of(std::size_t pos) const { return rank_of_[pos]; }
  /// The label (switch id) block b was formed from.
  std::int32_t label_of_block(std::size_t b) const { return labels_[b]; }
  std::int32_t label_of(std::size_t pos) const {
    return labels_[block_of_[pos]];
  }

  /// Member positions of block b, ascending.
  std::span<const std::size_t> members(std::size_t b) const {
    return {members_.data() + members_offset_[b],
            members_offset_[b + 1] - members_offset_[b]};
  }

  /// Unordered tiles (a ≤ b) in row-major upper-triangle order including
  /// the diagonal (a == b = intra-block).
  std::size_t tile_count() const {
    const std::size_t g = block_count();
    return g * (g + 1) / 2;
  }
  std::size_t tile_index(std::size_t a, std::size_t b) const {
    // Row a holds tiles (a, a) .. (a, G-1): offset a*G - a(a-1)/2.
    const std::size_t g = block_count();
    return a * g - a * (a - 1) / 2 + (b - a);
  }

  std::size_t memory_bytes() const;

  bool operator==(const BlockPartition&) const = default;

 private:
  std::vector<std::uint32_t> block_of_;   ///< position → block index
  std::vector<std::uint32_t> rank_of_;    ///< position → rank within block
  std::vector<std::int32_t> labels_;      ///< block → label
  std::vector<std::size_t> members_;      ///< concatenated member positions
  std::vector<std::size_t> members_offset_;  ///< block → offset (g+1 fence)
};

/// Lazily-materialized dense tiles of a symmetric pair matrix. Tile (a, b),
/// a ≤ b, holds |a|×|b| doubles (rows = members of a, cols = members of b,
/// both in member order). Only tiles someone asked for are ever backed by
/// memory — the whole point of the representation. Not thread-safe.
class TiledMatrix {
 public:
  TiledMatrix() = default;

  /// Drops all tiles and re-keys the directory on `partition`.
  void reset(const BlockPartition& partition);

  /// Dense values of tile (a, b), a ≤ b, materializing on first access via
  /// `fill(row_pos, col_pos)` over member *positions*.
  template <typename Fill>
  std::span<const double> tile(const BlockPartition& partition, std::size_t a,
                               std::size_t b, Fill&& fill) {
    std::vector<double>& values = tiles_[partition.tile_index(a, b)];
    if (!values.empty()) {
      ++hits_;
      return values;
    }
    const auto rows = partition.members(a);
    const auto cols = partition.members(b);
    values.resize(rows.size() * cols.size());
    std::size_t k = 0;
    for (const std::size_t r : rows) {
      for (const std::size_t c : cols) {
        values[k++] = r == c ? 0.0 : fill(r, c);
      }
    }
    ++materialized_;
    value_bytes_ += values.size() * sizeof(double);
    return values;
  }

  bool has_tile(const BlockPartition& partition, std::size_t a,
                std::size_t b) const {
    return !tiles_[partition.tile_index(a, b)].empty();
  }

  std::size_t tiles_materialized() const { return materialized_; }
  std::size_t cache_hits() const { return hits_; }
  /// Bytes held by materialized tile values (directory overhead excluded).
  std::size_t value_bytes() const { return value_bytes_; }

 private:
  std::vector<std::vector<double>> tiles_;
  std::size_t materialized_ = 0;
  std::size_t hits_ = 0;
  std::size_t value_bytes_ = 0;
};

}  // namespace nlarm::util
