#include "util/mpmc_ring.h"

namespace nlarm::util {

std::size_t ring_capacity_for(std::size_t requested) {
  NLARM_CHECK(requested <= (std::size_t{1} << 31))
      << "ring capacity " << requested << " is unreasonably large";
  std::size_t capacity = 2;
  while (capacity < requested) capacity <<= 1;
  return capacity;
}

}  // namespace nlarm::util
