#include "util/csv.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace nlarm::util {

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  NLARM_CHECK(!header_written_ && rows_ == 0)
      << "header must be the first row, written once";
  NLARM_CHECK(!columns.empty()) << "header needs at least one column";
  header_written_ = true;
  columns_ = columns.size();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (header_written_) {
    NLARM_CHECK(fields.size() == columns_)
        << "row has " << fields.size() << " fields, header has " << columns_;
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<double>& fields) {
  std::vector<std::string> formatted;
  formatted.reserve(fields.size());
  for (double v : fields) formatted.push_back(csv_format(v));
  write_row(formatted);
}

CsvFileWriter::CsvFileWriter(const std::string& path)
    : path_(path), file_(path), writer_(file_) {
  NLARM_CHECK(file_.is_open()) << "cannot open CSV file for writing: " << path;
}

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  NLARM_CHECK(false) << "CSV column '" << name << "' not found";
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

CsvDocument read_csv(std::istream& in) {
  CsvDocument doc;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (first) {
      doc.header = std::move(fields);
      first = false;
    } else {
      doc.rows.push_back(std::move(fields));
    }
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path);
  NLARM_CHECK(in.is_open()) << "cannot open CSV file for reading: " << path;
  return read_csv(in);
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

std::string csv_format(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  // Shortest representation that still round-trips: try increasing
  // precision until strtod gives the value back.
  char buf[64];
  for (int precision = 10; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

}  // namespace nlarm::util
