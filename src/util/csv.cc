#include "util/csv.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace nlarm::util {

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  NLARM_CHECK(!header_written_ && rows_ == 0)
      << "header must be the first row, written once";
  NLARM_CHECK(!columns.empty()) << "header needs at least one column";
  header_written_ = true;
  columns_ = columns.size();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (header_written_) {
    NLARM_CHECK(fields.size() == columns_)
        << "row has " << fields.size() << " fields, header has " << columns_;
  }
  // Assemble the whole row, then hand the stream one write: per-field
  // operator<< calls were the dominant cost of large trace dumps.
  std::string row;
  std::size_t reserve = fields.size();
  for (const std::string& field : fields) reserve += field.size();
  row.reserve(reserve + 1);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) row.push_back(',');
    row += csv_escape(fields[i]);
  }
  row.push_back('\n');
  out_ << row;
  ++rows_;
}

void CsvWriter::write_row(const std::vector<double>& fields) {
  if (header_written_) {
    NLARM_CHECK(fields.size() == columns_)
        << "row has " << fields.size() << " fields, header has " << columns_;
  }
  std::string row;
  row.reserve(fields.size() * 12 + 1);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) row.push_back(',');
    append_csv_double(row, fields[i]);
  }
  row.push_back('\n');
  out_ << row;
  ++rows_;
}

CsvFileWriter::CsvFileWriter(const std::string& path)
    : path_(path), file_(path), writer_(file_) {
  NLARM_CHECK(file_.is_open()) << "cannot open CSV file for writing: " << path;
}

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  NLARM_CHECK(false) << "CSV column '" << name << "' not found";
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

CsvDocument read_csv(std::istream& in) {
  CsvDocument doc;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (first) {
      doc.header = std::move(fields);
      first = false;
    } else {
      doc.rows.push_back(std::move(fields));
    }
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path);
  NLARM_CHECK(in.is_open()) << "cannot open CSV file for reading: " << path;
  return read_csv(in);
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

std::string csv_format(double value) {
  std::string out;
  append_csv_double(out, value);
  return out;
}

void append_csv_double(std::string& out, double value) {
  // std::to_chars emits the shortest string that parses back to exactly
  // `value` (the max_digits10 guarantee without ever padding to 17 digits),
  // locale-independent and allocation-free.
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  NLARM_CHECK(ec == std::errc()) << "to_chars failed for double";
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

}  // namespace nlarm::util
