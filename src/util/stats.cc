#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nlarm::util {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stdev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - m) * (v - m);
  return std::sqrt(sq / static_cast<double>(values.size() - 1));
}

double coefficient_of_variation(std::span<const double> values) {
  const double m = mean(values);
  if (m == 0.0) return 0.0;
  return stdev(values) / m;
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  NLARM_CHECK(p >= 0.0 && p <= 100.0) << "percentile " << p << " out of range";
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  s.mean = mean(values);
  s.median = median(values);
  s.stdev = stdev(values);
  s.cov = coefficient_of_variation(values);
  s.min = min_value(values);
  s.max = max_value(values);
  return s;
}

void StreamingStats::add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stdev() const { return std::sqrt(variance()); }

WindowedMean::WindowedMean(double window_seconds) : window_(window_seconds) {
  NLARM_CHECK(window_seconds > 0.0)
      << "window must be positive, got " << window_seconds;
}

void WindowedMean::add(double time_seconds, double value) {
  if (!samples_.empty()) {
    NLARM_CHECK(time_seconds >= samples_.back().time)
        << "timestamps must be non-decreasing: " << time_seconds << " after "
        << samples_.back().time;
  }
  samples_.push_back({time_seconds, value});
  evict(time_seconds);
}

void WindowedMean::evict(double now) {
  // Keep one sample at or before the window start so the piecewise-constant
  // signal is defined over the whole window.
  const double start = now - window_;
  while (samples_.size() >= 2 && samples_[1].time <= start) {
    samples_.pop_front();
  }
}

double WindowedMean::value() const {
  if (samples_.empty()) return 0.0;
  if (samples_.size() == 1) return samples_.front().value;
  const double now = samples_.back().time;
  const double start = now - window_;
  double integral = 0.0;
  double covered = 0.0;
  for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
    const double seg_start = std::max(samples_[i].time, start);
    const double seg_end = samples_[i + 1].time;
    if (seg_end <= seg_start) continue;
    integral += samples_[i].value * (seg_end - seg_start);
    covered += seg_end - seg_start;
  }
  if (covered <= 0.0) return samples_.back().value;
  return integral / covered;
}

LoadAverages::LoadAverages() : one_(60.0), five_(300.0), fifteen_(900.0) {}

void LoadAverages::add(double time_seconds, double value) {
  one_.add(time_seconds, value);
  five_.add(time_seconds, value);
  fifteen_.add(time_seconds, value);
}

}  // namespace nlarm::util
