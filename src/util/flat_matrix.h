// FlatMatrix: a dense square matrix of doubles in one contiguous row-major
// allocation.
//
// The allocator's hot loops walk whole rows of the NL/latency/bandwidth
// matrices (addition costs for a start node, pair sums for a candidate).
// With vector<vector<double>> every row is its own heap block, so those
// walks chase a pointer per row and the V² doubles are scattered across the
// heap. FlatMatrix keeps the classic m[i][j] syntax (operator[] yields a
// pointer to the row) while making a row walk a linear scan and the whole
// matrix one allocation.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <limits>
#include <span>
#include <vector>

#include "util/check.h"

namespace nlarm::util {

// All pair-matrix index arithmetic is 64-bit: V ≥ 65536 makes V*V overflow
// 32-bit (and even int64 sign bits at absurd V), so the element count is
// validated at construction instead of trusted.
static_assert(sizeof(std::size_t) >= 8,
              "FlatMatrix requires 64-bit size_t for V*V index arithmetic");

class FlatMatrix {
 public:
  FlatMatrix() = default;

  /// n×n matrix with every entry set to `fill` (including the diagonal).
  FlatMatrix(std::size_t n, double fill) : n_(checked_dim(n)), data_(n * n, fill) {}

  /// Converts from the nested-vector form. Implicit on purpose: tests and
  /// tools build small literal matrices as vector<vector<double>>.
  /// Rows must all have length equal to the row count.
  FlatMatrix(const std::vector<std::vector<double>>& rows);

  FlatMatrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  double* operator[](std::size_t i) { return data_.data() + i * n_; }
  const double* operator[](std::size_t i) const {
    return data_.data() + i * n_;
  }

  /// Bounds-checked element access (throws CheckError).
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * n_, n_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::size_t value_count() const { return data_.size(); }

  /// Resizes to n×n and sets every entry to `fill`. Reuses the existing
  /// allocation when capacity allows (scratch-buffer friendly).
  void assign(std::size_t n, double fill) {
    n_ = checked_dim(n);
    data_.assign(n * n, fill);
  }

  void fill(double value);
  void zero_diagonal();

  bool operator==(const FlatMatrix&) const = default;

 private:
  /// Rejects dimensions whose n*n element count would overflow size_t.
  static std::size_t checked_dim(std::size_t n) {
    NLARM_CHECK(n == 0 || n <= std::numeric_limits<std::size_t>::max() / n)
        << "FlatMatrix: n*n overflows size_t";
    return n;
  }

  std::size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace nlarm::util
