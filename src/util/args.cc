#include "util/args.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace nlarm::util {

ArgParser::ArgParser(std::string program_description,
                     std::map<std::string, std::string> spec)
    : description_(std::move(program_description)), spec_(std::move(spec)) {}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string key;
    std::string value;
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      key = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      key = body;
      // --key value form: consume the next token if it is not a flag.
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";  // boolean flag
      }
    }
    NLARM_CHECK(spec_.count(key) > 0) << "unknown flag --" << key;
    values_[key] = value;
  }
  return true;
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& default_value) const {
  NLARM_CHECK(spec_.count(name) > 0) << "flag --" << name << " not in spec";
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

double ArgParser::get_double(const std::string& name,
                             double default_value) const {
  const auto it = values_.find(name);
  NLARM_CHECK(spec_.count(name) > 0) << "flag --" << name << " not in spec";
  return it == values_.end() ? default_value : parse_double(it->second);
}

long ArgParser::get_long(const std::string& name, long default_value) const {
  const auto it = values_.find(name);
  NLARM_CHECK(spec_.count(name) > 0) << "flag --" << name << " not in spec";
  return it == values_.end() ? default_value : parse_long(it->second);
}

bool ArgParser::get_bool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  NLARM_CHECK(spec_.count(name) > 0) << "flag --" << name << " not in spec";
  if (it == values_.end()) return default_value;
  const std::string lower = to_lower(it->second);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  NLARM_CHECK(false) << "flag --" << name << " is not a boolean: '"
                     << it->second << "'";
}

std::string ArgParser::help() const {
  std::ostringstream out;
  out << description_ << "\n\nFlags:\n";
  for (const auto& [name, doc] : spec_) {
    out << "  --" << name << "\n      " << doc << "\n";
  }
  out << "  --help\n      Show this message.\n";
  return out.str();
}

}  // namespace nlarm::util
