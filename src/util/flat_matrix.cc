#include "util/flat_matrix.h"

#include <algorithm>

#include "util/check.h"

namespace nlarm::util {

FlatMatrix::FlatMatrix(const std::vector<std::vector<double>>& rows)
    : n_(rows.size()) {
  data_.reserve(n_ * n_);
  for (const std::vector<double>& row : rows) {
    NLARM_CHECK(row.size() == n_)
        << "matrix row has " << row.size() << " entries, expected " << n_;
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

FlatMatrix::FlatMatrix(
    std::initializer_list<std::initializer_list<double>> rows)
    : n_(rows.size()) {
  data_.reserve(n_ * n_);
  for (const auto& row : rows) {
    NLARM_CHECK(row.size() == n_)
        << "matrix row has " << row.size() << " entries, expected " << n_;
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

double& FlatMatrix::at(std::size_t i, std::size_t j) {
  NLARM_CHECK(i < n_ && j < n_)
      << "matrix index (" << i << ", " << j << ") out of " << n_ << "x" << n_;
  return data_[i * n_ + j];
}

double FlatMatrix::at(std::size_t i, std::size_t j) const {
  NLARM_CHECK(i < n_ && j < n_)
      << "matrix index (" << i << ", " << j << ") out of " << n_ << "x" << n_;
  return data_[i * n_ + j];
}

void FlatMatrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void FlatMatrix::zero_diagonal() {
  for (std::size_t i = 0; i < n_; ++i) data_[i * n_ + i] = 0.0;
}

}  // namespace nlarm::util
