// CSV writing/reading used by the trace recorder (workload module) and the
// figure/table harnesses. Deliberately small: numeric-first, quotes fields
// containing separators, no embedded-newline support (traces never need it).
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

namespace nlarm::util {

/// Streams rows of a CSV document to any std::ostream.
class CsvWriter {
 public:
  /// Writes to an external stream; the caller keeps ownership.
  explicit CsvWriter(std::ostream& out);

  /// Writes the header row. Must be the first row written, at most once.
  void write_header(const std::vector<std::string>& columns);

  /// Writes one row of string fields. Column count must match the header
  /// if one was written.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough precision to round-trip.
  void write_row(const std::vector<double>& fields);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream& out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Owns an output file and a CsvWriter over it.
class CsvFileWriter {
 public:
  explicit CsvFileWriter(const std::string& path);

  CsvWriter& writer() { return writer_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream file_;
  CsvWriter writer_;
};

/// Fully-parsed CSV document.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws CheckError if absent.
  std::size_t column(const std::string& name) const;
};

/// Parses a CSV document (first row is the header).
CsvDocument read_csv(std::istream& in);
CsvDocument read_csv_file(const std::string& path);

/// Escapes a single CSV field (quotes if it contains comma/quote).
std::string csv_escape(const std::string& field);

/// Formats a double compactly but losslessly for CSV output
/// (std::to_chars shortest form: max_digits10 round-trip guarantee).
std::string csv_format(double value);

/// Appends csv_format(value) to `out` without a temporary allocation —
/// the building block for row-at-a-time writers on hot save paths.
void append_csv_double(std::string& out, double value);

}  // namespace nlarm::util
