// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nlarm::util {

/// Splits on a delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& text, char delimiter);

/// Allocation-free split: the views borrow from `text`, which must outlive
/// them. The hot text-snapshot loader parses fields straight out of the
/// line buffer through this.
std::vector<std::string_view> split_views(std::string_view text,
                                          char delimiter);

/// Trims ASCII whitespace from both ends without copying.
std::string_view trim_view(std::string_view text);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& text);

/// Lowercases ASCII.
std::string to_lower(const std::string& text);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `text` starts with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

/// Parses a double with std::from_chars (locale-independent; accepts
/// "inf"/"nan" spellings); throws CheckError on malformed input.
double parse_double(std::string_view text);

/// Parses an integer; throws CheckError on malformed input.
long parse_long(std::string_view text);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& separator);

}  // namespace nlarm::util
