// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace nlarm::util {

/// Splits on a delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& text, char delimiter);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& text);

/// Lowercases ASCII.
std::string to_lower(const std::string& text);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `text` starts with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

/// Parses a double; throws CheckError on malformed input.
double parse_double(const std::string& text);

/// Parses an integer; throws CheckError on malformed input.
long parse_long(const std::string& text);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& separator);

}  // namespace nlarm::util
