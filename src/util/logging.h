// Minimal leveled logger.
//
// Thread-safe: util::ThreadPool fans allocator work out across threads, so
// emit_log assembles each line into one buffer and writes it to stderr under
// a mutex — concurrent log statements never interleave mid-line. The level
// is a process-wide atomic so tests and benches can silence the library.
#pragma once

#include <sstream>
#include <string>

namespace nlarm::util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Returns the current process-wide log threshold.
LogLevel log_level();

/// Sets the process-wide log threshold. Messages below it are dropped.
void set_log_level(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Throws CheckError on unknown names.
LogLevel parse_log_level(const std::string& name);

namespace detail {

void emit_log(LogLevel level, const char* file, int line,
              const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { emit_log(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace nlarm::util

#define NLARM_LOG(level)                                               \
  if (::nlarm::util::LogLevel::level < ::nlarm::util::log_level()) {   \
  } else                                                               \
    ::nlarm::util::detail::LogMessage(::nlarm::util::LogLevel::level,  \
                                      __FILE__, __LINE__)

#define NLARM_DEBUG NLARM_LOG(kDebug)
#define NLARM_INFO NLARM_LOG(kInfo)
#define NLARM_WARN NLARM_LOG(kWarn)
#define NLARM_ERROR NLARM_LOG(kError)
