// Tiny command-line flag parser for the examples and bench harnesses.
//
// Accepts --key=value and --key value forms plus boolean --flag. Unknown
// flags are an error so typos in experiment sweeps fail fast.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nlarm::util {

class ArgParser {
 public:
  /// `spec` lists the accepted flag names (without leading dashes) and their
  /// help strings; used for validation and --help output.
  ArgParser(std::string program_description,
            std::map<std::string, std::string> spec);

  /// Parses argv. Throws CheckError on unknown or malformed flags.
  /// Returns false if --help was requested (help text printed to stdout).
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& default_value) const;
  double get_double(const std::string& name, double default_value) const;
  long get_long(const std::string& name, long default_value) const;
  bool get_bool(const std::string& name, bool default_value = false) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string help() const;

 private:
  std::string description_;
  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace nlarm::util
