// Bounded lock-free multi-producer/multi-consumer ring (Vyukov's algorithm).
//
// The serve plane's admission front end (core/serve_shard.h) pushes one slot
// per request from any number of producer threads; each shard worker pops in
// batches. Every operation is one CAS on a slot-local sequence counter plus
// relaxed loads — no global lock, no allocation after construction, and
// failed operations (full/empty) touch only two cache lines.
//
// Per-slot sequence protocol (capacity C, power of two):
//   seq == pos        → slot free, a producer may claim it
//   seq == pos + 1    → slot filled, a consumer may claim it
//   anything else     → another thread is mid-claim on this lap; retry or
//                       report full/empty (seq lags = full for producers,
//                       seq lags = empty for consumers)
// Claiming CASes the ticket counter, writes/reads the payload, then
// publishes by storing seq = pos + 1 (producer) or pos + C (consumer).
// The release store on seq pairs with the acquire load in the other role,
// ordering the payload access.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.h"

namespace nlarm::util {

/// Smallest power of two >= `requested` (and >= 2). Rings round their
/// capacity up so the index mask is a single AND.
std::size_t ring_capacity_for(std::size_t requested);

template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t capacity)
      : capacity_(ring_capacity_for(capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// Attempts to enqueue. False = ring full (the caller applies its own
  /// backpressure; nothing blocks inside).
  bool try_push(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const std::ptrdiff_t diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry against the new ticket.
      } else if (diff < 0) {
        return false;  // the slot still holds last lap's value: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Attempts to dequeue into `out`. False = ring empty.
  bool try_pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                                  static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(slot.value);
          slot.seq.store(pos + capacity_, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // nothing published at this position yet: empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  std::size_t capacity() const { return capacity_; }

  /// Approximate occupancy (racy by nature; monitoring only).
  std::size_t size_estimate() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  // Head and tail tickets on separate cache lines so producers and
  // consumers do not false-share.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<Slot> slots_;
};

}  // namespace nlarm::util
