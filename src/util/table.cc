#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace nlarm::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  NLARM_CHECK(!header_.empty()) << "table needs at least one column";
}

void TextTable::add_row(std::vector<std::string> row) {
  NLARM_CHECK(row.size() == header_.size())
      << "row has " << row.size() << " fields, table has " << header_.size()
      << " columns";
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  NLARM_CHECK(values.size() + 1 == header_.size())
      << "label+values size mismatch";
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(format("%.*f", precision, v));
  }
  add_row(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::print(std::ostream& out) const { out << render(); }

char shade_char(double unit_value) {
  static const char ramp[] = " .:-=+*#%@";
  const int levels = static_cast<int>(sizeof(ramp) - 2);
  double v = unit_value;
  if (std::isnan(v)) v = 0.0;
  v = std::clamp(v, 0.0, 1.0);
  return ramp[static_cast<int>(std::lround(v * levels))];
}

std::string render_heatmap(const std::vector<std::vector<double>>& matrix,
                           const HeatmapOptions& options) {
  if (matrix.empty()) return "(empty heatmap)\n";
  const std::size_t n = matrix.size();
  for (const auto& row : matrix) {
    NLARM_CHECK(row.size() == n) << "heatmap matrix must be square";
  }
  if (!options.labels.empty()) {
    NLARM_CHECK(options.labels.size() == n)
        << "heatmap labels must match matrix size";
  }

  double lo = options.scale_min;
  double hi = options.scale_max;
  if (lo >= hi) {
    lo = matrix[0][0];
    hi = matrix[0][0];
    for (const auto& row : matrix) {
      for (double v : row) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  const double span = (hi > lo) ? (hi - lo) : 1.0;

  std::size_t label_width = 0;
  for (const auto& label : options.labels) {
    label_width = std::max(label_width, label.size());
  }

  std::ostringstream out;
  for (std::size_t r = 0; r < n; ++r) {
    if (!options.labels.empty()) {
      out << options.labels[r];
      for (std::size_t pad = options.labels[r].size(); pad < label_width + 1;
           ++pad) {
        out << ' ';
      }
    }
    for (std::size_t c = 0; c < n; ++c) {
      double unit = (matrix[r][c] - lo) / span;
      if (options.invert) unit = 1.0 - unit;
      const char ch = shade_char(unit);
      out << ch << ch;  // double width so cells look square-ish
    }
    out << '\n';
  }
  out << format("scale: [%.3g .. %.3g]%s, ramp ' .:-=+*#%%@'%s\n", lo, hi,
                options.invert ? " (inverted)" : "",
                options.invert ? " dark=high" : " dark=low");
  return out.str();
}

}  // namespace nlarm::util
