#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/catalog.h"
#include "obs/trace.h"

namespace nlarm::util {

struct ThreadPool::Job {
  Job(std::size_t count, const std::function<void(std::size_t)>& fn)
      : count(count), fn(fn) {}

  const std::size_t count;
  const std::function<void(std::size_t)>& fn;
  std::atomic<std::size_t> next{0};       ///< next index to claim
  std::atomic<std::size_t> completed{0};  ///< indices finished
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::mutex error_mutex;
  std::exception_ptr error;

  bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= count;
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  obs::metrics::threadpool_threads().set(static_cast<double>(threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    // Workers only; the submitting thread participates as one more. On a
    // single-core machine (or when hw is unknown) extra threads just contend
    // with the caller, so run inline instead.
    return hw >= 2 ? static_cast<std::size_t>(std::min(hw - 1u, 15u))
                   : std::size_t{0};
  }());
  return pool;
}

void ThreadPool::run_job(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    try {
      job.fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.count) {
      std::lock_guard<std::mutex> lock(job.done_mutex);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        if (stop_) return true;
        for (const std::shared_ptr<Job>& candidate : jobs_) {
          if (!candidate->exhausted()) return true;
        }
        return false;
      });
      if (stop_) return;
      for (const std::shared_ptr<Job>& candidate : jobs_) {
        if (!candidate->exhausted()) {
          job = candidate;
          break;
        }
      }
    }
    if (job != nullptr) run_job(*job);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  obs::ScopedSpan batch_span("threadpool.batch",
                             &obs::metrics::threadpool_batch_seconds());
  obs::metrics::threadpool_batches().inc();
  obs::metrics::threadpool_tasks().inc(count);
  auto job = std::make_shared<Job>(count, fn);
  {
    // Each call enqueues its own job: concurrent callers coexist on the
    // jobs_ list instead of serializing on a submit lock. The histogram
    // keeps its name but now records (brief) enqueue contention.
    obs::ScopedSpan wait_span("threadpool.submit_wait",
                              &obs::metrics::threadpool_submit_wait_seconds());
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();
  run_job(*job);  // the caller claims indices too
  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) == job->count;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), job));
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace nlarm::util
