#include "util/check.h"

#include <sstream>

namespace nlarm::util::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream out;
  out << "NLARM_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw CheckError(out.str());
}

}  // namespace nlarm::util::detail
