// A small reusable worker pool for deterministic fork-join loops.
//
// The allocator fans candidate generation out across start nodes: each index
// writes only its own output slot, so any scheduling of indices over threads
// produces bit-identical results. parallel_for() is the only primitive —
// there is deliberately no futures/queueing surface to keep the concurrency
// easy to audit (this is the repo's first threaded code).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nlarm::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 workers is allowed: parallel_for then runs
  /// inline on the caller.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, count), spreading indices over the
  /// workers; the calling thread participates too. Blocks until every call
  /// has finished. If any call throws, the first exception is rethrown on
  /// the caller after the loop drains (remaining indices still run, so
  /// output slots stay fully written).
  ///
  /// Concurrent callers are independent: each call owns its own job state,
  /// so a refresh thread's rebuild and an allocator fan-out on the same
  /// pool interleave over the workers instead of queueing behind a submit
  /// lock. Progress is guaranteed even with more callers than workers —
  /// every caller drains its own indices.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized to the hardware, constructed on first use.
  static ThreadPool& shared();

 private:
  struct Job;
  void worker_loop();
  static void run_job(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;                 ///< guards jobs_ / stop_
  std::condition_variable work_cv_;  ///< wakes workers for new jobs
  /// Active jobs, one per in-flight parallel_for call (submission order).
  /// Workers pick the first job with unclaimed indices; the submitting
  /// caller removes its job once every index completed.
  std::vector<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
};

}  // namespace nlarm::util
