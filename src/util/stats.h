// Statistics helpers used throughout nlarm: descriptive statistics over
// samples (mean, median, coefficient of variation — the paper reports CoV of
// execution times in §5.1/§5.2), streaming accumulation (Welford), and
// time-weighted sliding windows (the 1/5/15-minute running means of
// NodeStateD, §4).
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace nlarm::util {

/// Arithmetic mean. Empty input → 0.
double mean(std::span<const double> values);

/// Sample standard deviation (n−1 denominator). Fewer than 2 samples → 0.
double stdev(std::span<const double> values);

/// Coefficient of variation: stdev / mean. Mean of 0 → 0.
double coefficient_of_variation(std::span<const double> values);

/// Median (average of the two central elements for even sizes).
/// Empty input → 0.
double median(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100]. Empty input → 0.
double percentile(std::span<const double> values, double p);

double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Full summary of a sample set, computed in one pass over a sorted copy.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double stdev = 0.0;
  double cov = 0.0;  ///< coefficient of variation
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);

/// Numerically-stable streaming mean/variance (Welford's algorithm).
class StreamingStats {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n−1). Fewer than 2 samples → 0.
  double variance() const;
  double stdev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Time-weighted sliding-window mean over an irregularly-sampled signal.
///
/// Models the running means NodeStateD keeps for the last 1, 5 and 15
/// minutes: each sample (t, v) holds until the next sample arrives; the
/// window mean integrates the piecewise-constant signal over the last
/// `window_seconds` and divides by the covered span.
class WindowedMean {
 public:
  explicit WindowedMean(double window_seconds);

  /// Adds a sample. Timestamps must be non-decreasing.
  void add(double time_seconds, double value);

  /// Mean of the signal over [now − window, now] where `now` is the last
  /// sample's timestamp. No samples → 0. A single sample → its value.
  double value() const;

  /// Window width in seconds.
  double window() const { return window_; }

  std::size_t sample_count() const { return samples_.size(); }

 private:
  struct Sample {
    double time;
    double value;
  };
  void evict(double now);

  double window_;
  std::deque<Sample> samples_;
};

/// The triple of 1/5/15-minute running means the paper's monitor maintains.
class LoadAverages {
 public:
  LoadAverages();

  void add(double time_seconds, double value);

  double one_minute() const { return one_.value(); }
  double five_minutes() const { return five_.value(); }
  double fifteen_minutes() const { return fifteen_.value(); }

 private:
  WindowedMean one_;
  WindowedMean five_;
  WindowedMean fifteen_;
};

}  // namespace nlarm::util
