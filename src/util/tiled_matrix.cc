#include "util/tiled_matrix.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace nlarm::util {

BlockPartition BlockPartition::from_labels(
    std::span<const std::int32_t> labels) {
  BlockPartition p;
  const std::size_t n = labels.size();
  p.block_of_.resize(n);
  p.rank_of_.resize(n);
  // std::map gives ascending-label block order for free.
  std::map<std::int32_t, std::vector<std::size_t>> by_label;
  for (std::size_t i = 0; i < n; ++i) {
    by_label[labels[i]].push_back(i);
  }
  p.labels_.reserve(by_label.size());
  p.members_.reserve(n);
  p.members_offset_.reserve(by_label.size() + 1);
  p.members_offset_.push_back(0);
  std::size_t block = 0;
  for (const auto& [label, members] : by_label) {
    p.labels_.push_back(label);
    for (std::size_t rank = 0; rank < members.size(); ++rank) {
      const std::size_t pos = members[rank];
      p.block_of_[pos] = static_cast<std::uint32_t>(block);
      p.rank_of_[pos] = static_cast<std::uint32_t>(rank);
      p.members_.push_back(pos);
    }
    p.members_offset_.push_back(p.members_.size());
    ++block;
  }
  return p;
}

BlockPartition BlockPartition::fixed(std::size_t n, std::size_t block_size) {
  BlockPartition p;
  if (n == 0) {
    return p;
  }
  if (block_size == 0) {
    block_size = n;
  }
  const std::size_t blocks = (n + block_size - 1) / block_size;
  NLARM_CHECK(blocks <= static_cast<std::size_t>(UINT32_MAX))
      << "BlockPartition: too many blocks";
  p.block_of_.resize(n);
  p.rank_of_.resize(n);
  p.labels_.resize(blocks);
  p.members_.resize(n);
  p.members_offset_.reserve(blocks + 1);
  p.members_offset_.push_back(0);
  for (std::size_t b = 0; b < blocks; ++b) {
    p.labels_[b] = static_cast<std::int32_t>(b);
    const std::size_t lo = b * block_size;
    const std::size_t hi = std::min(n, lo + block_size);
    for (std::size_t pos = lo; pos < hi; ++pos) {
      p.block_of_[pos] = static_cast<std::uint32_t>(b);
      p.rank_of_[pos] = static_cast<std::uint32_t>(pos - lo);
      p.members_[pos] = pos;
    }
    p.members_offset_.push_back(hi);
  }
  return p;
}

std::size_t BlockPartition::memory_bytes() const {
  return block_of_.capacity() * sizeof(std::uint32_t) +
         rank_of_.capacity() * sizeof(std::uint32_t) +
         labels_.capacity() * sizeof(std::int32_t) +
         members_.capacity() * sizeof(std::size_t) +
         members_offset_.capacity() * sizeof(std::size_t);
}

void TiledMatrix::reset(const BlockPartition& partition) {
  tiles_.assign(partition.tile_count(), {});
  materialized_ = 0;
  hits_ = 0;
  value_bytes_ = 0;
}

}  // namespace nlarm::util
