// Checked assertions for nlarm.
//
// NLARM_CHECK is always on (also in release builds): configuration and
// invariant violations in a resource manager must fail loudly, not corrupt
// an allocation. Failures throw nlarm::util::CheckError so tests can assert
// on them and long-running simulations can report context before exiting.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nlarm::util {

/// Thrown when an NLARM_CHECK fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

/// Builds the optional streamed message of a check without forcing the
/// caller to construct a stringstream when the check passes.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] void raise() const {
    check_failed(expr_, file_, line_, stream_.str());
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace nlarm::util

/// Always-on invariant check. Usage:
///   NLARM_CHECK(count > 0) << "need at least one node, got " << count;
#define NLARM_CHECK(expr)                                                  \
  if (expr) {                                                              \
  } else                                                                   \
    ::nlarm::util::CheckHelper{} &                                         \
        ::nlarm::util::detail::CheckMessageBuilder(#expr, __FILE__, __LINE__)

namespace nlarm::util {

/// Terminal operand that fires the failure once the message is built.
struct CheckHelper {
  [[noreturn]] void operator&(detail::CheckMessageBuilder& builder) {
    builder.raise();
  }
  [[noreturn]] void operator&(detail::CheckMessageBuilder&& builder) {
    builder.raise();
  }
};

}  // namespace nlarm::util
