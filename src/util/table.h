// ASCII table and heatmap rendering for the figure/table harnesses.
//
// Figure 2(a) and Figure 7 of the paper are bandwidth heatmaps; the bench
// binaries render them as shaded ASCII grids so the reproduction is fully
// inspectable in a terminal / text log.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nlarm::util {

/// Column-aligned ASCII table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience for numeric rows: first column is a label.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  /// Renders with column padding and a separator under the header.
  std::string render() const;

  void print(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a matrix as an ASCII heatmap. Values are mapped linearly onto a
/// shade ramp; `invert` flips the ramp (useful when *low* values should be
/// dark, as with "complement of available bandwidth").
struct HeatmapOptions {
  bool invert = false;
  /// Optional fixed scale; if min >= max the scale is taken from the data.
  double scale_min = 0.0;
  double scale_max = 0.0;
  /// Labels along both axes (must match matrix dimensions if nonempty).
  std::vector<std::string> labels;
};

std::string render_heatmap(const std::vector<std::vector<double>>& matrix,
                           const HeatmapOptions& options = {});

/// One shaded cell character for a value in [0,1].
char shade_char(double unit_value);

}  // namespace nlarm::util
