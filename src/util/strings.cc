#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace nlarm::util {

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      parts.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(std::move(current));
  return parts;
}

std::vector<std::string_view> split_views(std::string_view text,
                                          char delimiter) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == delimiter) {
      parts.push_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  parts.push_back(text.substr(begin));
  return parts;
}

std::string_view trim_view(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string to_lower(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  NLARM_CHECK(needed >= 0) << "vsnprintf failed for format '" << fmt << "'";
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

double parse_double(std::string_view text) {
  std::string_view trimmed = trim_view(text);
  NLARM_CHECK(!trimmed.empty()) << "cannot parse empty string as double";
  // from_chars rejects an explicit '+' that strtod used to accept.
  if (trimmed.front() == '+') trimmed.remove_prefix(1);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  NLARM_CHECK(ec == std::errc() && ptr == trimmed.data() + trimmed.size())
      << "malformed double: '" << text << "'";
  return value;
}

long parse_long(std::string_view text) {
  std::string_view trimmed = trim_view(text);
  NLARM_CHECK(!trimmed.empty()) << "cannot parse empty string as integer";
  if (trimmed.front() == '+') trimmed.remove_prefix(1);
  long value = 0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  NLARM_CHECK(ec == std::errc() && ptr == trimmed.data() + trimmed.size())
      << "malformed integer: '" << text << "'";
  return value;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

}  // namespace nlarm::util
