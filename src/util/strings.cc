#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace nlarm::util {

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      parts.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(std::move(current));
  return parts;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string to_lower(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  NLARM_CHECK(needed >= 0) << "vsnprintf failed for format '" << fmt << "'";
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

double parse_double(const std::string& text) {
  const std::string trimmed = trim(text);
  NLARM_CHECK(!trimmed.empty()) << "cannot parse empty string as double";
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  NLARM_CHECK(end == trimmed.c_str() + trimmed.size())
      << "malformed double: '" << text << "'";
  return value;
}

long parse_long(const std::string& text) {
  const std::string trimmed = trim(text);
  NLARM_CHECK(!trimmed.empty()) << "cannot parse empty string as integer";
  char* end = nullptr;
  const long value = std::strtol(trimmed.c_str(), &end, 10);
  NLARM_CHECK(end == trimmed.c_str() + trimmed.size())
      << "malformed integer: '" << text << "'";
  return value;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

}  // namespace nlarm::util
