#include "util/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>
#include <string>

#include "util/check.h"
#include "util/strings.h"

namespace nlarm::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

std::mutex& emit_mutex() {
  static std::mutex mutex;
  return mutex;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  NLARM_CHECK(false) << "unknown log level name '" << name << "'";
}

namespace detail {

void emit_log(LogLevel level, const char* file, int line,
              const std::string& message) {
  // Strip the directory part of the path for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  // Assemble the whole line first, then write it in one call under the
  // mutex, so lines from concurrent threads never interleave.
  std::string out =
      format("[%s %s:%d] ", level_tag(level), base, line) + message + "\n";
  std::lock_guard<std::mutex> lock(emit_mutex());
  std::fwrite(out.data(), 1, out.size(), stderr);
}

}  // namespace detail
}  // namespace nlarm::util
