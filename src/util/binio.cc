#include "util/binio.h"

#include <array>
#include <bit>
#include <cstdio>

#include "util/check.h"

#if defined(__unix__) || defined(__APPLE__)
#define NLARM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define NLARM_HAVE_MMAP 0
#endif

namespace nlarm::util {

bool host_is_little_endian() {
  return std::endian::native == std::endian::little;
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void ByteReader::require(std::size_t n) const {
  NLARM_CHECK(n <= size_ - offset_)
      << "binary read past end of data (offset " << offset_ << " + " << n
      << " > size " << size_ << ")";
}

std::uint8_t ByteReader::u8() {
  require(1);
  return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v;
  std::memcpy(&v, data_ + offset_, sizeof(v));
  offset_ += sizeof(v);
  return v;
}

std::uint64_t ByteReader::u64() {
  require(8);
  std::uint64_t v;
  std::memcpy(&v, data_ + offset_, sizeof(v));
  offset_ += sizeof(v);
  return v;
}

std::int32_t ByteReader::i32() {
  require(4);
  std::int32_t v;
  std::memcpy(&v, data_ + offset_, sizeof(v));
  offset_ += sizeof(v);
  return v;
}

double ByteReader::f64() {
  require(8);
  double v;
  std::memcpy(&v, data_ + offset_, sizeof(v));
  offset_ += sizeof(v);
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t byte = u8();
    NLARM_CHECK(shift < 64) << "varint longer than 10 bytes";
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

std::string_view ByteReader::bytes(std::size_t n) {
  require(n);
  std::string_view view{data_ + offset_, n};
  offset_ += n;
  return view;
}

void ByteReader::read_into(void* dst, std::size_t n) {
  require(n);
  std::memcpy(dst, data_ + offset_, n);
  offset_ += n;
}

void ByteReader::skip(std::size_t n) {
  require(n);
  offset_ += n;
}

namespace {

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table and
// table[k][b] is the CRC of byte b followed by k zero bytes, letting the
// hot loop fold 8 input bytes per iteration (~1 GB/s vs ~300 MB/s — this
// routine runs over every multi-MB snapshot artifact on both save and
// load, so it sets the floor of the binary codec's throughput).
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

CrcTables make_crc_tables() {
  CrcTables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (int k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[static_cast<std::size_t>(k)][i] = c;
    }
  }
  return tables;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  static const CrcTables t = make_crc_tables();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  // The 8-byte fold loads words as little-endian; on a big-endian host the
  // tail loop below handles everything (correct, just slower).
  while (host_is_little_endian() && n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    c ^= lo;
    c = t[7][c & 0xFF] ^ t[6][(c >> 8) & 0xFF] ^ t[5][(c >> 16) & 0xFF] ^
        t[4][c >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    c = t[0][(c ^ static_cast<std::uint8_t>(*p)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

MappedFile::~MappedFile() {
#if NLARM_HAVE_MMAP
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile MappedFile::open(const std::string& path) {
  MappedFile mapped;
#if NLARM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return mapped;
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return mapped;
  }
  void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) return mapped;
  mapped.data_ = static_cast<const char*>(addr);
  mapped.size_ = static_cast<std::size_t>(st.st_size);
#else
  (void)path;
#endif
  return mapped;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

namespace {

bool write_stream_durable(const std::string& path, std::string_view bytes,
                          const char* mode) {
  std::FILE* f = std::fopen(path.c_str(), mode);
  if (f == nullptr) return false;
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = ok && std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace

bool write_file_durable(const std::string& path, std::string_view bytes) {
  return write_stream_durable(path, bytes, "wb");
}

bool append_file_durable(const std::string& path, std::string_view bytes) {
  return write_stream_durable(path, bytes, "ab");
}

bool fsync_parent_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

}  // namespace nlarm::util
