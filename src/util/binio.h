// Binary I/O helpers shared by the snapshot codec and the delta append-log:
// bounds-checked little-endian readers/writers, LEB128 varints, CRC32, a
// read-only mmap wrapper, and durable file-write primitives (fsync of both
// the file and its containing directory).
//
// Encoders append to a std::string so a whole artifact can be serialized in
// memory, checksummed, and then written through one durable call — the same
// "assemble fully, then tmp+flush+rename" discipline persistence.cc uses
// for text snapshots. Decoders work off a borrowed (data, size) span, so
// the same code parses a heap buffer or an mmap'd file without copying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace nlarm::util {

// --- little-endian primitives -------------------------------------------

/// The codec is defined as little-endian on disk. All supported targets are
/// little-endian; encode/decode verify this once (CheckError otherwise)
/// rather than paying a byte-swap on the hot path.
bool host_is_little_endian();

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
inline void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void put_i32(std::string& out, std::int32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void put_f64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Unsigned LEB128; at most 10 bytes for a u64.
void put_varint(std::string& out, std::uint64_t v);

/// Bounds-checked forward cursor over a borrowed byte span. Every read
/// throws CheckError on overrun, so a truncated file turns into a one-line
/// diagnostic instead of UB.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::string_view bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return size_ - offset_; }
  const char* cursor() const { return data_ + offset_; }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  double f64();
  std::uint64_t varint();

  /// Returns a view of the next `n` bytes and advances past them.
  std::string_view bytes(std::size_t n);

  /// Bulk copy of `n` bytes into `dst` (the zero-copy matrix ingest: one
  /// memcpy from the mapped page cache straight into FlatMatrix storage).
  void read_into(void* dst, std::size_t n);

  void skip(std::size_t n);

 private:
  void require(std::size_t n) const;

  const char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

// --- CRC32 ---------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the same function
/// gzip/PNG use. `seed` chains incremental updates: crc32(b, crc32(a)) ==
/// crc32(a+b).
std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0);

// --- mmap ----------------------------------------------------------------

/// Read-only memory map of a whole file. Move-only; unmaps on destruction.
/// On platforms without mmap (or when the map fails) valid() is false and
/// callers fall back to a buffered read — behavior, not availability, is
/// the contract.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Returns an invalid MappedFile on any failure
  /// (missing file, empty file, mmap unsupported).
  static MappedFile open(const std::string& path);

  bool valid() const { return data_ != nullptr; }
  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::string_view view() const { return {data_, size_}; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

// --- durable file writes -------------------------------------------------

/// Reads the whole file into `out`. Returns false if it cannot be opened.
bool read_file(const std::string& path, std::string& out);

/// Writes `bytes` to `path` (truncating), then fflush + fsync before close.
/// Returns false on any failure. This is the "data reached the platter"
/// half of a crash-safe save; rename + fsync_parent_dir is the other half.
bool write_file_durable(const std::string& path, std::string_view bytes);

/// Appends `bytes` to `path` (creating it), then fflush + fsync. The
/// append-log's frame writes go through this so a torn frame is only ever
/// the *last* frame.
bool append_file_durable(const std::string& path, std::string_view bytes);

/// fsyncs the directory containing `path`, making a completed rename of
/// `path` itself durable (POSIX: the rename lives in the directory's data).
/// Returns false if the directory cannot be opened/synced; no-op success on
/// platforms without directory fds.
bool fsync_parent_dir(const std::string& path);

}  // namespace nlarm::util
