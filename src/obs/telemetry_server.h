// Live telemetry plane: a minimal self-contained HTTP/1.1 exposition
// server (POSIX sockets, one background thread, no dependencies).
//
// A serving broker is a long-lived process; dump-at-exit observability
// leaves it a black box while it is actually serving. The TelemetryServer
// makes the global obs state scrapeable live:
//
//   /metrics  Prometheus v0.0.4 text of the global MetricsRegistry (with
//             the quantile gauges refreshed from the sketches first)
//   /healthz  200 while the process (and this thread) is alive
//   /readyz   200 while an epoch is published and its age is within the
//             configured bound; 503 otherwise (load-balancer semantics)
//   /spans    the global SpanTracer ring as JSONL, oldest first
//   /epoch    JSON: epoch id, age, usable/quarantined nodes, tiled-state
//             bytes, staleness-budget burn, degradation flags
//
// One request per connection (Connection: close), requests served
// serially on the accept thread — scrape traffic is a handful of pollers,
// not the million-QPS decide path, and serial handling keeps the server
// trivially correct. decide() threads are never blocked: every handler
// reads lock-free metric atomics or takes the short registry/tracer locks
// the exporters already take.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace nlarm::obs {

/// What /readyz and /epoch report. Produced by a user-supplied provider so
/// the server stays decoupled from core/ (the broker wires one up in
/// nlarm_broker; tests hand in canned values).
struct EpochStatus {
  bool published = false;       ///< any epoch published yet
  std::uint64_t epoch = 0;      ///< current epoch counter
  double age_seconds = 0.0;     ///< now - epoch snapshot time
  double max_age_seconds = 0.0; ///< readiness bound; <= 0 = no bound
  std::size_t usable_nodes = 0;
  std::size_t quarantined = 0;     ///< nodes quarantined out of usable
  std::size_t pair_fallbacks = 0;  ///< pairs on the 5-min-mean fallback
  bool degraded = false;           ///< epoch built from a rewritten snapshot
  std::size_t tiled_state_bytes = 0;  ///< TiledPairState footprint (0 = flat)

  /// Fraction of the staleness budget burned (age / max_age; 0 without a
  /// bound). > 1 means the epoch is already over budget.
  double staleness_burn() const {
    return max_age_seconds > 0.0 ? age_seconds / max_age_seconds : 0.0;
  }
  /// The /readyz verdict: a published epoch within its age bound.
  bool ready() const {
    return published &&
           (max_age_seconds <= 0.0 || age_seconds <= max_age_seconds);
  }

  /// The /epoch response body (one-line JSON object).
  std::string to_json() const;
};

struct TelemetryOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (read the bound port back via port())
};

class TelemetryServer {
 public:
  using EpochProvider = std::function<EpochStatus()>;

  /// `provider` feeds /readyz and /epoch; when empty both report an
  /// unpublished epoch (readyz 503). Must be safe to call from the server
  /// thread while other threads run.
  explicit TelemetryServer(TelemetryOptions options = {},
                           EpochProvider provider = {});
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds, listens, and spawns the serving thread. Returns false (with a
  /// warning logged) when the socket could not be bound.
  bool start();

  /// Stops accepting, joins the thread, closes the socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The actual bound port (after start(); useful with options.port == 0).
  int port() const { return port_; }

  /// Serves one request already read into `request` and returns the raw
  /// HTTP response. Exposed for tests (exact routing/format checks without
  /// a socket) and reused verbatim by the socket path.
  std::string handle(const std::string& request) const;

 private:
  void serve_loop();

  TelemetryOptions options_;
  EpochProvider provider_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace nlarm::obs
