#include "obs/sketch.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace nlarm::obs {

QuantileSketch::QuantileSketch(double relative_error, double min_value,
                               double max_value)
    : alpha_(relative_error), min_value_(min_value), max_value_(max_value) {
  NLARM_CHECK(alpha_ > 0.0 && alpha_ < 1.0)
      << "sketch relative error must be in (0, 1)";
  NLARM_CHECK(min_value_ > 0.0 && max_value_ > min_value_)
      << "sketch value range must satisfy 0 < min < max";
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
  min_index_ =
      static_cast<std::int64_t>(std::floor(std::log(min_value_) *
                                           inv_log_gamma_));
  const auto max_index = static_cast<std::int64_t>(
      std::ceil(std::log(max_value_) * inv_log_gamma_));
  buckets_n_ = static_cast<std::size_t>(max_index - min_index_ + 1);
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(buckets_n_ + 1);
  for (std::size_t i = 0; i <= buckets_n_; ++i) buckets_[i] = 0;
}

std::size_t QuantileSketch::index_of(double value) const {
  if (!(value > 0.0)) return 0;  // zero, negative, NaN → zero bucket
  const auto raw = static_cast<std::int64_t>(
      std::ceil(std::log(value) * inv_log_gamma_));
  const std::int64_t clamped = std::clamp(
      raw - min_index_, std::int64_t{0},
      static_cast<std::int64_t>(buckets_n_) - 1);
  return static_cast<std::size_t>(clamped) + 1;
}

double QuantileSketch::value_of(std::size_t index) const {
  if (index == 0) return 0.0;
  // Bucket i covers (gamma^(k-1), gamma^k] with k = min_index_ + i - 1;
  // the harmonic midpoint 2*gamma^k/(gamma+1) is within alpha of every
  // point of that interval.
  const double k =
      static_cast<double>(min_index_ + static_cast<std::int64_t>(index) - 1);
  return 2.0 * std::exp(k * std::log(gamma_)) / (gamma_ + 1.0);
}

void QuantileSketch::observe(double value) {
  buckets_[index_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value > 0.0 ? value : 0.0);
}

std::uint64_t QuantileSketch::count() const {
  return count_.load(std::memory_order_relaxed);
}

double QuantileSketch::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

double QuantileSketch::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Walk on a consistent local total (bucket sums), not count_: in-flight
  // observes may have bumped one but not the other.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= buckets_n_; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= buckets_n_; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return value_of(i);
  }
  return value_of(buckets_n_);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  NLARM_CHECK(other.buckets_n_ == buckets_n_ && other.alpha_ == alpha_ &&
              other.min_value_ == min_value_ && other.max_value_ == max_value_)
      << "merging sketches with different geometry";
  std::uint64_t merged = 0;
  for (std::size_t i = 0; i <= buckets_n_; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
      merged += n;
    }
  }
  count_.fetch_add(merged, std::memory_order_relaxed);
  atomic_add(sum_, other.sum());
}

void QuantileSketch::reset() {
  for (std::size_t i = 0; i <= buckets_n_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

}  // namespace nlarm::obs
