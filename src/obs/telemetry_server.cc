#include "obs/telemetry_server.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/catalog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#define NLARM_TELEMETRY_POSIX 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace nlarm::obs {

std::string EpochStatus::to_json() const {
  std::ostringstream out;
  out << "{\"published\":" << (published ? "true" : "false")
      << ",\"epoch\":" << epoch
      << ",\"age_seconds\":" << format_metric_value(age_seconds)
      << ",\"max_age_seconds\":" << format_metric_value(max_age_seconds)
      << ",\"staleness_burn\":" << format_metric_value(staleness_burn())
      << ",\"ready\":" << (ready() ? "true" : "false")
      << ",\"usable_nodes\":" << usable_nodes
      << ",\"quarantined\":" << quarantined
      << ",\"pair_fallbacks\":" << pair_fallbacks
      << ",\"degraded\":" << (degraded ? "true" : "false")
      << ",\"tiled_state_bytes\":" << tiled_state_bytes << "}";
  return out.str();
}

namespace {

std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << " " << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

constexpr const char* kTextPlain = "text/plain; charset=utf-8";
constexpr const char* kPrometheus = "text/plain; version=0.0.4";
constexpr const char* kJson = "application/json";

}  // namespace

TelemetryServer::TelemetryServer(TelemetryOptions options,
                                 EpochProvider provider)
    : options_(std::move(options)), provider_(std::move(provider)) {}

TelemetryServer::~TelemetryServer() { stop(); }

std::string TelemetryServer::handle(const std::string& request) const {
  // Request line: METHOD SP PATH SP VERSION. Anything malformed is a 400.
  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    metrics::telemetry_scrape_errors().inc();
    return http_response(400, "Bad Request", kTextPlain, "bad request\n");
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  if (method != "GET" && method != "HEAD") {
    metrics::telemetry_scrape_errors().inc();
    return http_response(405, "Method Not Allowed", kTextPlain,
                         "only GET is served\n");
  }

  if (path == "/metrics") {
    metrics::telemetry_scrapes().inc();
    // Quantile gauges are materialized lazily from the sketches so the
    // decide path never pays for them; a scrape is the materialization
    // point.
    metrics::export_quantile_gauges();
    return http_response(200, "OK", kPrometheus,
                         MetricsRegistry::global().prometheus_text());
  }
  if (path == "/healthz") {
    return http_response(200, "OK", kTextPlain, "ok\n");
  }
  if (path == "/readyz") {
    const EpochStatus status = provider_ ? provider_() : EpochStatus{};
    std::ostringstream body;
    if (status.ready()) {
      body << "ready epoch=" << status.epoch << " age="
           << format_metric_value(status.age_seconds) << "s\n";
      return http_response(200, "OK", kTextPlain, body.str());
    }
    if (!status.published) {
      body << "unready: no epoch published yet\n";
    } else {
      body << "unready: epoch " << status.epoch << " is "
           << format_metric_value(status.age_seconds)
           << "s old (bound "
           << format_metric_value(status.max_age_seconds) << "s)\n";
    }
    return http_response(503, "Service Unavailable", kTextPlain, body.str());
  }
  if (path == "/spans") {
    metrics::telemetry_scrapes().inc();
    return http_response(200, "OK", kTextPlain, SpanTracer::global().jsonl());
  }
  if (path == "/epoch") {
    metrics::telemetry_scrapes().inc();
    const EpochStatus status = provider_ ? provider_() : EpochStatus{};
    return http_response(200, "OK", kJson, status.to_json() + "\n");
  }
  metrics::telemetry_scrape_errors().inc();
  return http_response(404, "Not Found", kTextPlain,
                       "unknown path; try /metrics /healthz /readyz /spans "
                       "/epoch\n");
}

#ifdef NLARM_TELEMETRY_POSIX

bool TelemetryServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    NLARM_WARN << "telemetry: socket() failed: " << std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    NLARM_WARN << "telemetry: bad bind address " << options_.bind_address;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    NLARM_WARN << "telemetry: cannot listen on " << options_.bind_address
               << ":" << options_.port << ": " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  NLARM_INFO << "telemetry: listening on http://" << options_.bind_address
             << ":" << port_;
  return true;
}

void TelemetryServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Read until the header terminator (requests here have no body) with a
    // small bound so a misbehaving client cannot park the server.
    std::string request;
    char buf[2048];
    while (request.size() < 16 * 1024 &&
           request.find("\r\n\r\n") == std::string::npos) {
      pollfd cfd{fd, POLLIN, 0};
      if (::poll(&cfd, 1, /*timeout_ms=*/1000) <= 0) break;
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      request.append(buf, static_cast<std::size_t>(n));
    }
    if (!request.empty()) {
      const std::string response = handle(request);
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t n = ::send(fd, response.data() + sent,
                                 response.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) break;
        sent += static_cast<std::size_t>(n);
      }
    }
    ::close(fd);
  }
}

void TelemetryServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

#else  // !NLARM_TELEMETRY_POSIX

bool TelemetryServer::start() {
  NLARM_WARN << "telemetry: no POSIX sockets on this platform; server off";
  return false;
}

void TelemetryServer::serve_loop() {}

void TelemetryServer::stop() {}

#endif

}  // namespace nlarm::obs
