#include "obs/catalog.h"

namespace nlarm::obs::metrics {

namespace {
MetricsRegistry& reg() { return MetricsRegistry::global(); }
}  // namespace

#define NLARM_CATALOG_COUNTER(fn, name, help)      \
  Counter& fn() {                                  \
    static Counter& metric = reg().counter(name, help); \
    return metric;                                 \
  }
#define NLARM_CATALOG_GAUGE(fn, name, help)        \
  Gauge& fn() {                                    \
    static Gauge& metric = reg().gauge(name, help); \
    return metric;                                 \
  }
#define NLARM_CATALOG_HISTOGRAM(fn, name, help)    \
  Histogram& fn() {                                \
    static Histogram& metric = reg().histogram(name, help); \
    return metric;                                 \
  }
// Hot-path latency histograms use the fine 1-1.5-2-3-5-7.5 grid: the
// default 1-2-5 grid put the whole ~1.5 ms V=16384 decide in one bucket.
#define NLARM_CATALOG_FINE_HISTOGRAM(fn, name, help)                  \
  Histogram& fn() {                                                   \
    static Histogram& metric =                                        \
        reg().histogram(name, help, fine_latency_seconds_bounds());   \
    return metric;                                                    \
  }

NLARM_CATALOG_COUNTER(alloc_requests, "nlarm_alloc_requests_total",
                      "Allocation requests served by the network-load-aware "
                      "allocator.")
NLARM_CATALOG_COUNTER(alloc_prepared_cache_hits,
                      "nlarm_alloc_prepared_cache_hits_total",
                      "Prepared-input memoization hits (CL/NL/pc reused for "
                      "an unchanged snapshot version).")
NLARM_CATALOG_COUNTER(alloc_prepared_cache_misses,
                      "nlarm_alloc_prepared_cache_misses_total",
                      "Prepared-input memoization misses (full O(V^2) input "
                      "preparation ran).")
NLARM_CATALOG_COUNTER(alloc_candidates_generated,
                      "nlarm_alloc_candidates_generated_total",
                      "Candidate sub-graphs generated (one per start node "
                      "per request).")
NLARM_CATALOG_COUNTER(alloc_topk_generations,
                      "nlarm_alloc_topk_generations_total",
                      "Requests whose candidate generation used the top-k "
                      "partial selection.")
NLARM_CATALOG_COUNTER(alloc_fullsort_generations,
                      "nlarm_alloc_fullsort_generations_total",
                      "Requests whose candidate generation needed the full "
                      "sort (request covers the whole working set).")
NLARM_CATALOG_COUNTER(alloc_fill_overflows, "nlarm_alloc_fill_overflows_total",
                      "Candidates whose process fill overflowed capacity and "
                      "fell back to round-robin oversubscription.")
NLARM_CATALOG_FINE_HISTOGRAM(alloc_prepare_seconds, "nlarm_alloc_prepare_seconds",
                        "Wall time of the input-preparation stage "
                        "(normalized CL/NL/pc).")
NLARM_CATALOG_FINE_HISTOGRAM(alloc_generate_seconds, "nlarm_alloc_generate_seconds",
                        "Wall time of candidate generation (Algorithm 1 over "
                        "all start nodes).")
NLARM_CATALOG_FINE_HISTOGRAM(alloc_select_seconds, "nlarm_alloc_select_seconds",
                        "Wall time of best-candidate selection "
                        "(Algorithm 2).")
NLARM_CATALOG_FINE_HISTOGRAM(alloc_total_seconds, "nlarm_alloc_total_seconds",
                        "End-to-end wall time of allocate().")

NLARM_CATALOG_COUNTER(select_cost_walks, "nlarm_select_cost_walks_total",
                      "O(k^2) candidate cost walks run during selection "
                      "(candidates arriving without generation-time costs).")
NLARM_CATALOG_COUNTER(select_cost_dedup_hits,
                      "nlarm_select_cost_dedup_hits_total",
                      "Selection cost walks skipped because an identical "
                      "member set was already walked.")

NLARM_CATALOG_COUNTER(prepared_full_rebuilds,
                      "nlarm_prepared_full_rebuilds_total",
                      "Full O(V^2) prepared-state rebuilds (initial builds "
                      "and incremental fallbacks).")
NLARM_CATALOG_COUNTER(prepared_incremental_updates,
                      "nlarm_prepared_incremental_updates_total",
                      "Snapshot deltas applied incrementally to prepared "
                      "state.")
NLARM_CATALOG_COUNTER(prepared_incremental_fallbacks,
                      "nlarm_prepared_incremental_fallbacks_total",
                      "Delta applications that could not prove continuity "
                      "and fell back to a full rebuild.")
NLARM_CATALOG_COUNTER(prepared_nl_materializations,
                      "nlarm_prepared_nl_materializations_total",
                      "Epoch builds that materialized a fresh O(V^2) NL "
                      "matrix.")
NLARM_CATALOG_COUNTER(prepared_nl_reuses, "nlarm_prepared_nl_reuses_total",
                      "Epoch builds that shared the previous NL matrix "
                      "(no pair state changed).")
NLARM_CATALOG_FINE_HISTOGRAM(prepared_update_seconds,
                        "nlarm_prepared_update_seconds",
                        "Wall time of one incremental delta application.")
NLARM_CATALOG_HISTOGRAM(prepared_rebuild_seconds,
                        "nlarm_prepared_rebuild_seconds",
                        "Wall time of one full prepared-state rebuild.")

NLARM_CATALOG_COUNTER(epoch_publishes, "nlarm_epoch_publishes_total",
                      "Prepared epochs published to concurrent readers.")
NLARM_CATALOG_GAUGE(epoch_age_seconds, "nlarm_epoch_age_seconds",
                    "Snapshot-time gap between the last two published "
                    "epochs (how stale the previous epoch had become).")
NLARM_CATALOG_GAUGE(epoch_refresh_lag_seconds,
                    "nlarm_epoch_refresh_lag_seconds",
                    "Wall-clock gap between the last two epoch publishes "
                    "(the refresh loop's actual cadence).")
NLARM_CATALOG_GAUGE(epoch_tiled_state_bytes, "nlarm_epoch_tiled_state_bytes",
                    "Memory footprint of the current epoch's tiled pair "
                    "state (0 when serving the flat path).")
NLARM_CATALOG_GAUGE(epoch_staleness_burn_ratio,
                    "nlarm_epoch_staleness_burn_ratio",
                    "Current epoch age over the max-epoch-age bound; 1.0 "
                    "means the staleness budget is exhausted.")

NLARM_CATALOG_COUNTER(broker_decisions, "nlarm_broker_decisions_total",
                      "Brokered decisions (allocate or wait).")
NLARM_CATALOG_COUNTER(broker_waits, "nlarm_broker_waits_total",
                      "Decisions that recommended waiting.")
NLARM_CATALOG_COUNTER(broker_allocations, "nlarm_broker_allocations_total",
                      "Decisions that allocated nodes.")
NLARM_CATALOG_COUNTER(broker_aggregates_cache_hits,
                      "nlarm_broker_aggregates_cache_hits_total",
                      "Broker gate aggregates served from the snapshot-"
                      "version memo.")
NLARM_CATALOG_COUNTER(broker_aggregates_cache_misses,
                      "nlarm_broker_aggregates_cache_misses_total",
                      "Broker gate aggregates recomputed from the snapshot.")
NLARM_CATALOG_HISTOGRAM(broker_gate_seconds, "nlarm_broker_gate_seconds",
                        "Wall time of the wait/allocate gate evaluation.")
NLARM_CATALOG_COUNTER(broker_epoch_decisions,
                      "nlarm_broker_epoch_decisions_total",
                      "Decisions served from a published epoch (lock-free "
                      "concurrent path).")
NLARM_CATALOG_COUNTER(broker_batches, "nlarm_broker_batches_total",
                      "Batched admission rounds decided against one epoch.")
NLARM_CATALOG_COUNTER(broker_batch_requests,
                      "nlarm_broker_batch_requests_total",
                      "Requests decided inside batched admission rounds.")
NLARM_CATALOG_COUNTER(broker_fallback_decisions,
                      "nlarm_broker_fallback_decisions_total",
                      "Epoch decisions served from the last-good epoch "
                      "because the current one had no usable nodes.")
NLARM_CATALOG_COUNTER(broker_stale_refusals,
                      "nlarm_broker_stale_refusals_total",
                      "Epoch decisions refused because even the last-good "
                      "epoch exceeded the degradation policy's age bound.")
NLARM_CATALOG_HISTOGRAM(broker_epoch_age_seconds,
                        "nlarm_broker_epoch_age_seconds",
                        "Distribution of snapshot-time gaps between "
                        "consecutive published epochs.")

NLARM_CATALOG_COUNTER(hier_decisions, "nlarm_hier_decisions_total",
                      "Decisions served by the two-phase hierarchical "
                      "allocation path.")
NLARM_CATALOG_COUNTER(hier_pruned_decisions,
                      "nlarm_hier_pruned_decisions_total",
                      "Two-phase decisions where phase 1 actually narrowed "
                      "the node pool (vs covering every block).")
NLARM_CATALOG_COUNTER(hier_blocks_chosen, "nlarm_hier_blocks_chosen_total",
                      "Topology blocks chosen by phase 1 across all "
                      "two-phase decisions.")
NLARM_CATALOG_COUNTER(hier_tiles_materialized,
                      "nlarm_hier_tiles_materialized_total",
                      "Dense pair tiles materialized on demand for phase-2 "
                      "pools.")
NLARM_CATALOG_COUNTER(hier_tile_cache_hits,
                      "nlarm_hier_tile_cache_hits_total",
                      "Phase-2 tile lookups served from the epoch's "
                      "materialized-tile cache.")
NLARM_CATALOG_FINE_HISTOGRAM(hier_phase1_seconds, "nlarm_hier_phase1_seconds",
                        "Wall time of phase 1 (block aggregation and "
                        "group-level Algorithms 1+2).")
NLARM_CATALOG_FINE_HISTOGRAM(hier_phase2_seconds, "nlarm_hier_phase2_seconds",
                        "Wall time of phase 2 (pool assembly plus node-level "
                        "Algorithms 1+2 over the chosen blocks).")

NLARM_CATALOG_GAUGE(degrade_quarantined_nodes,
                    "nlarm_degrade_quarantined_nodes",
                    "Nodes currently quarantined out of candidate "
                    "generation for record staleness.")
NLARM_CATALOG_COUNTER(degrade_quarantine_events,
                      "nlarm_degrade_quarantine_events_total",
                      "Node quarantine entries (record age crossed the "
                      "staleness budget).")
NLARM_CATALOG_COUNTER(degrade_readmissions,
                      "nlarm_degrade_readmissions_total",
                      "Quarantined nodes readmitted after their record "
                      "freshened past the hysteresis threshold.")
NLARM_CATALOG_GAUGE(degrade_pair_fallbacks, "nlarm_degrade_pair_fallbacks",
                    "P2P pairs currently served from the penalized 5-minute "
                    "running mean instead of the stale spot measurement.")
NLARM_CATALOG_COUNTER(degrade_block_quarantine_events,
                      "nlarm_degrade_block_quarantine_events_total",
                      "Nodes overlay-quarantined because their switch "
                      "crossed the block-quarantine fraction.")
NLARM_CATALOG_GAUGE(degrade_block_quarantined_nodes,
                    "nlarm_degrade_block_quarantined_nodes",
                    "Nodes currently quarantined by the block-granularity "
                    "rule on top of their own record state.")

NLARM_CATALOG_COUNTER(jobqueue_backoffs, "nlarm_jobqueue_backoffs_total",
                      "Wait verdicts that put the head job into exponential "
                      "backoff instead of retrying immediately.")

NLARM_CATALOG_COUNTER(telemetry_scrapes, "nlarm_telemetry_scrapes_total",
                      "Successful telemetry-plane scrapes "
                      "(/metrics, /spans, /epoch).")
NLARM_CATALOG_COUNTER(telemetry_scrape_errors,
                      "nlarm_telemetry_scrape_errors_total",
                      "Telemetry requests rejected (bad request line, "
                      "unknown path, or unsupported method).")
NLARM_CATALOG_COUNTER(telemetry_flushes, "nlarm_telemetry_flushes_total",
                      "JSONL time-series frames appended by the metrics "
                      "flusher.")
NLARM_CATALOG_GAUGE(serve_threads, "nlarm_serve_threads",
                    "Serve threads the broker front end is running.")
NLARM_CATALOG_GAUGE(serve_inflight, "nlarm_serve_inflight",
                    "Serve threads currently inside decide() — at "
                    "nlarm_serve_threads the front end is saturated.")
NLARM_CATALOG_GAUGE(delta_log_tail_bytes, "nlarm_delta_log_tail_bytes",
                    "Byte offset of the next unread frame in the followed "
                    ".nlarmd delta append-log (follower lag vs file size).")

NLARM_CATALOG_GAUGE(serve_shards, "nlarm_serve_shards",
                    "Serve shards (worker threads) the sharded admission "
                    "front end is running.")
NLARM_CATALOG_GAUGE(serve_shard_queue_depth, "nlarm_serve_shard_queue_depth",
                    "Requests queued across all serve-shard rings at the "
                    "last drain (enqueue-side estimate).")
NLARM_CATALOG_COUNTER(serve_plane_decisions,
                      "nlarm_serve_plane_decisions_total",
                      "Admission decisions served through the sharded "
                      "front end.")
NLARM_CATALOG_COUNTER(serve_queue_full_spins,
                      "nlarm_serve_queue_full_spins_total",
                      "Producer spin-yields on a full serve-shard ring "
                      "(back-pressure events).")
NLARM_CATALOG_COUNTER(serve_drains, "nlarm_serve_drains_total",
                      "Serve-shard drain sweeps (epoch pin re-validated "
                      "once per sweep).")
NLARM_CATALOG_COUNTER(serve_cache_hits, "nlarm_serve_cache_hits_total",
                      "Admission decisions replayed from the decision cache "
                      "after a successful capacity re-proof.")
NLARM_CATALOG_COUNTER(serve_cache_misses, "nlarm_serve_cache_misses_total",
                      "Admission decisions that needed a fresh scoring pass "
                      "(no cache entry for the epoch + job shape).")
NLARM_CATALOG_COUNTER(serve_cache_invalidations,
                      "nlarm_serve_cache_invalidations_total",
                      "Cached placements invalidated because a chosen node "
                      "no longer had capacity headroom.")
NLARM_CATALOG_COUNTER(serve_coalesced, "nlarm_serve_coalesced_total",
                      "Requests that rode a same-shape drain-mate's scoring "
                      "pass instead of running their own.")
NLARM_CATALOG_COUNTER(serve_scoring_passes,
                      "nlarm_serve_scoring_passes_total",
                      "Fresh Algorithm-1/2 scoring passes run by the serve "
                      "plane.")

NLARM_CATALOG_GAUGE(simd_kernel, "nlarm_simd_kernel",
                    "Active addition-cost scoring kernel: 0 scalar, 1 AVX2, "
                    "2 NEON (SIMD only after the bit-exactness probe "
                    "passes).")

QuantileSketch& serve_decide_sketch() {
  static QuantileSketch* sketch = new QuantileSketch();
  return *sketch;
}
QuantileSketch& admission_wait_sketch() {
  static QuantileSketch* sketch = new QuantileSketch();
  return *sketch;
}
QuantileSketch& epoch_refresh_sketch() {
  static QuantileSketch* sketch = new QuantileSketch();
  return *sketch;
}
QuantileSketch& refresh_rebuild_sketch() {
  static QuantileSketch* sketch = new QuantileSketch();
  return *sketch;
}
QuantileSketch& refresh_apply_sketch() {
  static QuantileSketch* sketch = new QuantileSketch();
  return *sketch;
}

NLARM_CATALOG_GAUGE(refresh_workers, "nlarm_refresh_workers",
                    "Worker threads attached to the broker's epoch-refresh "
                    "pool (0 = serial refresh).")
NLARM_CATALOG_COUNTER(refresh_parallel_rebuilds,
                      "nlarm_refresh_parallel_rebuilds_total",
                      "Full prepared-state rebuilds that ran on the "
                      "refresh pool.")
NLARM_CATALOG_COUNTER(refresh_parallel_applies,
                      "nlarm_refresh_parallel_applies_total",
                      "Sharded delta applications that ran on the refresh "
                      "pool.")
NLARM_CATALOG_COUNTER(refresh_decode_ahead_frames,
                      "nlarm_refresh_decode_ahead_frames_total",
                      "Delta-log frames decoded by the decode-ahead thread "
                      "while the previous frame was being applied.")
NLARM_CATALOG_GAUGE(refresh_decode_ahead_depth,
                    "nlarm_refresh_decode_ahead_depth",
                    "Frames currently sitting decoded-but-unapplied in the "
                    "delta-log decode-ahead buffer.")
NLARM_CATALOG_GAUGE(refresh_rebuild_p50_seconds,
                    "nlarm_refresh_rebuild_p50_seconds",
                    "Sketch-estimated p50 of the full-rebuild refresh "
                    "stage.")
NLARM_CATALOG_GAUGE(refresh_rebuild_p95_seconds,
                    "nlarm_refresh_rebuild_p95_seconds",
                    "Sketch-estimated p95 of the full-rebuild refresh "
                    "stage.")
NLARM_CATALOG_GAUGE(refresh_apply_p50_seconds,
                    "nlarm_refresh_apply_p50_seconds",
                    "Sketch-estimated p50 of the delta-apply refresh "
                    "stage.")
NLARM_CATALOG_GAUGE(refresh_apply_p95_seconds,
                    "nlarm_refresh_apply_p95_seconds",
                    "Sketch-estimated p95 of the delta-apply refresh "
                    "stage.")

NLARM_CATALOG_GAUGE(serve_decide_p50_seconds, "nlarm_serve_decide_p50_seconds",
                    "Sketch-estimated p50 of end-to-end decide() latency.")
NLARM_CATALOG_GAUGE(serve_decide_p95_seconds, "nlarm_serve_decide_p95_seconds",
                    "Sketch-estimated p95 of end-to-end decide() latency.")
NLARM_CATALOG_GAUGE(serve_decide_p99_seconds, "nlarm_serve_decide_p99_seconds",
                    "Sketch-estimated p99 of end-to-end decide() latency.")
NLARM_CATALOG_GAUGE(serve_decide_p999_seconds,
                    "nlarm_serve_decide_p999_seconds",
                    "Sketch-estimated p999 of end-to-end decide() latency.")
NLARM_CATALOG_GAUGE(admission_wait_p50_seconds,
                    "nlarm_admission_wait_p50_seconds",
                    "Sketch-estimated p50 of in-batch admission wait.")
NLARM_CATALOG_GAUGE(admission_wait_p99_seconds,
                    "nlarm_admission_wait_p99_seconds",
                    "Sketch-estimated p99 of in-batch admission wait.")
NLARM_CATALOG_GAUGE(epoch_refresh_p50_seconds,
                    "nlarm_epoch_refresh_p50_seconds",
                    "Sketch-estimated p50 of the wall gap between epoch "
                    "publishes.")
NLARM_CATALOG_GAUGE(epoch_refresh_p99_seconds,
                    "nlarm_epoch_refresh_p99_seconds",
                    "Sketch-estimated p99 of the wall gap between epoch "
                    "publishes.")

void export_quantile_gauges() {
  const QuantileSketch& decide = serve_decide_sketch();
  serve_decide_p50_seconds().set(decide.quantile(0.50));
  serve_decide_p95_seconds().set(decide.quantile(0.95));
  serve_decide_p99_seconds().set(decide.quantile(0.99));
  serve_decide_p999_seconds().set(decide.quantile(0.999));
  const QuantileSketch& wait = admission_wait_sketch();
  admission_wait_p50_seconds().set(wait.quantile(0.50));
  admission_wait_p99_seconds().set(wait.quantile(0.99));
  const QuantileSketch& refresh = epoch_refresh_sketch();
  epoch_refresh_p50_seconds().set(refresh.quantile(0.50));
  epoch_refresh_p99_seconds().set(refresh.quantile(0.99));
  const QuantileSketch& rebuild = refresh_rebuild_sketch();
  refresh_rebuild_p50_seconds().set(rebuild.quantile(0.50));
  refresh_rebuild_p95_seconds().set(rebuild.quantile(0.95));
  const QuantileSketch& apply = refresh_apply_sketch();
  refresh_apply_p50_seconds().set(apply.quantile(0.50));
  refresh_apply_p95_seconds().set(apply.quantile(0.95));
}

NLARM_CATALOG_GAUGE(threadpool_threads, "nlarm_threadpool_threads",
                    "Worker threads in the most recently constructed "
                    "util::ThreadPool.")
NLARM_CATALOG_COUNTER(threadpool_batches, "nlarm_threadpool_batches_total",
                      "parallel_for batches dispatched to pool workers.")
NLARM_CATALOG_COUNTER(threadpool_tasks, "nlarm_threadpool_tasks_total",
                      "Indices executed across pooled parallel_for batches.")
NLARM_CATALOG_HISTOGRAM(threadpool_submit_wait_seconds,
                        "nlarm_threadpool_submit_wait_seconds",
                        "Time a parallel_for caller spent enqueueing its "
                        "job (brief jobs-list lock contention; concurrent "
                        "callers no longer serialize whole calls).")
NLARM_CATALOG_HISTOGRAM(threadpool_batch_seconds,
                        "nlarm_threadpool_batch_seconds",
                        "Wall time of one pooled parallel_for batch, submit "
                        "to last index done.")

NLARM_CATALOG_COUNTER(monitor_daemon_ticks, "nlarm_monitor_daemon_ticks_total",
                      "Periodic ticks executed across all monitoring "
                      "daemons.")
NLARM_CATALOG_COUNTER(monitor_node_samples,
                      "nlarm_monitor_node_samples_total",
                      "Node-state records written by NodeStateD daemons.")
NLARM_CATALOG_COUNTER(monitor_pair_probes, "nlarm_monitor_pair_probes_total",
                      "P2P latency/bandwidth pair probes measured.")
NLARM_CATALOG_COUNTER(monitor_snapshots, "nlarm_monitor_snapshots_total",
                      "Allocator-facing snapshots assembled from the store.")
NLARM_CATALOG_COUNTER(monitor_stale_records,
                      "nlarm_monitor_stale_records_total",
                      "Node records invalidated by the staleness filter.")
NLARM_CATALOG_GAUGE(monitor_record_age_seconds,
                    "nlarm_monitor_record_age_seconds",
                    "Oldest valid node record age at the last staleness-"
                    "filtered snapshot.")
NLARM_CATALOG_GAUGE(monitor_daemons_running, "nlarm_monitor_daemons_running",
                    "Daemons observed running at the last supervision tick.")
NLARM_CATALOG_COUNTER(monitor_daemon_relaunches,
                      "nlarm_monitor_daemon_relaunches_total",
                      "Dead daemons relaunched by the CentralMonitor.")
NLARM_CATALOG_COUNTER(monitor_promotions, "nlarm_monitor_promotions_total",
                      "Slave supervisors promoted to master.")
NLARM_CATALOG_GAUGE(monitor_abandoned, "nlarm_monitor_abandoned",
                    "1 once master and slave supervisors both died and "
                    "supervision stopped.")
NLARM_CATALOG_COUNTER(monitor_delta_drains, "nlarm_monitor_delta_drains_total",
                      "Snapshot deltas drained from monitor stores.")
NLARM_CATALOG_COUNTER(monitor_delta_dirty_nodes,
                      "nlarm_monitor_delta_dirty_nodes_total",
                      "Dirty node ids carried by drained deltas.")
NLARM_CATALOG_COUNTER(monitor_delta_dirty_pairs,
                      "nlarm_monitor_delta_dirty_pairs_total",
                      "Dirty P2P pairs carried by drained deltas.")

NLARM_CATALOG_COUNTER(persistence_snapshot_saves,
                      "nlarm_persistence_snapshot_saves_total",
                      "Snapshot files saved through the crash-safe "
                      "tmp-then-rename path.")
NLARM_CATALOG_COUNTER(persistence_snapshot_save_failures,
                      "nlarm_persistence_snapshot_save_failures_total",
                      "Snapshot saves that failed (torn or short write, "
                      "rename error); the previous file is left intact.")
NLARM_CATALOG_COUNTER(snapshot_bytes_written,
                      "nlarm_snapshot_bytes_written_total",
                      "Bytes written by snapshot saves and delta-log frames "
                      "(text, binary, and .nlarmd appends/compactions).")
NLARM_CATALOG_HISTOGRAM(snapshot_parse_seconds, "nlarm_snapshot_parse_seconds",
                        "Wall time spent parsing a snapshot artifact back "
                        "into a ClusterSnapshot (text or binary, any path).")
NLARM_CATALOG_COUNTER(snapshot_crc_failures,
                      "nlarm_snapshot_crc_failures_total",
                      "Snapshot or delta-log frames rejected for CRC/magic "
                      "mismatch (torn tail, truncation, corruption).")

NLARM_CATALOG_COUNTER(sim_events, "nlarm_sim_events_total",
                      "Discrete events dispatched by the simulation engine.")
NLARM_CATALOG_GAUGE(sim_time_ratio, "nlarm_sim_time_ratio",
                    "Simulated seconds advanced per wall second in the last "
                    "run_until().")

NLARM_CATALOG_COUNTER(chaos_events, "nlarm_chaos_events_total",
                      "Chaos-schedule events fired by the fault-injection "
                      "engine.")
NLARM_CATALOG_COUNTER(chaos_daemon_stalls, "nlarm_chaos_daemon_stalls_total",
                      "Daemons wedged (alive but not ticking) by chaos "
                      "stall events.")
NLARM_CATALOG_COUNTER(chaos_node_flaps, "nlarm_chaos_node_flaps_total",
                      "Node down/up flaps injected by chaos events.")
NLARM_CATALOG_COUNTER(chaos_supervisor_kills,
                      "nlarm_chaos_supervisor_kills_total",
                      "Master/slave supervisor kills injected by chaos "
                      "events.")
NLARM_CATALOG_COUNTER(chaos_torn_snapshot_writes,
                      "nlarm_chaos_torn_snapshot_writes_total",
                      "Snapshot saves deliberately torn mid-write by chaos "
                      "events.")
NLARM_CATALOG_GAUGE(chaos_clock_skew_seconds, "nlarm_chaos_clock_skew_seconds",
                    "Accumulated clock skew injected into staleness "
                    "computations.")
NLARM_CATALOG_COUNTER(chaos_leader_kills, "nlarm_chaos_leader_kills_total",
                      "Delta-log leader brokers killed mid-compaction by "
                      "chaos events.")

NLARM_CATALOG_COUNTER(replica_frames_ingested,
                      "nlarm_replica_frames_ingested_total",
                      "Delta-log frames a follower broker replayed into its "
                      "replicated state.")
NLARM_CATALOG_COUNTER(replica_epochs, "nlarm_replica_epochs_total",
                      "Epochs a follower broker published from replicated "
                      "frames.")
NLARM_CATALOG_GAUGE(replica_lag_seconds, "nlarm_replica_lag_seconds",
                    "Replication lag: caller-clock seconds between now and "
                    "the follower's last ingested snapshot time.")
NLARM_CATALOG_GAUGE(replica_role, "nlarm_replica_role",
                    "Replica role: 0 while following the leader's log, 1 "
                    "after promotion to leader.")
NLARM_CATALOG_COUNTER(replica_fenced, "nlarm_replica_fenced_total",
                      "Follower decides refused because replication lag "
                      "exceeded the epoch-age fence.")
NLARM_CATALOG_COUNTER(replica_promotions, "nlarm_replica_promotions_total",
                      "Followers promoted to leader from their last-good "
                      "replicated frame.")

NLARM_CATALOG_COUNTER(probe_rounds, "nlarm_probe_rounds_total",
                      "Sparse probe rounds run (one n/2-pair tournament "
                      "round per daemon period).")
NLARM_CATALOG_COUNTER(probe_pairs_measured, "nlarm_probe_pairs_measured_total",
                      "Pairs actually probed by sparse-mode pair daemons.")
NLARM_CATALOG_COUNTER(probe_pairs_reconstructed,
                      "nlarm_probe_pairs_reconstructed_total",
                      "Stale pairs whose values were reconstructed from "
                      "per-link topology estimates instead of probed.")
NLARM_CATALOG_GAUGE(probe_traffic_fraction, "nlarm_probe_traffic_fraction",
                    "Measured probes per sparse round divided by the full "
                    "O(V^2) pair count.")

#undef NLARM_CATALOG_COUNTER
#undef NLARM_CATALOG_GAUGE
#undef NLARM_CATALOG_HISTOGRAM

void register_all() {
  alloc_requests();
  alloc_prepared_cache_hits();
  alloc_prepared_cache_misses();
  alloc_candidates_generated();
  alloc_topk_generations();
  alloc_fullsort_generations();
  alloc_fill_overflows();
  alloc_prepare_seconds();
  alloc_generate_seconds();
  alloc_select_seconds();
  alloc_total_seconds();
  select_cost_walks();
  select_cost_dedup_hits();
  prepared_full_rebuilds();
  prepared_incremental_updates();
  prepared_incremental_fallbacks();
  prepared_nl_materializations();
  prepared_nl_reuses();
  prepared_update_seconds();
  prepared_rebuild_seconds();
  epoch_publishes();
  epoch_age_seconds();
  epoch_refresh_lag_seconds();
  epoch_tiled_state_bytes();
  epoch_staleness_burn_ratio();
  broker_decisions();
  broker_waits();
  broker_allocations();
  broker_aggregates_cache_hits();
  broker_aggregates_cache_misses();
  broker_gate_seconds();
  broker_epoch_decisions();
  broker_batches();
  broker_batch_requests();
  broker_fallback_decisions();
  broker_stale_refusals();
  broker_epoch_age_seconds();
  hier_decisions();
  hier_pruned_decisions();
  hier_blocks_chosen();
  hier_tiles_materialized();
  hier_tile_cache_hits();
  hier_phase1_seconds();
  hier_phase2_seconds();
  degrade_quarantined_nodes();
  degrade_quarantine_events();
  degrade_readmissions();
  degrade_pair_fallbacks();
  degrade_block_quarantine_events();
  degrade_block_quarantined_nodes();
  jobqueue_backoffs();
  telemetry_scrapes();
  telemetry_scrape_errors();
  telemetry_flushes();
  serve_threads();
  serve_inflight();
  delta_log_tail_bytes();
  serve_shards();
  serve_shard_queue_depth();
  serve_plane_decisions();
  serve_queue_full_spins();
  serve_drains();
  serve_cache_hits();
  serve_cache_misses();
  serve_cache_invalidations();
  serve_coalesced();
  serve_scoring_passes();
  simd_kernel();
  serve_decide_p50_seconds();
  serve_decide_p95_seconds();
  serve_decide_p99_seconds();
  serve_decide_p999_seconds();
  admission_wait_p50_seconds();
  admission_wait_p99_seconds();
  epoch_refresh_p50_seconds();
  epoch_refresh_p99_seconds();
  refresh_workers();
  refresh_parallel_rebuilds();
  refresh_parallel_applies();
  refresh_decode_ahead_frames();
  refresh_decode_ahead_depth();
  refresh_rebuild_p50_seconds();
  refresh_rebuild_p95_seconds();
  refresh_apply_p50_seconds();
  refresh_apply_p95_seconds();
  threadpool_threads();
  threadpool_batches();
  threadpool_tasks();
  threadpool_submit_wait_seconds();
  threadpool_batch_seconds();
  monitor_daemon_ticks();
  monitor_node_samples();
  monitor_pair_probes();
  monitor_snapshots();
  monitor_stale_records();
  monitor_record_age_seconds();
  monitor_daemons_running();
  monitor_daemon_relaunches();
  monitor_promotions();
  monitor_abandoned();
  monitor_delta_drains();
  monitor_delta_dirty_nodes();
  monitor_delta_dirty_pairs();
  persistence_snapshot_saves();
  persistence_snapshot_save_failures();
  snapshot_bytes_written();
  snapshot_parse_seconds();
  snapshot_crc_failures();
  sim_events();
  sim_time_ratio();
  chaos_events();
  chaos_daemon_stalls();
  chaos_node_flaps();
  chaos_supervisor_kills();
  chaos_torn_snapshot_writes();
  chaos_clock_skew_seconds();
  chaos_leader_kills();
  replica_frames_ingested();
  replica_epochs();
  replica_lag_seconds();
  replica_role();
  replica_fenced();
  replica_promotions();
  probe_rounds();
  probe_pairs_measured();
  probe_pairs_reconstructed();
  probe_traffic_fraction();
}

}  // namespace nlarm::obs::metrics
