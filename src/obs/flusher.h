// Periodic JSONL metrics flusher: turns the live registry into an on-disk
// time series.
//
// Dump-at-exit exposition gives a chaos run exactly one final frame; the
// flusher appends one compact JSON object per interval (wall-clock
// timestamp + sequence number + every counter/gauge/histogram summary) so
// a run produces a timeline that plots directly. Quantile gauges are
// refreshed from the sketches before each frame, same as a /metrics
// scrape.
//
// Rotation: when the file would grow past `rotate_bytes`, the current file
// is renamed to `<path>.1` (replacing any previous one) and a fresh file
// starts — two-deep retention bounds disk use on unattended runs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace nlarm::obs {

struct FlusherOptions {
  std::string path;           ///< JSONL output file (appended)
  double interval_s = 1.0;    ///< wall-clock seconds between frames
  std::uint64_t rotate_bytes = 0;  ///< rotate above this size; 0 = never
};

class MetricsFlusher {
 public:
  explicit MetricsFlusher(FlusherOptions options);
  ~MetricsFlusher();

  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  /// Spawns the flushing thread. Returns false when the file cannot be
  /// opened for append.
  bool start();

  /// Writes a final frame, stops the thread. Idempotent.
  void stop();

  /// Appends one frame now (also used by the thread each tick).
  /// Returns false on write failure.
  bool flush_now();

  std::uint64_t frames_written() const {
    return frames_.load(std::memory_order_relaxed);
  }
  /// Times the file was rotated to <path>.1.
  std::uint64_t rotations() const {
    return rotations_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void maybe_rotate_locked();

  FlusherOptions options_;
  std::mutex mutex_;               ///< guards the file and rotation
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> rotations_{0};
  std::thread thread_;
  bool started_ = false;
};

}  // namespace nlarm::obs
