#include "obs/http_client.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define NLARM_HTTP_POSIX 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace nlarm::obs {

std::optional<int> parse_http_status_line(std::string_view status_line) {
  const std::string_view line =
      status_line.substr(0, status_line.find_first_of("\r\n"));
  constexpr std::string_view kPrefix = "HTTP/";
  if (line.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) return std::nullopt;
  // Version token between "HTTP/" and the space: digits and dots only
  // ("1.1", "2"), non-empty.
  const std::string_view version = line.substr(kPrefix.size(),
                                               sp - kPrefix.size());
  if (version.empty()) return std::nullopt;
  for (const char c : version) {
    if ((c < '0' || c > '9') && c != '.') return std::nullopt;
  }
  // Status code: exactly three digits, then end-of-line or the space
  // before the (possibly empty) reason phrase. A fourth digit or a short
  // token is a malformed line, not a bigger number.
  const std::string_view rest = line.substr(sp + 1);
  if (rest.size() < 3) return std::nullopt;
  int code = 0;
  for (int i = 0; i < 3; ++i) {
    const char c = rest[static_cast<std::size_t>(i)];
    if (c < '0' || c > '9') return std::nullopt;
    code = code * 10 + (c - '0');
  }
  if (rest.size() > 3 && rest[3] != ' ') return std::nullopt;
  if (code < 100 || code > 599) return std::nullopt;
  return code;
}

#ifdef NLARM_HTTP_POSIX

std::optional<HttpResponse> http_get(const std::string& host, int port,
                                     const std::string& path,
                                     double timeout_s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return std::nullopt;
  }

  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }

  // The server closes after one response, so read to EOF under a deadline.
  std::string raw;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  char buf[4096];
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) break;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready <= 0) {
      if (ready == 0) break;  // timed out
      if (errno == EINTR) continue;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: response complete
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // Status line: HTTP/1.1 SP code SP reason. A malformed or truncated line
  // is a failed request, not "status 0".
  const std::optional<int> status = parse_http_status_line(raw);
  if (!status.has_value()) return std::nullopt;
  HttpResponse response;
  response.status = *status;
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return std::nullopt;
  response.body = raw.substr(header_end + 4);
  return response;
}

#else  // !NLARM_HTTP_POSIX

std::optional<HttpResponse> http_get(const std::string&, int,
                                     const std::string&, double) {
  return std::nullopt;
}

#endif

}  // namespace nlarm::obs
