#include "obs/trace.h"

#include <chrono>
#include <sstream>

#include "util/check.h"

namespace nlarm::obs {

double trace_clock_seconds() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

SpanTracer::SpanTracer(std::size_t capacity) : capacity_(capacity) {
  NLARM_CHECK(capacity > 0) << "span ring needs at least one slot";
  ring_.reserve(capacity);
}

void SpanTracer::record(const char* name, double start_seconds,
                        double duration_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back({name, start_seconds, duration_seconds});
  } else {
    ring_[next_] = {name, start_seconds, duration_seconds};
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<Span> SpanTracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // `next_` is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t SpanTracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::string SpanTracer::jsonl() const {
  std::ostringstream out;
  for (const Span& span : snapshot()) {
    out << "{\"span\":\"" << span.name
        << "\",\"start_s\":" << format_metric_value(span.start_seconds)
        << ",\"duration_s\":" << format_metric_value(span.duration_seconds)
        << "}\n";
  }
  return out.str();
}

SpanTracer& SpanTracer::global() {
  static SpanTracer tracer;
  return tracer;
}

ScopedSpan::ScopedSpan(const char* name, Histogram* histogram,
                       SpanTracer* tracer)
    : name_(name),
      histogram_(histogram),
      tracer_(tracer),
      start_seconds_(trace_clock_seconds()) {}

ScopedSpan::~ScopedSpan() { stop(); }

double ScopedSpan::stop() {
  if (stopped_) return duration_seconds_;
  stopped_ = true;
  duration_seconds_ = trace_clock_seconds() - start_seconds_;
  if (tracer_ != nullptr) {
    tracer_->record(name_, start_seconds_, duration_seconds_);
  }
  if (histogram_ != nullptr) histogram_->observe(duration_seconds_);
  return duration_seconds_;
}

}  // namespace nlarm::obs
