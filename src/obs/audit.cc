#include "obs/audit.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "obs/metrics.h"
#include "util/check.h"

namespace nlarm::obs {

namespace {

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// --- minimal JSON reader (just enough for AuditRecord round-trips) ---

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    NLARM_CHECK(pos_ == text_.size()) << "trailing JSON at offset " << pos_;
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    NLARM_CHECK(pos_ < text_.size()) << "unexpected end of JSON";
    return text_[pos_];
  }

  void expect(char c) {
    NLARM_CHECK(peek() == c) << "expected '" << c << "' at offset " << pos_;
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        expect_word("null");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) expect(*p);
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (peek() == 't') {
      expect_word("true");
      v.boolean = true;
    } else {
      expect_word("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    NLARM_CHECK(pos_ > start) << "bad JSON number at offset " << start;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      NLARM_CHECK(pos_ < text_.size()) << "unterminated JSON string";
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      NLARM_CHECK(pos_ < text_.size()) << "unterminated JSON escape";
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'u': {
          NLARM_CHECK(pos_ + 4 <= text_.size()) << "short \\u escape";
          const unsigned code = static_cast<unsigned>(
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // Only the control-character range we emit ourselves.
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          NLARM_CHECK(false) << "unsupported JSON escape '\\" << esc << "'";
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double get_number(const JsonValue& obj, const char* key, double fallback) {
  auto it = obj.object.find(key);
  if (it == obj.object.end()) return fallback;
  return it->second.number;
}

bool get_bool(const JsonValue& obj, const char* key, bool fallback) {
  auto it = obj.object.find(key);
  if (it == obj.object.end()) return fallback;
  return it->second.boolean;
}

std::string get_string(const JsonValue& obj, const char* key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end()) return {};
  return it->second.string;
}

std::vector<int> get_int_array(const JsonValue& obj, const char* key) {
  std::vector<int> out;
  auto it = obj.object.find(key);
  if (it == obj.object.end()) return out;
  for (const JsonValue& v : it->second.array) {
    out.push_back(static_cast<int>(v.number));
  }
  return out;
}

std::vector<std::string> get_string_array(const JsonValue& obj,
                                          const char* key) {
  std::vector<std::string> out;
  auto it = obj.object.find(key);
  if (it == obj.object.end()) return out;
  for (const JsonValue& v : it->second.array) out.push_back(v.string);
  return out;
}

}  // namespace

std::string AuditRecord::to_json() const {
  std::ostringstream out;
  const auto num = [](double v) { return format_metric_value(v); };
  out << "{\"nprocs\":" << nprocs << ",\"ppn\":" << ppn
      << ",\"alpha\":" << num(alpha) << ",\"beta\":" << num(beta)
      << ",\"snapshot_version\":" << snapshot_version
      << ",\"snapshot_time\":" << num(snapshot_time)
      << ",\"snapshot_nodes\":" << snapshot_nodes
      << ",\"usable_nodes\":" << usable_nodes << ",\"epoch\":" << epoch
      << ",\"action\":";
  append_json_string(out, action);
  out << ",\"reason\":";
  append_json_string(out, reason);
  out << ",\"cluster_load_per_core\":" << num(cluster_load_per_core)
      << ",\"effective_capacity\":" << effective_capacity
      << ",\"aggregates_cache_hit\":"
      << (aggregates_cache_hit ? "true" : "false") << ",\"degradation\":";
  append_json_string(out, degradation);
  out << ",\"quarantined_nodes\":" << quarantined_nodes << ",\"policy\":";
  append_json_string(out, policy);
  out << ",\"nodes\":[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out << ",";
    out << nodes[i];
  }
  out << "],\"hostnames\":[";
  for (std::size_t i = 0; i < hostnames.size(); ++i) {
    if (i > 0) out << ",";
    append_json_string(out, hostnames[i]);
  }
  out << "],\"procs_per_node\":[";
  for (std::size_t i = 0; i < procs_per_node.size(); ++i) {
    if (i > 0) out << ",";
    out << procs_per_node[i];
  }
  out << "],\"compute_cost\":" << num(compute_cost)
      << ",\"network_cost\":" << num(network_cost)
      << ",\"total_cost\":" << num(total_cost) << ",\"prepared_cache_hit\":"
      << (prepared_cache_hit ? "true" : "false")
      << ",\"candidates_generated\":" << candidates_generated
      << ",\"stages\":{\"gate\":" << num(gate_seconds)
      << ",\"prepare\":" << num(prepare_seconds)
      << ",\"generate\":" << num(generate_seconds)
      << ",\"select\":" << num(select_seconds)
      << ",\"total\":" << num(total_seconds) << "}}";
  return out.str();
}

AuditRecord AuditRecord::from_json(const std::string& json) {
  JsonValue root = JsonParser(json).parse();
  NLARM_CHECK(root.kind == JsonValue::Kind::kObject)
      << "audit record must be a JSON object";
  AuditRecord r;
  r.nprocs = static_cast<int>(get_number(root, "nprocs", 0));
  r.ppn = static_cast<int>(get_number(root, "ppn", 0));
  r.alpha = get_number(root, "alpha", 0.0);
  r.beta = get_number(root, "beta", 0.0);
  r.snapshot_version =
      static_cast<std::uint64_t>(get_number(root, "snapshot_version", 0));
  r.snapshot_time = get_number(root, "snapshot_time", 0.0);
  r.snapshot_nodes = static_cast<int>(get_number(root, "snapshot_nodes", 0));
  r.usable_nodes = static_cast<int>(get_number(root, "usable_nodes", 0));
  r.epoch = static_cast<std::uint64_t>(get_number(root, "epoch", 0));
  r.action = get_string(root, "action");
  r.reason = get_string(root, "reason");
  r.cluster_load_per_core = get_number(root, "cluster_load_per_core", 0.0);
  r.effective_capacity =
      static_cast<int>(get_number(root, "effective_capacity", 0));
  r.aggregates_cache_hit = get_bool(root, "aggregates_cache_hit", false);
  r.degradation = get_string(root, "degradation");
  if (r.degradation.empty()) r.degradation = "none";  // pre-degradation logs
  r.quarantined_nodes =
      static_cast<int>(get_number(root, "quarantined_nodes", 0));
  r.policy = get_string(root, "policy");
  r.nodes = get_int_array(root, "nodes");
  r.hostnames = get_string_array(root, "hostnames");
  r.procs_per_node = get_int_array(root, "procs_per_node");
  r.compute_cost = get_number(root, "compute_cost", 0.0);
  r.network_cost = get_number(root, "network_cost", 0.0);
  r.total_cost = get_number(root, "total_cost", 0.0);
  r.prepared_cache_hit = get_bool(root, "prepared_cache_hit", false);
  r.candidates_generated =
      static_cast<std::uint64_t>(get_number(root, "candidates_generated", 0));
  auto stages = root.object.find("stages");
  if (stages != root.object.end()) {
    r.gate_seconds = get_number(stages->second, "gate", 0.0);
    r.prepare_seconds = get_number(stages->second, "prepare", 0.0);
    r.generate_seconds = get_number(stages->second, "generate", 0.0);
    r.select_seconds = get_number(stages->second, "select", 0.0);
    r.total_seconds = get_number(stages->second, "total", 0.0);
  }
  return r;
}

std::string AuditLog::jsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const AuditRecord& record : records_) {
    out += record.to_json();
    out += '\n';
  }
  return out;
}

}  // namespace nlarm::obs
