// The catalog of nlarm's well-known metric series.
//
// Every instrumented layer fetches its series through these accessors, so
// the naming scheme lives in exactly one file (documented in DESIGN.md §9:
// nlarm_<layer>_<quantity>[_total|_seconds]). Each accessor registers on
// first call and caches the reference, making updates lock- and
// allocation-free. register_all() touches every series so exporters emit a
// complete exposition even for code paths that have not run yet.
#pragma once

#include "obs/metrics.h"
#include "obs/sketch.h"

namespace nlarm::obs::metrics {

// --- allocator (NetworkLoadAwareAllocator) ---
Counter& alloc_requests();               ///< nlarm_alloc_requests_total
Counter& alloc_prepared_cache_hits();    ///< nlarm_alloc_prepared_cache_hits_total
Counter& alloc_prepared_cache_misses();  ///< nlarm_alloc_prepared_cache_misses_total
Counter& alloc_candidates_generated();   ///< nlarm_alloc_candidates_generated_total
Counter& alloc_topk_generations();       ///< nlarm_alloc_topk_generations_total
Counter& alloc_fullsort_generations();   ///< nlarm_alloc_fullsort_generations_total
Counter& alloc_fill_overflows();         ///< nlarm_alloc_fill_overflows_total
Histogram& alloc_prepare_seconds();      ///< nlarm_alloc_prepare_seconds
Histogram& alloc_generate_seconds();     ///< nlarm_alloc_generate_seconds
Histogram& alloc_select_seconds();       ///< nlarm_alloc_select_seconds
Histogram& alloc_total_seconds();        ///< nlarm_alloc_total_seconds

// --- selection (Algorithm 2) ---
Counter& select_cost_walks();            ///< nlarm_select_cost_walks_total
Counter& select_cost_dedup_hits();       ///< nlarm_select_cost_dedup_hits_total

// --- prepared-state maintenance (PreparedBuilder) ---
Counter& prepared_full_rebuilds();        ///< nlarm_prepared_full_rebuilds_total
Counter& prepared_incremental_updates();  ///< nlarm_prepared_incremental_updates_total
Counter& prepared_incremental_fallbacks(); ///< nlarm_prepared_incremental_fallbacks_total
Counter& prepared_nl_materializations();  ///< nlarm_prepared_nl_materializations_total
Counter& prepared_nl_reuses();            ///< nlarm_prepared_nl_reuses_total
Histogram& prepared_update_seconds();     ///< nlarm_prepared_update_seconds
Histogram& prepared_rebuild_seconds();    ///< nlarm_prepared_rebuild_seconds

// --- epoch publication (EpochPublisher) ---
Counter& epoch_publishes();              ///< nlarm_epoch_publishes_total
Gauge& epoch_age_seconds();              ///< nlarm_epoch_age_seconds
Gauge& epoch_refresh_lag_seconds();      ///< nlarm_epoch_refresh_lag_seconds
Gauge& epoch_tiled_state_bytes();        ///< nlarm_epoch_tiled_state_bytes
Gauge& epoch_staleness_burn_ratio();     ///< nlarm_epoch_staleness_burn_ratio

// --- broker ---
Counter& broker_decisions();             ///< nlarm_broker_decisions_total
Counter& broker_waits();                 ///< nlarm_broker_waits_total
Counter& broker_allocations();           ///< nlarm_broker_allocations_total
Counter& broker_aggregates_cache_hits();   ///< nlarm_broker_aggregates_cache_hits_total
Counter& broker_aggregates_cache_misses(); ///< nlarm_broker_aggregates_cache_misses_total
Histogram& broker_gate_seconds();        ///< nlarm_broker_gate_seconds
Counter& broker_epoch_decisions();       ///< nlarm_broker_epoch_decisions_total
Counter& broker_batches();               ///< nlarm_broker_batches_total
Counter& broker_batch_requests();        ///< nlarm_broker_batch_requests_total
Counter& broker_fallback_decisions();    ///< nlarm_broker_fallback_decisions_total
Counter& broker_stale_refusals();        ///< nlarm_broker_stale_refusals_total
Histogram& broker_epoch_age_seconds();   ///< nlarm_broker_epoch_age_seconds

// --- hierarchical two-phase allocation (core::allocate_two_phase) ---
Counter& hier_decisions();               ///< nlarm_hier_decisions_total
Counter& hier_pruned_decisions();        ///< nlarm_hier_pruned_decisions_total
Counter& hier_blocks_chosen();           ///< nlarm_hier_blocks_chosen_total
Counter& hier_tiles_materialized();      ///< nlarm_hier_tiles_materialized_total
Counter& hier_tile_cache_hits();         ///< nlarm_hier_tile_cache_hits_total
Histogram& hier_phase1_seconds();        ///< nlarm_hier_phase1_seconds
Histogram& hier_phase2_seconds();        ///< nlarm_hier_phase2_seconds

// --- staleness degradation (core::Degrader) ---
Gauge& degrade_quarantined_nodes();      ///< nlarm_degrade_quarantined_nodes
Counter& degrade_quarantine_events();    ///< nlarm_degrade_quarantine_events_total
Counter& degrade_readmissions();         ///< nlarm_degrade_readmissions_total
Gauge& degrade_pair_fallbacks();         ///< nlarm_degrade_pair_fallbacks
Counter& degrade_block_quarantine_events(); ///< nlarm_degrade_block_quarantine_events_total
Gauge& degrade_block_quarantined_nodes(); ///< nlarm_degrade_block_quarantined_nodes

// --- job queue ---
Counter& jobqueue_backoffs();            ///< nlarm_jobqueue_backoffs_total

// --- live telemetry plane (obs/telemetry_server.h, obs/flusher.h) ---
Counter& telemetry_scrapes();            ///< nlarm_telemetry_scrapes_total
Counter& telemetry_scrape_errors();      ///< nlarm_telemetry_scrape_errors_total
Counter& telemetry_flushes();            ///< nlarm_telemetry_flushes_total
Gauge& serve_threads();                  ///< nlarm_serve_threads
Gauge& serve_inflight();                 ///< nlarm_serve_inflight
Gauge& delta_log_tail_bytes();           ///< nlarm_delta_log_tail_bytes

// --- sharded serve plane (core/serve_shard.h) ---
Gauge& serve_shards();                   ///< nlarm_serve_shards
Gauge& serve_shard_queue_depth();        ///< nlarm_serve_shard_queue_depth
Counter& serve_plane_decisions();        ///< nlarm_serve_plane_decisions_total
Counter& serve_queue_full_spins();       ///< nlarm_serve_queue_full_spins_total
Counter& serve_drains();                 ///< nlarm_serve_drains_total
Counter& serve_cache_hits();             ///< nlarm_serve_cache_hits_total
Counter& serve_cache_misses();           ///< nlarm_serve_cache_misses_total
Counter& serve_cache_invalidations();    ///< nlarm_serve_cache_invalidations_total
Counter& serve_coalesced();              ///< nlarm_serve_coalesced_total
Counter& serve_scoring_passes();         ///< nlarm_serve_scoring_passes_total

// --- SIMD scoring dispatch (core/prepared.h, simd::) ---
Gauge& simd_kernel();                    ///< nlarm_simd_kernel (0 scalar, 1 avx2, 2 neon)

// Streaming latency sketches (obs/sketch.h) and the quantile gauges
// export_quantile_gauges() materializes from them at scrape/flush time.
// The sketches are what the hot path writes into (wait-free observe);
// the gauges are the Prometheus-visible face.
QuantileSketch& serve_decide_sketch();    ///< end-to-end decide() latency
QuantileSketch& admission_wait_sketch();  ///< in-batch admission queue wait
QuantileSketch& epoch_refresh_sketch();   ///< publish-to-publish wall gap

Gauge& serve_decide_p50_seconds();   ///< nlarm_serve_decide_p50_seconds
Gauge& serve_decide_p95_seconds();   ///< nlarm_serve_decide_p95_seconds
Gauge& serve_decide_p99_seconds();   ///< nlarm_serve_decide_p99_seconds
Gauge& serve_decide_p999_seconds();  ///< nlarm_serve_decide_p999_seconds
Gauge& admission_wait_p50_seconds(); ///< nlarm_admission_wait_p50_seconds
Gauge& admission_wait_p99_seconds(); ///< nlarm_admission_wait_p99_seconds
Gauge& epoch_refresh_p50_seconds();  ///< nlarm_epoch_refresh_p50_seconds
Gauge& epoch_refresh_p99_seconds();  ///< nlarm_epoch_refresh_p99_seconds

/// Reads the three sketches and sets the quantile gauges above. Called by
/// the telemetry server on each /metrics scrape and by the flusher before
/// each frame — never from the decide path.
void export_quantile_gauges();

// --- parallel epoch-refresh plane (PreparedBuilder + delta-log ingest) ---
Gauge& refresh_workers();                ///< nlarm_refresh_workers
Counter& refresh_parallel_rebuilds();    ///< nlarm_refresh_parallel_rebuilds_total
Counter& refresh_parallel_applies();     ///< nlarm_refresh_parallel_applies_total
Counter& refresh_decode_ahead_frames();  ///< nlarm_refresh_decode_ahead_frames_total
Gauge& refresh_decode_ahead_depth();     ///< nlarm_refresh_decode_ahead_depth
QuantileSketch& refresh_rebuild_sketch(); ///< full-rebuild stage wall time
QuantileSketch& refresh_apply_sketch();   ///< delta-apply stage wall time
Gauge& refresh_rebuild_p50_seconds();    ///< nlarm_refresh_rebuild_p50_seconds
Gauge& refresh_rebuild_p95_seconds();    ///< nlarm_refresh_rebuild_p95_seconds
Gauge& refresh_apply_p50_seconds();      ///< nlarm_refresh_apply_p50_seconds
Gauge& refresh_apply_p95_seconds();      ///< nlarm_refresh_apply_p95_seconds

// --- util::ThreadPool (pooled parallel_for path only) ---
Gauge& threadpool_threads();             ///< nlarm_threadpool_threads
Counter& threadpool_batches();           ///< nlarm_threadpool_batches_total
Counter& threadpool_tasks();             ///< nlarm_threadpool_tasks_total
Histogram& threadpool_submit_wait_seconds(); ///< nlarm_threadpool_submit_wait_seconds
Histogram& threadpool_batch_seconds();   ///< nlarm_threadpool_batch_seconds

// --- resource monitor ---
Counter& monitor_daemon_ticks();         ///< nlarm_monitor_daemon_ticks_total
Counter& monitor_node_samples();         ///< nlarm_monitor_node_samples_total
Counter& monitor_pair_probes();          ///< nlarm_monitor_pair_probes_total
Counter& monitor_snapshots();            ///< nlarm_monitor_snapshots_total
Counter& monitor_stale_records();        ///< nlarm_monitor_stale_records_total
Gauge& monitor_record_age_seconds();     ///< nlarm_monitor_record_age_seconds
Gauge& monitor_daemons_running();        ///< nlarm_monitor_daemons_running
Counter& monitor_daemon_relaunches();    ///< nlarm_monitor_daemon_relaunches_total
Counter& monitor_promotions();           ///< nlarm_monitor_promotions_total
Gauge& monitor_abandoned();              ///< nlarm_monitor_abandoned
Counter& monitor_delta_drains();         ///< nlarm_monitor_delta_drains_total
Counter& monitor_delta_dirty_nodes();    ///< nlarm_monitor_delta_dirty_nodes_total
Counter& monitor_delta_dirty_pairs();    ///< nlarm_monitor_delta_dirty_pairs_total

// --- snapshot persistence ---
Counter& persistence_snapshot_saves();   ///< nlarm_persistence_snapshot_saves_total
Counter& persistence_snapshot_save_failures(); ///< nlarm_persistence_snapshot_save_failures_total
Counter& snapshot_bytes_written();       ///< nlarm_snapshot_bytes_written_total
Histogram& snapshot_parse_seconds();     ///< nlarm_snapshot_parse_seconds
Counter& snapshot_crc_failures();        ///< nlarm_snapshot_crc_failures_total

// --- simulation engine ---
Counter& sim_events();                   ///< nlarm_sim_events_total
Gauge& sim_time_ratio();                 ///< nlarm_sim_time_ratio

// --- chaos / fault injection (sim::ChaosEngine + exp::ChaosHarness) ---
Counter& chaos_events();                 ///< nlarm_chaos_events_total
Counter& chaos_daemon_stalls();          ///< nlarm_chaos_daemon_stalls_total
Counter& chaos_node_flaps();             ///< nlarm_chaos_node_flaps_total
Counter& chaos_supervisor_kills();       ///< nlarm_chaos_supervisor_kills_total
Counter& chaos_torn_snapshot_writes();   ///< nlarm_chaos_torn_snapshot_writes_total
Gauge& chaos_clock_skew_seconds();       ///< nlarm_chaos_clock_skew_seconds
Counter& chaos_leader_kills();           ///< nlarm_chaos_leader_kills_total

// --- replication (core::FollowerBroker over the delta log) ---
Counter& replica_frames_ingested();      ///< nlarm_replica_frames_ingested_total
Counter& replica_epochs();               ///< nlarm_replica_epochs_total
Gauge& replica_lag_seconds();            ///< nlarm_replica_lag_seconds
Gauge& replica_role();                   ///< nlarm_replica_role
Counter& replica_fenced();               ///< nlarm_replica_fenced_total
Counter& replica_promotions();           ///< nlarm_replica_promotions_total

// --- sparse probing (monitor/sparse.h) ---
Counter& probe_rounds();                 ///< nlarm_probe_rounds_total
Counter& probe_pairs_measured();         ///< nlarm_probe_pairs_measured_total
Counter& probe_pairs_reconstructed();    ///< nlarm_probe_pairs_reconstructed_total
Gauge& probe_traffic_fraction();         ///< nlarm_probe_traffic_fraction

/// Registers every catalog series in the global registry (idempotent).
void register_all();

}  // namespace nlarm::obs::metrics
