// Thread-safe in-process metrics: counters, gauges and fixed-bucket
// histograms behind a named registry.
//
// Design constraints (this feeds the allocator hot path):
//  - Updating a metric never allocates and never takes a lock — counters and
//    histogram buckets are relaxed atomics, gauges/sums use a CAS add.
//  - Registration (name → metric) allocates and locks, so call sites cache
//    the returned reference (function-local static or member).
//  - Exposition (Prometheus v0.0.4 text, JSONL) reads concurrently with
//    updates; values are individually atomic, not snapshotted as a set.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nlarm::obs {

/// Adds `delta` to an atomic double with a CAS loop (portable stand-in for
/// std::atomic<double>::fetch_add).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Monotone event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) { atomic_add(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus semantics: `bounds` are ascending
/// inclusive upper limits; an implicit +Inf bucket catches the rest).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i` alone (not cumulative); `i == bounds().size()` is
  /// the +Inf bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds+1 slots
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Default bucket bounds for stage latencies: 1-2-5 decades from 1µs to 1s.
std::vector<double> latency_seconds_bounds();

/// Finer bounds for hot-path histograms: 1-1.5-2-3-5-7.5 decades from
/// 100ns to 1s. The 1-2-5 grid put PR 6's ~1.5 ms warm decide and a 2 ms
/// regression in the same bucket; this grid separates them (and resolves
/// the sub-millisecond stage times a V=16384 decide is made of).
std::vector<double> fine_latency_seconds_bounds();

/// Named metric registry. `global()` is the process-wide instance every
/// instrumented layer reports into; tests may build private instances.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, registering it on first use. Re-registering
  /// the same name with a different type throws CheckError; `help` and
  /// `bounds` are fixed by the first registration.
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds = latency_seconds_bounds());

  // Read-side lookups for tests and exporters; null/0 when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;

  /// Prometheus text exposition format v0.0.4, metrics sorted by name.
  std::string prometheus_text() const;

  /// One JSON object per metric per line.
  std::string jsonl() const;

  /// The whole registry as ONE flat JSON object (no trailing newline):
  /// counters and gauges map name → value; histograms contribute
  /// name_count and name_sum. The flusher's per-tick time-series frame.
  std::string compact_json() const;

  static MetricsRegistry& global();

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< ordered for stable exposition
};

/// Formats a double the way both exporters do: shortest round-trip form
/// ("0.5", "12", "1e-06").
std::string format_metric_value(double value);

}  // namespace nlarm::obs
