// Lightweight span tracing: scoped RAII timers feeding a bounded ring
// buffer, with optional fan-in to a latency histogram.
//
// A span is (name, start, duration) on the process-wide steady clock;
// completed spans overwrite the oldest entry once the ring is full, so
// tracing cost and memory stay bounded no matter how long the process runs.
// Span names must be string literals (the ring stores the pointer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace nlarm::obs {

/// Seconds since the process-wide trace epoch (first call) on the steady
/// clock. Shared by every span so traces from different threads line up.
double trace_clock_seconds();

struct Span {
  const char* name = "";
  double start_seconds = 0.0;     ///< trace-clock time the span opened
  double duration_seconds = 0.0;
};

class SpanTracer {
 public:
  explicit SpanTracer(std::size_t capacity = 4096);

  void record(const char* name, double start_seconds,
              double duration_seconds);

  /// Completed spans, oldest first (at most `capacity` of them).
  std::vector<Span> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  /// Spans recorded over the tracer's lifetime, including overwritten ones.
  std::uint64_t total_recorded() const;

  /// One JSON object per span per line, oldest first.
  std::string jsonl() const;

  static SpanTracer& global();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Span> ring_;
  std::size_t next_ = 0;          ///< ring slot the next span lands in
  std::uint64_t recorded_ = 0;
};

/// Times a scope; on destruction (or the first stop()) records the span into
/// the tracer and, when given, observes the duration into `histogram`.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* histogram = nullptr,
                      SpanTracer* tracer = &SpanTracer::global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span early; returns its duration in seconds. Idempotent.
  double stop();

 private:
  const char* name_;
  Histogram* histogram_;
  SpanTracer* tracer_;
  double start_seconds_;
  double duration_seconds_ = 0.0;
  bool stopped_ = false;
};

}  // namespace nlarm::obs
