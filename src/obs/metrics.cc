#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace nlarm::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  NLARM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double value) {
  // Linear scan: stage-latency histograms keep ~20 buckets, and the common
  // case (sub-millisecond stages) exits within the first few.
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

std::vector<double> latency_seconds_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 0.5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.push_back(1.0);
  return bounds;
}

std::vector<double> fine_latency_seconds_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-7; decade < 0.5; decade *= 10.0) {
    for (const double mantissa : {1.0, 1.5, 2.0, 3.0, 5.0, 7.5}) {
      bounds.push_back(mantissa * decade);
    }
  }
  bounds.push_back(1.0);
  return bounds;
}

std::string format_metric_value(double value) {
  // Shortest representation that round-trips: try increasing precision.
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (!entry.counter) {
    NLARM_CHECK(!entry.gauge && !entry.histogram)
        << "metric '" << name << "' already registered with another type";
    entry.help = help;
    entry.counter = std::make_unique<Counter>();
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (!entry.gauge) {
    NLARM_CHECK(!entry.counter && !entry.histogram)
        << "metric '" << name << "' already registered with another type";
    entry.help = help;
    entry.gauge = std::make_unique<Gauge>();
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (!entry.histogram) {
    NLARM_CHECK(!entry.counter && !entry.gauge)
        << "metric '" << name << "' already registered with another type";
    entry.help = help;
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *entry.histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.counter.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.histogram.get();
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c != nullptr ? c->value() : 0;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  const Gauge* g = find_gauge(name);
  return g != nullptr ? g->value() : 0.0;
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    out << "# HELP " << name << " " << entry.help << "\n";
    if (entry.counter) {
      out << "# TYPE " << name << " counter\n";
      out << name << " " << entry.counter->value() << "\n";
    } else if (entry.gauge) {
      out << "# TYPE " << name << " gauge\n";
      out << name << " " << format_metric_value(entry.gauge->value()) << "\n";
    } else if (entry.histogram) {
      const Histogram& h = *entry.histogram;
      out << "# TYPE " << name << " histogram\n";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += h.bucket_count(i);
        out << name << "_bucket{le=\"" << format_metric_value(h.bounds()[i])
            << "\"} " << cumulative << "\n";
      }
      cumulative += h.bucket_count(h.bounds().size());
      out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
      out << name << "_sum " << format_metric_value(h.sum()) << "\n";
      out << name << "_count " << h.count() << "\n";
    }
  }
  return out.str();
}

std::string MetricsRegistry::jsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    out << "{\"name\":\"" << name << "\",";
    if (entry.counter) {
      out << "\"type\":\"counter\",\"value\":" << entry.counter->value();
    } else if (entry.gauge) {
      out << "\"type\":\"gauge\",\"value\":"
          << format_metric_value(entry.gauge->value());
    } else if (entry.histogram) {
      const Histogram& h = *entry.histogram;
      out << "\"type\":\"histogram\",\"count\":" << h.count()
          << ",\"sum\":" << format_metric_value(h.sum()) << ",\"buckets\":[";
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        if (i > 0) out << ",";
        out << "{\"le\":" << format_metric_value(h.bounds()[i])
            << ",\"count\":" << h.bucket_count(i) << "}";
      }
      if (!h.bounds().empty()) out << ",";
      out << "{\"le\":\"+Inf\",\"count\":"
          << h.bucket_count(h.bounds().size()) << "}]";
    }
    out << "}\n";
  }
  return out.str();
}

std::string MetricsRegistry::compact_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{";
  bool first = true;
  const auto sep = [&out, &first] {
    if (!first) out << ",";
    first = false;
  };
  for (const auto& [name, entry] : entries_) {
    if (entry.counter) {
      sep();
      out << "\"" << name << "\":" << entry.counter->value();
    } else if (entry.gauge) {
      sep();
      out << "\"" << name
          << "\":" << format_metric_value(entry.gauge->value());
    } else if (entry.histogram) {
      sep();
      out << "\"" << name << "_count\":" << entry.histogram->count();
      sep();
      out << "\"" << name
          << "_sum\":" << format_metric_value(entry.histogram->sum());
    }
  }
  out << "}";
  return out.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace nlarm::obs
