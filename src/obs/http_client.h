// Minimal blocking HTTP/1.1 GET client (POSIX sockets, no dependencies).
//
// Counterpart of obs/telemetry_server.h: nlarm_top polls /metrics and
// /epoch through it, and the telemetry tests scrape the real server
// end-to-end without shelling out to curl. One request per connection,
// matching the server's Connection: close contract.
#pragma once

#include <optional>
#include <string>

namespace nlarm::obs {

struct HttpResponse {
  int status = 0;     ///< e.g. 200, 503
  std::string body;   ///< payload after the header block
};

/// Fetches http://host:port/path. Returns nullopt on connect/read failure
/// or when no complete HTTP response arrived within `timeout_s`.
std::optional<HttpResponse> http_get(const std::string& host, int port,
                                     const std::string& path,
                                     double timeout_s = 2.0);

}  // namespace nlarm::obs
