// Minimal blocking HTTP/1.1 GET client (POSIX sockets, no dependencies).
//
// Counterpart of obs/telemetry_server.h: nlarm_top polls /metrics and
// /epoch through it, and the telemetry tests scrape the real server
// end-to-end without shelling out to curl. One request per connection,
// matching the server's Connection: close contract.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace nlarm::obs {

struct HttpResponse {
  int status = 0;     ///< e.g. 200, 503
  std::string body;   ///< payload after the header block
};

/// Parses the status code out of an HTTP/1.x status line ("HTTP/1.1 200
/// OK"). Returns nullopt unless the line has the full three-part shape
/// with exactly three digits in 100..599 — a truncated proxy response or a
/// non-HTTP peer must surface as a parse failure, not as whatever a bare
/// atoi scraped out of the garbage. Input may be the whole raw response;
/// parsing stops at the first CR/LF.
std::optional<int> parse_http_status_line(std::string_view status_line);

/// Fetches http://host:port/path. Returns nullopt on connect/read failure,
/// when no complete HTTP response arrived within `timeout_s`, or when the
/// status line does not parse.
std::optional<HttpResponse> http_get(const std::string& host, int port,
                                     const std::string& path,
                                     double timeout_s = 2.0);

}  // namespace nlarm::obs
