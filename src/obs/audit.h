// Structured decision audit: one JSON object per brokered allocation.
//
// The broker fills an AuditRecord per decide() call — request, snapshot
// identity, gate verdict, chosen nodes with their costs, memoization
// hit/miss, per-stage wall times — and appends it to an attached AuditLog.
// Records serialize to single-line JSON (JSONL when concatenated) and parse
// back for tooling and tests.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace nlarm::obs {

struct AuditRecord {
  // Request.
  int nprocs = 0;
  int ppn = 0;
  double alpha = 0.0;
  double beta = 0.0;

  // Snapshot identity the decision was made on.
  std::uint64_t snapshot_version = 0;
  double snapshot_time = 0.0;
  int snapshot_nodes = 0;
  int usable_nodes = 0;
  std::uint64_t epoch = 0;  ///< published epoch served (0 = classic path)

  // Gate verdict.
  std::string action;  ///< "allocate" | "wait"
  std::string reason;
  double cluster_load_per_core = 0.0;
  int effective_capacity = 0;
  bool aggregates_cache_hit = false;

  // Degradation verdict: "none" | "degraded-epoch" (served from an epoch
  // rewritten for staleness) | "last-good-fallback" (current epoch poisoned,
  // served from the last-good one) | "refused-stale" (even the last-good
  // epoch exceeded the hard age bound).
  std::string degradation = "none";
  int quarantined_nodes = 0;  ///< nodes quarantined in the serving epoch

  // Allocation outcome (empty/zero when action == "wait").
  std::string policy;
  std::vector<int> nodes;
  std::vector<std::string> hostnames;
  std::vector<int> procs_per_node;
  double compute_cost = 0.0;  ///< C_Gv of the winning candidate
  double network_cost = 0.0;  ///< N_Gv of the winning candidate
  double total_cost = 0.0;    ///< T_Gv of the winning candidate
  bool prepared_cache_hit = false;
  std::uint64_t candidates_generated = 0;

  // Per-stage wall times (seconds). Allocator stages are zero on wait.
  double gate_seconds = 0.0;
  double prepare_seconds = 0.0;
  double generate_seconds = 0.0;
  double select_seconds = 0.0;
  double total_seconds = 0.0;

  /// Single-line JSON object (no trailing newline).
  std::string to_json() const;

  /// Parses a record serialized by to_json(). Unknown fields are ignored;
  /// missing fields keep their defaults. Throws CheckError on malformed
  /// JSON.
  static AuditRecord from_json(const std::string& json);
};

/// In-memory collection of audit records with JSONL output. Thread-safe:
/// concurrent epoch decide() calls append from many threads, so the log
/// serializes internally and readers get a snapshot copy.
class AuditLog {
 public:
  void append(AuditRecord record) {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(std::move(record));
  }
  std::vector<AuditRecord> records() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
  }
  std::string jsonl() const;

 private:
  mutable std::mutex mutex_;
  std::vector<AuditRecord> records_;
};

}  // namespace nlarm::obs
