#include "obs/flusher.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/catalog.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace nlarm::obs {

namespace {

std::uint64_t file_size_of(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return 0;
  const auto pos = in.tellg();
  return pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
}

double unix_seconds_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MetricsFlusher::MetricsFlusher(FlusherOptions options)
    : options_(std::move(options)) {}

MetricsFlusher::~MetricsFlusher() { stop(); }

bool MetricsFlusher::start() {
  if (started_) return true;
  {
    std::ofstream probe(options_.path, std::ios::app);
    if (!probe) {
      NLARM_WARN << "flusher: cannot open " << options_.path;
      return false;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
  }
  started_ = true;
  thread_ = std::thread([this] { run(); });
  return true;
}

void MetricsFlusher::maybe_rotate_locked() {
  if (options_.rotate_bytes == 0) return;
  if (file_size_of(options_.path) < options_.rotate_bytes) return;
  const std::string aged = options_.path + ".1";
  std::remove(aged.c_str());
  if (std::rename(options_.path.c_str(), aged.c_str()) == 0) {
    rotations_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool MetricsFlusher::flush_now() {
  metrics::export_quantile_gauges();
  const std::string frame = MetricsRegistry::global().compact_json();
  std::lock_guard<std::mutex> lock(mutex_);
  maybe_rotate_locked();
  std::ofstream out(options_.path, std::ios::app);
  if (!out) return false;
  out << "{\"ts\":" << format_metric_value(unix_seconds_now())
      << ",\"seq\":" << frames_.load(std::memory_order_relaxed) + 1
      << ",\"metrics\":" << frame << "}\n";
  if (!out) return false;
  frames_.fetch_add(1, std::memory_order_relaxed);
  metrics::telemetry_flushes().inc();
  return true;
}

void MetricsFlusher::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const auto interval = std::chrono::duration<double>(options_.interval_s);
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    if (!flush_now()) {
      NLARM_WARN << "flusher: write to " << options_.path << " failed";
    }
    lock.lock();
  }
}

void MetricsFlusher::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
  flush_now();  // final frame so even sub-interval runs leave a timeline
}

}  // namespace nlarm::obs
