// Lock-free streaming quantile sketch (fixed log-bucket, DDSketch-style).
//
// decide() latencies at V=16384 span ~three decades under load, and the
// fixed-bucket Histogram can only answer "which bucket" — not p999. The
// sketch keeps geometrically spaced buckets with ratio gamma chosen from a
// relative-error target alpha (gamma = (1+alpha)/(1-alpha)), so any
// reported quantile q satisfies |q_est - q_true| <= alpha * q_true for
// values inside [min_value, max_value]. Out-of-range values clamp into the
// edge buckets (counted, bounded error no longer guaranteed there).
//
// Concurrency contract matches obs/metrics.h: observe() is wait-free
// (one relaxed fetch_add into a fixed bucket array, no allocation);
// quantile()/count() read concurrently and see some interleaving of
// in-flight updates; merge()/merge_into() fold another sketch's buckets in
// (serve threads may keep thread-local sketches and merge at scrape time).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace nlarm::obs {

class QuantileSketch {
 public:
  /// `relative_error` is the DDSketch alpha (default 1%); the value range
  /// defaults to [1 ns, ~11.5 days] in seconds — wide enough for every
  /// latency this process can observe while keeping ~2k buckets.
  explicit QuantileSketch(double relative_error = 0.01,
                          double min_value = 1e-9, double max_value = 1e6);

  /// Wait-free: one bucket-index computation and one relaxed fetch_add.
  /// Values <= 0 land in the dedicated zero bucket (timers can round to 0).
  void observe(double value);

  /// Total observations (including zero-bucket ones).
  std::uint64_t count() const;

  /// Sum of observed values (CAS-add, exact up to fp rounding).
  double sum() const;

  /// Estimated value at quantile q in [0, 1]; 0 when the sketch is empty.
  /// q=0 estimates the minimum bucket, q=1 the maximum.
  double quantile(double q) const;

  /// Folds `other`'s buckets into this sketch. Both must share the same
  /// geometry (same alpha and range) — enforced with a CheckError.
  void merge(const QuantileSketch& other);

  /// Resets every bucket to zero (not concurrency-safe against observe;
  /// tests and between-run resets only).
  void reset();

  double relative_error() const { return alpha_; }
  double gamma() const { return gamma_; }
  std::size_t bucket_count() const { return buckets_n_; }

 private:
  std::size_t index_of(double value) const;
  /// Midpoint estimate of bucket i's value range: 2*gamma^(i+offset) /
  /// (gamma+1), which is within alpha of anything in the bucket.
  double value_of(std::size_t index) const;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  double min_value_;
  double max_value_;
  std::int64_t min_index_;  ///< log-index of min_value_
  std::size_t buckets_n_;   ///< log buckets (excluding the zero bucket)
  /// Slot 0 is the zero/negative bucket; slots 1..buckets_n_ are the log
  /// buckets for [min_value, max_value].
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace nlarm::obs
